//! Durable storage: a write-ahead operation log plus snapshot compaction.
//!
//! The paper frames the database as "a cache for persistent information of
//! limited complexity" (§1) and names secondary storage as the major open
//! issue (§5). [`DurableKb`] is the straightforward answer for the
//! reproduction: every *accepted* mutating operator is appended to a log
//! file in the surface syntax before the call returns, and
//! [`DurableKb::compact`] rewrites the log as a snapshot. Opening a store
//! replays snapshot + log, rebuilding all derived state deterministically.
//!
//! Rejected updates are never logged — the log records exactly the
//! accepted history, so replay cannot fail on integrity grounds.

use crate::snapshot::{replay, snapshot_to_string};
use classic_core::desc::Concept;
use classic_core::error::{ClassicError, Result};
use classic_core::schema::TestArg;
use classic_core::symbol::{ConceptName, RoleId, TestId};
use classic_kb::{AssertReport, IndId, Kb, RetractReport};
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// Header line carrying the compaction generation. Written as the first
/// line of both the snapshot and the post-compaction log; a log whose
/// generation is *older* than the snapshot's predates it (a crash hit
/// between the snapshot rename and the log truncation) and must not be
/// replayed on top of it.
const GEN_PREFIX: &str = ";!gen:";

fn parse_gen(text: &str) -> u64 {
    text.lines()
        .next()
        .and_then(|l| l.strip_prefix(GEN_PREFIX))
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(0)
}

/// A knowledge base backed by an on-disk operation log.
pub struct DurableKb {
    kb: Kb,
    log_path: PathBuf,
    log: BufWriter<File>,
    /// Operations appended since open/compact.
    ops_since_compact: u64,
    /// Compaction generation of the current snapshot/log pair.
    generation: u64,
}

impl DurableKb {
    /// Open (or create) a store rooted at `path`. `path` is the log file;
    /// `path` with extension `.snapshot` holds the last compaction.
    /// `register_tests` must register every host test function the logged
    /// history references.
    pub fn open(path: impl AsRef<Path>, register_tests: impl FnOnce(&mut Kb)) -> Result<DurableKb> {
        let log_path = path.as_ref().to_path_buf();
        let mut kb = Kb::new();
        register_tests(&mut kb);
        // A crash during compaction can leave a temp snapshot that was
        // never renamed into place; it is dead weight, not state.
        let tmp = snapshot_tmp_path(&log_path);
        if tmp.exists() {
            let _ = std::fs::remove_file(&tmp);
        }
        // Replay snapshot first, then the tail log.
        let snap_path = snapshot_path(&log_path);
        let mut generation = 0u64;
        if snap_path.exists() {
            let script = read_file(&snap_path)?;
            generation = parse_gen(&script);
            replay(&mut kb, &script)?;
        }
        if log_path.exists() {
            let log_gen = parse_gen(&read_file(&log_path)?);
            if log_gen < generation {
                // The log predates the snapshot: compact() crashed after
                // renaming the snapshot but before truncating the log.
                // Every operation in it is already folded into the
                // snapshot; replaying would double-apply. Reset it.
                reset_log(&log_path, generation)?;
            } else {
                recover_log(&mut kb, &log_path)?;
            }
        }
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&log_path)
            .map_err(io_err)?;
        Ok(DurableKb {
            kb,
            log_path,
            log: BufWriter::new(file),
            ops_since_compact: 0,
            generation,
        })
    }

    /// The underlying knowledge base (read-only; mutations must go through
    /// the logged operators).
    pub fn kb(&self) -> &Kb {
        &self.kb
    }

    /// Mutable access for *query* paths that need `&mut Kb` (ad-hoc
    /// normalization interns symbols but asserts nothing durable).
    pub fn kb_mut_for_queries(&mut self) -> &mut Kb {
        &mut self.kb
    }

    fn append(&mut self, line: &str) -> Result<()> {
        self.log.write_all(line.as_bytes()).map_err(io_err)?;
        self.log.write_all(b"\n").map_err(io_err)?;
        self.log.flush().map_err(io_err)?;
        // flush() only drains the userspace buffer; the record must reach
        // the device before the call returns, or an accepted update can
        // vanish in a power loss.
        self.log.get_ref().sync_data().map_err(io_err)?;
        self.ops_since_compact += 1;
        Ok(())
    }

    // ---- logged operators -------------------------------------------------

    /// `define-role`, logged on success.
    pub fn define_role(&mut self, name: &str) -> Result<RoleId> {
        let id = self.kb.define_role(name)?;
        self.append(&format!("(define-role {name})"))?;
        Ok(id)
    }

    /// `define-attribute`, logged on success.
    pub fn define_attribute(&mut self, name: &str) -> Result<RoleId> {
        let id = self.kb.define_attribute(name)?;
        self.append(&format!("(define-attribute {name})"))?;
        Ok(id)
    }

    /// `define-concept`, logged on success.
    pub fn define_concept(&mut self, name: &str, told: Concept) -> Result<ConceptName> {
        let rendered = told.display(&self.kb.schema().symbols).to_string();
        let id = self.kb.define_concept(name, told)?;
        self.append(&format!("(define-concept {name} {rendered})"))?;
        Ok(id)
    }

    /// `create-ind`, logged on success.
    pub fn create_ind(&mut self, name: &str) -> Result<IndId> {
        let id = self.kb.create_ind(name)?;
        self.append(&format!("(create-ind {name})"))?;
        Ok(id)
    }

    /// `assert-ind`: applied to the KB first; logged only if accepted.
    pub fn assert_ind(&mut self, name: &str, desc: &Concept) -> Result<AssertReport> {
        let rendered = desc.display(&self.kb.schema().symbols).to_string();
        let report = self.kb.assert_ind(name, desc)?;
        self.append(&format!("(assert-ind {name} {rendered})"))?;
        Ok(report)
    }

    /// `assert-rule`: applied to the KB first; logged only if accepted.
    pub fn assert_rule(&mut self, antecedent: &str, consequent: Concept) -> Result<usize> {
        let rendered = consequent.display(&self.kb.schema().symbols).to_string();
        let ix = self.kb.assert_rule(antecedent, consequent)?;
        self.append(&format!("(assert-rule {antecedent} {rendered})"))?;
        Ok(ix)
    }

    /// `retract-ind`: applied to the KB first; logged only if accepted.
    /// Compaction folds retractions away — the snapshot records only the
    /// surviving told facts.
    pub fn retract_ind(&mut self, name: &str, desc: &Concept) -> Result<RetractReport> {
        let rendered = desc.display(&self.kb.schema().symbols).to_string();
        let report = self.kb.retract_ind(name, desc)?;
        self.append(&format!("(retract-ind {name} {rendered})"))?;
        Ok(report)
    }

    /// `retract-rule`: applied to the KB first; logged only if accepted.
    pub fn retract_rule(
        &mut self,
        antecedent: &str,
        consequent: &Concept,
    ) -> Result<RetractReport> {
        let rendered = consequent.display(&self.kb.schema().symbols).to_string();
        let report = self.kb.retract_rule(antecedent, consequent)?;
        self.append(&format!("(retract-rule {antecedent} {rendered})"))?;
        Ok(report)
    }

    /// Register a host test function. Not logged (closures are not
    /// serializable); the snapshot header records the required names.
    pub fn register_test<F>(&mut self, name: &str, f: F) -> TestId
    where
        F: Fn(&TestArg<'_>) -> bool + Send + Sync + 'static,
    {
        self.kb.register_test(name, f)
    }

    // ---- maintenance -------------------------------------------------------

    /// Operations appended since the store was opened or last compacted.
    pub fn pending_ops(&self) -> u64 {
        self.ops_since_compact
    }

    /// Rewrite the snapshot from current state and truncate the log.
    ///
    /// Crash-ordering: the snapshot is written to a temp file and
    /// `sync_all`ed, renamed into place, and the directory entry is
    /// fsynced — only *then* is the log truncated, so the snapshot is
    /// durable before the history it replaces disappears. Both files
    /// carry a generation header: if a crash lands between the rename
    /// and the truncation, the next open sees a log one generation
    /// behind the snapshot and discards it instead of double-applying
    /// operations already folded into the snapshot.
    pub fn compact(&mut self) -> Result<()> {
        let next_gen = self.generation + 1;
        let snap = snapshot_to_string(&self.kb);
        let snap_path = snapshot_path(&self.log_path);
        let tmp = snapshot_tmp_path(&self.log_path);
        {
            let mut f = File::create(&tmp).map_err(io_err)?;
            writeln!(f, "{GEN_PREFIX} {next_gen}").map_err(io_err)?;
            f.write_all(snap.as_bytes()).map_err(io_err)?;
            f.sync_all().map_err(io_err)?;
        }
        std::fs::rename(&tmp, &snap_path).map_err(io_err)?;
        sync_dir(&self.log_path)?;
        let file = reset_log(&self.log_path, next_gen)?;
        self.log = BufWriter::new(file);
        self.generation = next_gen;
        self.ops_since_compact = 0;
        Ok(())
    }
}

/// Truncate the log and start it with the given generation header,
/// durably. Returns the open handle positioned for appending.
fn reset_log(log_path: &Path, generation: u64) -> Result<File> {
    let mut file = OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(true)
        .open(log_path)
        .map_err(io_err)?;
    writeln!(file, "{GEN_PREFIX} {generation}").map_err(io_err)?;
    file.sync_all().map_err(io_err)?;
    Ok(file)
}

/// Fsync the directory containing `path`, making a completed rename
/// durable. Directory fds cannot be fsynced on all platforms; on
/// non-Unix systems the rename itself is the best available ordering.
fn sync_dir(path: &Path) -> Result<()> {
    #[cfg(unix)]
    if let Some(dir) = path.parent() {
        File::open(dir).and_then(|d| d.sync_all()).map_err(io_err)?;
    }
    #[cfg(not(unix))]
    let _ = path;
    Ok(())
}

/// Replay the operation log line by line, tolerating a torn tail.
///
/// The log is written one command per line with a flush per append, so
/// the only corruption a crash can produce is an incomplete final line.
/// Recovery truncates that tail (after which the log is exactly the
/// accepted history again); a malformed line *followed by* valid ones is
/// genuine corruption and is reported as an error rather than repaired.
fn recover_log(kb: &mut Kb, log_path: &Path) -> Result<()> {
    let raw = read_file(log_path)?;
    // Byte offset of the end of the last successfully replayed line.
    let mut good_end = 0usize;
    let mut pending_failure: Option<(usize, ClassicError)> = None;
    let mut offset = 0usize;
    for line in raw.split_inclusive('\n') {
        let start = offset;
        offset += line.len();
        let text = line.trim();
        if text.is_empty() || text.starts_with(';') {
            good_end = offset;
            continue;
        }
        if let Some((_, e)) = pending_failure {
            // A valid-looking line after a failure ⇒ mid-log corruption.
            return Err(ClassicError::Malformed(format!(
                "operation log corrupted mid-file (not just a torn tail): {e}"
            )));
        }
        match classic_lang::run_script(kb, text) {
            Ok(_) => good_end = offset,
            Err(e) => pending_failure = Some((start, e)),
        }
    }
    if pending_failure.is_some() && good_end < raw.len() {
        // Torn tail: truncate the log back to the last good record.
        let file = OpenOptions::new()
            .write(true)
            .open(log_path)
            .map_err(io_err)?;
        file.set_len(good_end as u64).map_err(io_err)?;
    }
    Ok(())
}

fn snapshot_path(log: &Path) -> PathBuf {
    log.with_extension("snapshot")
}

fn snapshot_tmp_path(log: &Path) -> PathBuf {
    log.with_extension("snapshot.tmp")
}

fn read_file(path: &Path) -> Result<String> {
    let mut s = String::new();
    File::open(path)
        .and_then(|mut f| f.read_to_string(&mut s))
        .map_err(io_err)?;
    Ok(s)
}

fn io_err(e: std::io::Error) -> ClassicError {
    ClassicError::Malformed(format!("storage I/O error: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::same_state;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("classic-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn populate(store: &mut DurableKb) {
        store.define_role("thing-driven").unwrap();
        store.define_role("enrolled-at").unwrap();
        store
            .define_concept("PERSON", Concept::primitive(Concept::thing(), "person"))
            .unwrap();
        let person = store.kb.schema().symbols.find_concept("PERSON").unwrap();
        let enrolled = store.kb.schema().symbols.find_role("enrolled-at").unwrap();
        store
            .define_concept(
                "STUDENT",
                Concept::and([Concept::Name(person), Concept::AtLeast(1, enrolled)]),
            )
            .unwrap();
        store.create_ind("Rocky").unwrap();
        store.assert_ind("Rocky", &Concept::Name(person)).unwrap();
        store
            .assert_ind("Rocky", &Concept::AtLeast(1, enrolled))
            .unwrap();
    }

    #[test]
    fn log_replays_to_same_state() {
        let dir = tmpdir("replay");
        let path = dir.join("kb.log");
        let mut store = DurableKb::open(&path, |_| {}).unwrap();
        populate(&mut store);
        let before = snapshot_to_string(store.kb());
        drop(store);

        let reopened = DurableKb::open(&path, |_| {}).unwrap();
        assert_eq!(before, snapshot_to_string(reopened.kb()));
        // Derived state (recognition) was rebuilt, not just told facts.
        let student = reopened
            .kb()
            .schema()
            .symbols
            .find_concept("STUDENT")
            .unwrap();
        let rocky = reopened
            .kb()
            .ind_id(
                reopened
                    .kb()
                    .schema()
                    .symbols
                    .find_individual("Rocky")
                    .unwrap(),
            )
            .unwrap();
        assert!(reopened.kb().is_instance_of(rocky, student).unwrap());
    }

    #[test]
    fn rejected_updates_are_not_logged() {
        let dir = tmpdir("reject");
        let path = dir.join("kb.log");
        let mut store = DurableKb::open(&path, |_| {}).unwrap();
        populate(&mut store);
        let driven = store.kb.schema().symbols.find_role("thing-driven").unwrap();
        store
            .assert_ind("Rocky", &Concept::AtMost(0, driven))
            .unwrap();
        // Now contradict it — rejected, and must not poison the log.
        let v = classic_core::IndRef::Classic(store.kb.schema_mut().symbols.individual("Volvo-17"));
        assert!(store
            .assert_ind("Rocky", &Concept::Fills(driven, vec![v]))
            .is_err());
        drop(store);
        let reopened = DurableKb::open(&path, |_| {}).unwrap();
        let rocky = reopened
            .kb()
            .ind_id(
                reopened
                    .kb()
                    .schema()
                    .symbols
                    .find_individual("Rocky")
                    .unwrap(),
            )
            .unwrap();
        // Role ids are interning-order dependent; re-resolve by name.
        let driven = reopened
            .kb()
            .schema()
            .symbols
            .find_role("thing-driven")
            .unwrap();
        assert!(reopened.kb().ind(rocky).is_closed(driven));
    }

    #[test]
    fn compact_then_reopen() {
        let dir = tmpdir("compact");
        let path = dir.join("kb.log");
        let mut store = DurableKb::open(&path, |_| {}).unwrap();
        populate(&mut store);
        assert!(store.pending_ops() > 0);
        store.compact().unwrap();
        assert_eq!(store.pending_ops(), 0);
        // More ops after compaction land in the fresh log.
        store.create_ind("Bullwinkle").unwrap();
        let before = snapshot_to_string(store.kb());
        drop(store);
        let reopened = DurableKb::open(&path, |_| {}).unwrap();
        assert_eq!(before, snapshot_to_string(reopened.kb()));
    }

    #[test]
    fn snapshot_roundtrip_preserves_state() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("kb.log");
        let mut store = DurableKb::open(&path, |_| {}).unwrap();
        populate(&mut store);
        let rebuilt = crate::snapshot::roundtrip(store.kb(), |_| {}).unwrap();
        assert!(same_state(store.kb(), &rebuilt));
    }

    #[test]
    fn torn_tail_is_recovered_and_truncated() {
        let dir = tmpdir("torn");
        let path = dir.join("kb.log");
        let mut store = DurableKb::open(&path, |_| {}).unwrap();
        populate(&mut store);
        drop(store);
        // Simulate a crash mid-append: an incomplete final record.
        let mut raw = std::fs::read_to_string(&path).unwrap();
        let good_len = raw.len();
        raw.push_str("(assert-ind Rocky (AT-LEA"); // torn write, no newline
        std::fs::write(&path, &raw).unwrap();

        let store = DurableKb::open(&path, |_| {}).unwrap();
        // State is the full accepted history…
        let rocky = store
            .kb()
            .schema()
            .symbols
            .find_individual("Rocky")
            .unwrap();
        assert!(store.kb().ind_id(rocky).is_ok());
        drop(store);
        // …and the log was truncated back to the last good record.
        let recovered = std::fs::read_to_string(&path).unwrap();
        assert_eq!(recovered.len(), good_len);
        // Reopening again is clean.
        DurableKb::open(&path, |_| {}).unwrap();
    }

    #[test]
    fn mid_log_corruption_is_an_error_not_silent_repair() {
        let dir = tmpdir("midcorrupt");
        let path = dir.join("kb.log");
        let mut store = DurableKb::open(&path, |_| {}).unwrap();
        populate(&mut store);
        store.create_ind("Bullwinkle").unwrap();
        drop(store);
        // Corrupt a line in the middle.
        let raw = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = raw.lines().collect();
        let mut bad: Vec<String> = lines.iter().map(|s| (*s).to_owned()).collect();
        let mid = bad.len() / 2;
        bad[mid] = "(assert-ind ??? broken".to_owned();
        std::fs::write(&path, bad.join("\n") + "\n").unwrap();

        let err = match DurableKb::open(&path, |_| {}) {
            Err(e) => e,
            Ok(_) => panic!("mid-log corruption must not open cleanly"),
        };
        assert!(err.to_string().contains("corrupted"), "got: {err}");
    }

    #[test]
    fn crash_between_snapshot_rename_and_log_truncate_does_not_double_apply() {
        let dir = tmpdir("crashorder");
        let path = dir.join("kb.log");
        let mut store = DurableKb::open(&path, |_| {}).unwrap();
        populate(&mut store);
        // Save the pre-compaction log, compact, then put the old log
        // back: exactly the on-disk state a crash leaves if it lands
        // after the snapshot rename but before the log truncation.
        let old_log = std::fs::read(&path).unwrap();
        let before = snapshot_to_string(store.kb());
        store.compact().unwrap();
        drop(store);
        std::fs::write(&path, &old_log).unwrap();

        // Replaying the stale log on top of the snapshot would fail
        // (create-ind duplicates) or double-apply; open must detect the
        // generation mismatch and discard it instead.
        let reopened = DurableKb::open(&path, |_| {}).unwrap();
        assert_eq!(before, snapshot_to_string(reopened.kb()));
        drop(reopened);
        // The stale log was durably reset, so the next open is clean too.
        let again = DurableKb::open(&path, |_| {}).unwrap();
        assert_eq!(before, snapshot_to_string(again.kb()));
    }

    #[test]
    fn stale_temp_snapshot_is_removed_on_open() {
        let dir = tmpdir("staletmp");
        let path = dir.join("kb.log");
        let mut store = DurableKb::open(&path, |_| {}).unwrap();
        populate(&mut store);
        let before = snapshot_to_string(store.kb());
        drop(store);
        // A crash mid-compaction leaves a partial temp snapshot that was
        // never renamed into place.
        let tmp = super::snapshot_tmp_path(&path);
        std::fs::write(&tmp, "; partial snapshot, crashed mid-write").unwrap();

        let reopened = DurableKb::open(&path, |_| {}).unwrap();
        assert_eq!(before, snapshot_to_string(reopened.kb()));
        assert!(!tmp.exists(), "stale temp snapshot must be cleaned up");
    }

    #[test]
    fn retractions_are_logged_replayed_and_folded_by_compaction() {
        let dir = tmpdir("retract");
        let path = dir.join("kb.log");
        let mut store = DurableKb::open(&path, |_| {}).unwrap();
        populate(&mut store);
        let enrolled = store.kb.schema().symbols.find_role("enrolled-at").unwrap();
        let retracted = Concept::AtLeast(1, enrolled);
        store.retract_ind("Rocky", &retracted).unwrap();
        let before = snapshot_to_string(store.kb());
        drop(store);

        // The retraction replays from the log…
        let reopened = DurableKb::open(&path, |_| {}).unwrap();
        assert_eq!(before, snapshot_to_string(reopened.kb()));
        let student = reopened
            .kb()
            .schema()
            .symbols
            .find_concept("STUDENT")
            .unwrap();
        let rocky = reopened
            .kb()
            .ind_id(
                reopened
                    .kb()
                    .schema()
                    .symbols
                    .find_individual("Rocky")
                    .unwrap(),
            )
            .unwrap();
        assert!(!reopened.kb().is_instance_of(rocky, student).unwrap());
        drop(reopened);

        // …and compaction folds it away: the snapshot carries only the
        // surviving told facts, with no retract-ind record.
        let mut store = DurableKb::open(&path, |_| {}).unwrap();
        store.compact().unwrap();
        drop(store);
        let snap_text = std::fs::read_to_string(super::snapshot_path(&path)).unwrap();
        assert!(!snap_text.contains("retract-ind"));
        // The STUDENT definition still mentions the restriction, but the
        // retracted told fact about Rocky is gone.
        assert!(!snap_text.contains("(assert-ind Rocky (AT-LEAST 1 enrolled-at))"));
        let reopened = DurableKb::open(&path, |_| {}).unwrap();
        assert_eq!(before, snapshot_to_string(reopened.kb()));
    }

    #[test]
    fn retracted_rules_are_dropped_from_snapshots() {
        let dir = tmpdir("retractrule");
        let path = dir.join("kb.log");
        let mut store = DurableKb::open(&path, |_| {}).unwrap();
        populate(&mut store);
        store.define_role("eat").unwrap();
        store
            .define_concept("JUNK-FOOD", Concept::primitive(Concept::thing(), "junk"))
            .unwrap();
        let junk = store.kb.schema().symbols.find_concept("JUNK-FOOD").unwrap();
        let eat = store.kb.schema().symbols.find_role("eat").unwrap();
        let consequent = Concept::all(eat, Concept::Name(junk));
        store.assert_rule("STUDENT", consequent.clone()).unwrap();
        store.retract_rule("STUDENT", &consequent).unwrap();
        assert_eq!(store.kb().active_rules().count(), 0);
        let before = snapshot_to_string(store.kb());
        assert!(!before.contains("assert-rule"));
        drop(store);
        // Replay reaches the same state (rule asserted then retracted).
        let reopened = DurableKb::open(&path, |_| {}).unwrap();
        assert_eq!(before, snapshot_to_string(reopened.kb()));
        assert_eq!(reopened.kb().active_rules().count(), 0);
    }

    #[test]
    fn rules_survive_persistence() {
        let dir = tmpdir("rules");
        let path = dir.join("kb.log");
        let mut store = DurableKb::open(&path, |_| {}).unwrap();
        populate(&mut store);
        store.define_role("eat").unwrap();
        store
            .define_concept("JUNK-FOOD", Concept::primitive(Concept::thing(), "junk"))
            .unwrap();
        let junk = store.kb.schema().symbols.find_concept("JUNK-FOOD").unwrap();
        let eat = store.kb.schema().symbols.find_role("eat").unwrap();
        store
            .assert_rule("STUDENT", Concept::all(eat, Concept::Name(junk)))
            .unwrap();
        drop(store);
        let reopened = DurableKb::open(&path, |_| {}).unwrap();
        assert_eq!(reopened.kb().rules().len(), 1);
        // And the rule had fired on Rocky during replay.
        let rocky = reopened
            .kb()
            .ind_id(
                reopened
                    .kb()
                    .schema()
                    .symbols
                    .find_individual("Rocky")
                    .unwrap(),
            )
            .unwrap();
        let eat = reopened.kb().schema().symbols.find_role("eat").unwrap();
        let junk = reopened
            .kb()
            .schema()
            .symbols
            .find_concept("JUNK-FOOD")
            .unwrap();
        let junk_nf = reopened.kb().schema().concept_nf(junk).unwrap();
        let vr = reopened.kb().ind(rocky).derived.value_restriction(eat);
        assert!(classic_core::subsumes(junk_nf, &vr));
    }
}
