//! Property-based tests for the segmented snapshot store: any accepted
//! update history — wherever compaction lands inside it, whatever the
//! segment budget, and in whatever order segments hydrate afterwards —
//! must reopen (eagerly *and* paged) to exactly the state of an
//! in-memory KB that executed the same history.

use classic_core::desc::{Concept, IndRef};
use classic_core::symbol::RoleId;
use classic_kb::Kb;
use classic_store::{same_state, snapshot_to_string, DurableKb};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

const N_ROLES: usize = 3;
const N_INDS: usize = 4;

static CASE: AtomicUsize = AtomicUsize::new(0);

fn tmpdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "classic-segprop-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn oracle_kb() -> Kb {
    let mut kb = Kb::new();
    for i in 0..N_ROLES {
        kb.define_role(&format!("r{i}")).unwrap();
    }
    kb.define_attribute("a0").unwrap();
    kb.define_concept("P0", Concept::primitive(Concept::thing(), "p0"))
        .unwrap();
    kb.assert_rule("P0", Concept::AtMost(9, RoleId::from_index(1)))
        .unwrap();
    for i in 0..N_INDS {
        kb.create_ind(&format!("x{i}")).unwrap();
    }
    kb
}

fn store_with_schema(path: &std::path::Path, budget: usize) -> DurableKb {
    let mut store = DurableKb::open(path, |_| {}).unwrap();
    store.set_segment_budget(budget);
    for i in 0..N_ROLES {
        store.define_role(&format!("r{i}")).unwrap();
    }
    store.define_attribute("a0").unwrap();
    store
        .define_concept("P0", Concept::primitive(Concept::thing(), "p0"))
        .unwrap();
    store
        .assert_rule("P0", Concept::AtMost(9, RoleId::from_index(1)))
        .unwrap();
    for i in 0..N_INDS {
        store.create_ind(&format!("x{i}")).unwrap();
    }
    store
}

#[derive(Debug, Clone)]
enum Op {
    Prim(usize),
    AtLeast(usize, usize, u32),
    AtMost(usize, usize, u32),
    Fills(usize, usize, usize),
    FillsHost(usize, usize, i64),
    Close(usize, usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..N_INDS).prop_map(Op::Prim),
        (0..N_INDS, 0..N_ROLES, 0u32..3).prop_map(|(i, r, n)| Op::AtLeast(i, r, n)),
        (0..N_INDS, 0..N_ROLES, 1u32..4).prop_map(|(i, r, n)| Op::AtMost(i, r, n)),
        (0..N_INDS, 0..N_ROLES, 0..N_INDS).prop_map(|(i, r, j)| Op::Fills(i, r, j)),
        (0..N_INDS, 0..N_ROLES, 0i64..5).prop_map(|(i, r, v)| Op::FillsHost(i, r, v)),
        (0..N_INDS, 0..N_ROLES).prop_map(|(i, r)| Op::Close(i, r)),
    ]
}

fn concept_for(op: &Op, intern: &mut dyn FnMut(&str) -> IndRef) -> (String, Concept) {
    match op {
        Op::Prim(_) => unreachable!("Prim is special-cased by the callers"),
        Op::AtLeast(i, r, n) => (
            format!("x{i}"),
            Concept::AtLeast(*n, RoleId::from_index(*r)),
        ),
        Op::AtMost(i, r, n) => (format!("x{i}"), Concept::AtMost(*n, RoleId::from_index(*r))),
        Op::Fills(i, r, j) => {
            let f = intern(&format!("x{j}"));
            (
                format!("x{i}"),
                Concept::Fills(RoleId::from_index(*r), vec![f]),
            )
        }
        Op::FillsHost(i, r, v) => (
            format!("x{i}"),
            Concept::Fills(
                RoleId::from_index(*r),
                vec![IndRef::Host(classic_core::HostValue::Int(*v))],
            ),
        ),
        Op::Close(i, r) => (format!("x{i}"), Concept::Close(RoleId::from_index(*r))),
    }
}

fn apply_to_kb(kb: &mut Kb, op: &Op) {
    let (name, c) = match op {
        Op::Prim(i) => (
            format!("x{i}"),
            Concept::Name(kb.schema().symbols.find_concept("P0").unwrap()),
        ),
        _ => {
            let mut intern = |n: &str| IndRef::Classic(kb.schema_mut().symbols.individual(n));
            let (name, c) = concept_for(op, &mut intern);
            (name, c)
        }
    };
    let _ = kb.assert_ind(&name, &c);
}

fn apply_to_store(store: &mut DurableKb, op: &Op) {
    let (name, c) = match op {
        Op::Prim(i) => (
            format!("x{i}"),
            Concept::Name(
                store
                    .kb()
                    .unwrap()
                    .schema()
                    .symbols
                    .find_concept("P0")
                    .unwrap(),
            ),
        ),
        Op::Fills(i, r, j) => {
            let f = IndRef::Classic(
                store
                    .kb_mut_for_queries()
                    .schema_mut()
                    .symbols
                    .individual(&format!("x{j}")),
            );
            (
                format!("x{i}"),
                Concept::Fills(RoleId::from_index(*r), vec![f]),
            )
        }
        _ => {
            let mut intern = |_: &str| unreachable!("only Fills interns");
            concept_for(op, &mut intern)
        }
    };
    let _ = store.assert_ind(&name, &c);
}

/// A deterministic permutation of the individual names, driven by a
/// proptest-chosen seed (simple LCG Fisher–Yates).
fn shuffled_names(seed: u64) -> Vec<String> {
    let mut names: Vec<String> = (0..N_INDS).map(|i| format!("x{i}")).collect();
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    for i in (1..names.len()).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        names.swap(i, j);
    }
    names
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any history, compacted at any point, reopens — eagerly and paged
    /// with segments hydrated in an arbitrary order — to the state of an
    /// in-memory KB that ran the same history.
    #[test]
    fn segmented_reopen_matches_in_memory_history(
        ops in proptest::collection::vec(op_strategy(), 1..16),
        compact_pos in 0usize..16,
        budget in 1usize..=3,
        order_seed in 0u64..u64::MAX,
    ) {
        let dir = tmpdir();
        let path = dir.join("kb.log");
        let compact_at = compact_pos.min(ops.len());

        let mut oracle = oracle_kb();
        let mut store = store_with_schema(&path, budget);
        for (i, op) in ops.iter().enumerate() {
            if i == compact_at {
                store.compact().unwrap();
            }
            apply_to_kb(&mut oracle, op);
            apply_to_store(&mut store, op);
        }
        if compact_at == ops.len() {
            store.compact().unwrap();
        }
        prop_assert!(same_state(&oracle, store.kb().unwrap()), "live store diverged");
        let live_text = snapshot_to_string(store.kb().unwrap());
        drop(store);

        // Eager reopen: same state as the in-memory history, and the
        // snapshot text is a fixed point of the segmented round trip.
        let eager = DurableKb::open(&path, |_| {}).unwrap();
        prop_assert!(same_state(&oracle, eager.kb().unwrap()), "eager reopen diverged");
        prop_assert_eq!(&live_text, &snapshot_to_string(eager.kb().unwrap()));
        let eager_text = snapshot_to_string(eager.kb().unwrap());
        drop(eager);

        // Paged reopen, hydrating in an adversarial (random) order.
        let mut paged = DurableKb::open_paged(&path, |_| {}).unwrap();
        for name in shuffled_names(order_seed) {
            paged.hydrate_for(&name).unwrap();
        }
        prop_assert!(paged.is_fully_hydrated(), "every name touched ⇒ fully hydrated");
        prop_assert!(same_state(&oracle, paged.kb().unwrap()), "paged reopen diverged");
        drop(paged);

        // Compacting the reopened store is a fixed point.
        let mut again = DurableKb::open(&path, |_| {}).unwrap();
        again.set_segment_budget(budget);
        again.compact().unwrap();
        drop(again);
        let last = DurableKb::open(&path, |_| {}).unwrap();
        prop_assert_eq!(eager_text, snapshot_to_string(last.kb().unwrap()));

        let _ = std::fs::remove_dir_all(&dir);
    }
}
