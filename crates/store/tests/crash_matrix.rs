//! Crash-ordering matrix for the segmented snapshot store.
//!
//! `docs/FORMAT.md` §8 specifies the publish pipeline's ordering
//! invariants: whichever rename the process dies around, reopening the
//! directory must converge to exactly the state of a store that never
//! crashed. This suite kills the compactor at every [`CrashPoint`],
//! reopens (eagerly and paged), and compares against a no-crash oracle —
//! then compacts again and re-checks, proving the wreckage is also fully
//! recoverable, not merely readable.

use classic_core::desc::Concept;
use classic_store::{same_state, snapshot_to_string, CrashPoint, DurableKb, Manifest};
use std::path::{Path, PathBuf};

fn tmpdir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("classic-crash-matrix-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The base history: schema, a rule, and enough individuals to span
/// several segments at a small budget. Ends with a compaction so the
/// crashing compaction later has a previous generation to reuse from.
fn build_base(store: &mut DurableKb) {
    store.set_segment_budget(3);
    store.define_role("advisor").unwrap();
    store.define_role("enrolled-at").unwrap();
    store
        .define_concept("PERSON", Concept::primitive(Concept::thing(), "person"))
        .unwrap();
    let person = store
        .kb()
        .unwrap()
        .schema()
        .symbols
        .find_concept("PERSON")
        .unwrap();
    let enrolled = store
        .kb()
        .unwrap()
        .schema()
        .symbols
        .find_role("enrolled-at")
        .unwrap();
    store
        .define_concept(
            "STUDENT",
            Concept::and([Concept::Name(person), Concept::AtLeast(1, enrolled)]),
        )
        .unwrap();
    let advisor = store
        .kb()
        .unwrap()
        .schema()
        .symbols
        .find_role("advisor")
        .unwrap();
    store
        .assert_rule("STUDENT", Concept::AtLeast(1, advisor))
        .unwrap();
    for i in 0..8 {
        let name = format!("S{i}");
        store.create_ind(&name).unwrap();
        store.assert_ind(&name, &Concept::Name(person)).unwrap();
    }
    store.compact().unwrap();
}

/// The log suffix folded by the compaction under test.
fn apply_suffix(store: &mut DurableKb) {
    let enrolled = store
        .kb()
        .unwrap()
        .schema()
        .symbols
        .find_role("enrolled-at")
        .unwrap();
    store
        .assert_ind("S3", &Concept::AtLeast(1, enrolled))
        .unwrap();
    store.create_ind("S8").unwrap();
    let person = store
        .kb()
        .unwrap()
        .schema()
        .symbols
        .find_concept("PERSON")
        .unwrap();
    store.assert_ind("S8", &Concept::Name(person)).unwrap();
    store
        .retract_ind("S3", &Concept::AtLeast(1, enrolled))
        .unwrap();
}

/// Snapshot text of the no-crash final state (the oracle).
fn oracle(tag: &str) -> String {
    let dir = tmpdir(&format!("oracle-{tag}"));
    let mut store = DurableKb::open(dir.join("kb.log"), |_| {}).unwrap();
    build_base(&mut store);
    apply_suffix(&mut store);
    let text = snapshot_to_string(store.kb().unwrap());
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
    text
}

/// The directory must contain only live state: the active log, the
/// manifest, and exactly the segments the manifest references.
fn assert_directory_is_clean(dir: &Path, log: &Path) {
    let manifest = Manifest::load(&log.with_extension("manifest"))
        .unwrap()
        .expect("a manifest exists after a successful compaction");
    let referenced: Vec<&str> = manifest.entries.iter().map(|e| e.file.as_str()).collect();
    for entry in std::fs::read_dir(dir).unwrap() {
        let name = entry.unwrap().file_name().to_string_lossy().into_owned();
        let live = name == "kb.log" || name == "kb.manifest" || referenced.contains(&name.as_str());
        assert!(live, "unexpected leftover file after recovery: {name}");
    }
}

fn run_crash_at(point: CrashPoint) {
    let tag = format!("{point:?}").to_lowercase();
    let expected = oracle(&tag);
    let dir = tmpdir(&tag);
    let path = dir.join("kb.log");

    let mut store = DurableKb::open(&path, |_| {}).unwrap();
    build_base(&mut store);
    apply_suffix(&mut store);
    store.compact_crashing_at(point).unwrap();
    drop(store);

    // First reopen after the crash: state converges to the oracle.
    let reopened = DurableKb::open(&path, |_| {}).unwrap();
    assert_eq!(
        expected,
        snapshot_to_string(reopened.kb().unwrap()),
        "crash at {point:?}: eager reopen diverged from the no-crash oracle"
    );
    drop(reopened);

    // Paged reopen converges too.
    let mut paged = DurableKb::open_paged(&path, |_| {}).unwrap();
    let full = paged.kb_hydrated().unwrap();
    let mut oracle_kb = classic_kb::Kb::new();
    classic_store::replay(&mut oracle_kb, &expected).unwrap();
    assert!(
        same_state(full, &oracle_kb),
        "crash at {point:?}: paged reopen diverged from the no-crash oracle"
    );
    drop(paged);

    // Recovery is idempotent: a second reopen sees the same state.
    let again = DurableKb::open(&path, |_| {}).unwrap();
    assert_eq!(expected, snapshot_to_string(again.kb().unwrap()));
    drop(again);

    // And the wreckage is fully compactable: after one clean compaction
    // the directory holds only live state and still replays the oracle.
    let mut fresh = DurableKb::open(&path, |_| {}).unwrap();
    fresh.set_segment_budget(3);
    fresh.compact().unwrap();
    drop(fresh);
    assert_directory_is_clean(&dir, &path);
    let final_open = DurableKb::open(&path, |_| {}).unwrap();
    assert_eq!(expected, snapshot_to_string(final_open.kb().unwrap()));
}

#[test]
fn crash_after_log_rotation_converges() {
    run_crash_at(CrashPoint::AfterLogRotation);
}

#[test]
fn crash_after_first_segment_publish_converges() {
    run_crash_at(CrashPoint::AfterFirstSegmentPublish);
}

#[test]
fn crash_before_manifest_rename_converges() {
    run_crash_at(CrashPoint::BeforeManifestRename);
}

#[test]
fn crash_after_manifest_rename_converges() {
    run_crash_at(CrashPoint::AfterManifestRename);
}

#[test]
fn crash_before_cleanup_converges() {
    run_crash_at(CrashPoint::BeforeCleanup);
}

#[test]
fn leftover_compaction_temp_files_are_swept_on_open() {
    let dir = tmpdir("tmp-sweep");
    let path = dir.join("kb.log");
    let mut store = DurableKb::open(&path, |_| {}).unwrap();
    build_base(&mut store);
    let expected = snapshot_to_string(store.kb().unwrap());
    drop(store);
    // Fabricate the debris an interrupted atomic write leaves behind.
    let debris = [
        dir.join("kb.manifest.tmp"),
        dir.join("kb.seg-00000000deadbeef.classic.tmp"),
        dir.join("kb.snapshot.tmp"),
    ];
    for p in &debris {
        std::fs::write(p, "; crashed mid-write").unwrap();
    }
    let reopened = DurableKb::open(&path, |_| {}).unwrap();
    assert_eq!(expected, snapshot_to_string(reopened.kb().unwrap()));
    for p in &debris {
        assert!(!p.exists(), "temp file must be swept: {}", p.display());
    }
}

#[test]
fn truncated_manifest_open_error_names_path_and_generation() {
    let dir = tmpdir("manifest-truncated");
    let path = dir.join("kb.log");
    let mut store = DurableKb::open(&path, |_| {}).unwrap();
    build_base(&mut store);
    drop(store);
    let manifest_path = path.with_extension("manifest");
    let text = std::fs::read_to_string(&manifest_path).unwrap();
    // Cut off the `;!end` terminator: a torn manifest write that somehow
    // reached the final name (e.g. non-atomic copy by an operator).
    let cut = text.rfind(";!end").unwrap();
    std::fs::write(&manifest_path, &text[..cut]).unwrap();
    let err = match DurableKb::open(&path, |_| {}) {
        Err(e) => e,
        Ok(_) => panic!("a truncated manifest must not open cleanly"),
    };
    let msg = err.to_string();
    assert!(msg.contains("kb.manifest"), "must name the file: {msg}");
    assert!(
        msg.contains("generation"),
        "must name the generation: {msg}"
    );
}

#[test]
fn missing_segment_open_error_names_path() {
    let dir = tmpdir("segment-missing");
    let path = dir.join("kb.log");
    let mut store = DurableKb::open(&path, |_| {}).unwrap();
    build_base(&mut store);
    drop(store);
    let manifest = Manifest::load(&path.with_extension("manifest"))
        .unwrap()
        .unwrap();
    let victim = manifest.ind_entries().next().unwrap().file.clone();
    std::fs::remove_file(dir.join(&victim)).unwrap();
    let err = match DurableKb::open(&path, |_| {}) {
        Err(e) => e,
        Ok(_) => panic!("a missing segment must not open cleanly"),
    };
    assert!(
        err.to_string().contains(&victim),
        "must name the missing segment: {err}"
    );
}
