//! PR acceptance: a crime-db-style workload driven through a durable
//! store must leave nonzero subsumption, propagation, and store-append
//! series visible in *both* exposition formats. This is the end-to-end
//! check that the instrumentation actually covers the hot paths — a
//! metric that never moves under a real workload is a name, not a
//! measurement.

use classic_core::desc::{Concept, IndRef};
use classic_store::DurableKb;
use std::path::PathBuf;

fn tmpdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("classic-obs-acceptance-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn crime_workload(store: &mut DurableKb) {
    store.define_role("commits").unwrap();
    store.define_role("investigated-by").unwrap();
    store
        .define_concept("PERSON", Concept::primitive(Concept::thing(), "person"))
        .unwrap();
    store
        .define_concept("CRIME", Concept::primitive(Concept::thing(), "crime"))
        .unwrap();
    let person = store
        .kb()
        .unwrap()
        .schema()
        .symbols
        .find_concept("PERSON")
        .unwrap();
    let commits = store
        .kb()
        .unwrap()
        .schema()
        .symbols
        .find_role("commits")
        .unwrap();
    store
        .define_concept(
            "SUSPECT",
            Concept::and([Concept::Name(person), Concept::AtLeast(1, commits)]),
        )
        .unwrap();
    let investigated = store
        .kb()
        .unwrap()
        .schema()
        .symbols
        .find_role("investigated-by")
        .unwrap();
    store
        .assert_rule("SUSPECT", Concept::AtLeast(1, investigated))
        .unwrap();

    let crime_c = store
        .kb()
        .unwrap()
        .schema()
        .symbols
        .find_concept("CRIME")
        .unwrap();
    for i in 0..8 {
        let name = format!("Person-{i}");
        store.create_ind(&name).unwrap();
        store.assert_ind(&name, &Concept::Name(person)).unwrap();
        let crime = format!("Crime-{i}");
        store.create_ind(&crime).unwrap();
        store.assert_ind(&crime, &Concept::Name(crime_c)).unwrap();
        let filler = IndRef::Classic(
            store
                .kb_mut_for_queries()
                .schema_mut()
                .symbols
                .individual(&crime),
        );
        // FILLS + ALL drives real ALL-propagation, and SUSPECT
        // recognition drives subsumption tests and the rule.
        store
            .assert_ind(&name, &Concept::Fills(commits, vec![filler]))
            .unwrap();
        store
            .assert_ind(&name, &Concept::all(commits, Concept::Name(crime_c)))
            .unwrap();
    }
}

#[test]
fn workload_moves_subsumption_propagation_and_append_series_in_both_expositions() {
    // The default level already counts; pin it in case another test in
    // this process changed the global.
    classic_obs::set_level(classic_obs::ObsLevel::Counters);
    let dir = tmpdir();
    let mut store = DurableKb::open(dir.join("crime.classic"), |_| {}).unwrap();
    crime_workload(&mut store);

    let snap = store.kb().unwrap().metrics().snapshot();
    let series = [
        "classic_subsume_tests_total",
        "classic_propagation_steps_total",
        "classic_store_appends_total",
    ];
    for name in series {
        let (_, v) = snap
            .counters
            .get(name)
            .unwrap_or_else(|| panic!("{name} not registered"));
        assert!(*v > 0, "{name} must be nonzero after the workload");
    }

    let prom = classic_obs::render_prometheus(&snap);
    let json = classic_obs::render_json(&snap);
    for name in series {
        let v = snap.counters[name].1;
        assert!(
            prom.contains(&format!("# TYPE {name} counter")),
            "{name} TYPE line missing from Prometheus exposition"
        );
        assert!(
            prom.contains(&format!("{name} {v}")),
            "{name} sample missing from Prometheus exposition"
        );
        assert!(
            json.contains(&format!("\"{name}\":{v}")),
            "{name} missing from JSON exposition"
        );
    }
}
