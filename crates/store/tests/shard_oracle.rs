//! Property-based differential oracle for the sharded propagation engine:
//! on any random assertion history, a KB pinned to the sequential engine
//! and a KB pinned to the sharded engine (4 shards, parallel threshold
//! forced down to 2 so even small fixpoints take the epoch/barrier path)
//! must accept/reject the exact same ops and converge to the same logical
//! state. This lives in the store crate because `same_state` — the
//! cross-crate logical-state comparator — and the proptest dev-dependency
//! are both already here.

use classic_core::desc::{Concept, IndRef};
use classic_core::symbol::RoleId;
use classic_kb::Kb;
use classic_store::same_state;
use proptest::prelude::*;

const N_ROLES: usize = 3;
const N_INDS: usize = 8;

fn schema_kb(threads: usize) -> Kb {
    let mut kb = Kb::new();
    kb.set_propagation_threads(threads);
    kb.set_propagation_min_batch(2);
    for i in 0..N_ROLES {
        kb.define_role(&format!("r{i}")).unwrap();
    }
    kb.define_concept("P0", Concept::primitive(Concept::thing(), "p0"))
        .unwrap();
    let p0 = Concept::Name(kb.schema().symbols.find_concept("P0").unwrap());
    kb.define_concept(
        "HAS-R0",
        Concept::and([p0.clone(), Concept::AtLeast(1, RoleId::from_index(0))]),
    )
    .unwrap();
    // A rule so histories exercise forward chaining through the shards.
    kb.assert_rule("HAS-R0", Concept::AtMost(9, RoleId::from_index(1)))
        .unwrap();
    for i in 0..N_INDS {
        kb.create_ind(&format!("x{i}")).unwrap();
    }
    kb
}

#[derive(Debug, Clone)]
enum Op {
    Prim(usize),
    AtLeast(usize, usize, u32),
    AtMost(usize, usize, u32),
    Fills(usize, usize, usize),
    /// Wide fan-out: fill a role with several individuals at once, so the
    /// subsequent `All` ops seed worklists broad enough to go parallel.
    FillsMany(usize, usize, Vec<usize>),
    All(usize, usize),
    SameAs(usize, usize, usize),
    Close(usize, usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..N_INDS).prop_map(Op::Prim),
        (0..N_INDS, 0..N_ROLES, 0u32..3).prop_map(|(i, r, n)| Op::AtLeast(i, r, n)),
        (0..N_INDS, 0..N_ROLES, 1u32..4).prop_map(|(i, r, n)| Op::AtMost(i, r, n)),
        (0..N_INDS, 0..N_ROLES, 0..N_INDS).prop_map(|(i, r, j)| Op::Fills(i, r, j)),
        (
            0..N_INDS,
            0..N_ROLES,
            proptest::collection::vec(0..N_INDS, 2..6)
        )
            .prop_map(|(i, r, js)| Op::FillsMany(i, r, js)),
        (0..N_INDS, 0..N_ROLES).prop_map(|(i, r)| Op::All(i, r)),
        (0..N_INDS, 0..N_ROLES, 0..N_ROLES).prop_map(|(i, r, s)| Op::SameAs(i, r, s)),
        (0..N_INDS, 0..N_ROLES).prop_map(|(i, r)| Op::Close(i, r)),
    ]
}

/// Apply one op; returns whether the KB accepted it.
fn apply(kb: &mut Kb, op: &Op) -> bool {
    let (name, c) = match op {
        Op::Prim(i) => (
            format!("x{i}"),
            Concept::Name(kb.schema().symbols.find_concept("P0").unwrap()),
        ),
        Op::AtLeast(i, r, n) => (
            format!("x{i}"),
            Concept::AtLeast(*n, RoleId::from_index(*r)),
        ),
        Op::AtMost(i, r, n) => (format!("x{i}"), Concept::AtMost(*n, RoleId::from_index(*r))),
        Op::Fills(i, r, j) => {
            let f = IndRef::Classic(kb.schema_mut().symbols.individual(&format!("x{j}")));
            (
                format!("x{i}"),
                Concept::Fills(RoleId::from_index(*r), vec![f]),
            )
        }
        Op::FillsMany(i, r, js) => {
            let fs: Vec<IndRef> = js
                .iter()
                .map(|j| IndRef::Classic(kb.schema_mut().symbols.individual(&format!("x{j}"))))
                .collect();
            (format!("x{i}"), Concept::Fills(RoleId::from_index(*r), fs))
        }
        Op::All(i, r) => {
            let p0 = Concept::Name(kb.schema().symbols.find_concept("P0").unwrap());
            (
                format!("x{i}"),
                Concept::All(RoleId::from_index(*r), Box::new(p0)),
            )
        }
        Op::SameAs(i, r, s) => (
            format!("x{i}"),
            Concept::SameAs(vec![RoleId::from_index(*r)], vec![RoleId::from_index(*s)]),
        ),
        Op::Close(i, r) => (format!("x{i}"), Concept::Close(RoleId::from_index(*r))),
    };
    kb.assert_ind(&name, &c).is_ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sharded_engine_matches_sequential_on_random_histories(
        ops in proptest::collection::vec(op_strategy(), 1..32)
    ) {
        let mut seq = schema_kb(1);
        let mut shd = schema_kb(4);
        for (ix, op) in ops.iter().enumerate() {
            let a = apply(&mut seq, op);
            let b = apply(&mut shd, op);
            prop_assert_eq!(
                a, b,
                "op {} ({:?}) accepted by one engine, rejected by the other",
                ix, op
            );
        }
        prop_assert!(
            same_state(&seq, &shd),
            "engines accepted the same history but diverged in state"
        );
        seq.check_invariants().expect("sequential invariants");
        shd.check_invariants().expect("sharded invariants");
    }
}
