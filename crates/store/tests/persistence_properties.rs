//! Property-based tests for persistence: any accepted update history must
//! replay to an identical database — "a cache for persistent information"
//! (paper §1) must survive the round trip with all *derived* state
//! (recognition, propagation, rule consequences) rebuilt exactly.

use classic_core::desc::{Concept, IndRef};
use classic_core::symbol::RoleId;
use classic_kb::Kb;
use classic_store::{roundtrip, same_state, snapshot_to_string};
use proptest::prelude::*;

const N_ROLES: usize = 3;
const N_INDS: usize = 4;

fn schema_kb() -> Kb {
    let mut kb = Kb::new();
    for i in 0..N_ROLES {
        kb.define_role(&format!("r{i}")).unwrap();
    }
    kb.define_attribute("a0").unwrap();
    kb.define_concept("P0", Concept::primitive(Concept::thing(), "p0"))
        .unwrap();
    let p0 = Concept::Name(kb.schema().symbols.find_concept("P0").unwrap());
    kb.define_concept(
        "HAS-R0",
        Concept::and([p0.clone(), Concept::AtLeast(1, RoleId::from_index(0))]),
    )
    .unwrap();
    kb.assert_rule("HAS-R0", Concept::AtMost(9, RoleId::from_index(1)))
        .unwrap();
    for i in 0..N_INDS {
        kb.create_ind(&format!("x{i}")).unwrap();
    }
    kb
}

#[derive(Debug, Clone)]
enum Op {
    Prim(usize),
    AtLeast(usize, usize, u32),
    AtMost(usize, usize, u32),
    Fills(usize, usize, usize),
    FillsHost(usize, usize, i64),
    Close(usize, usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..N_INDS).prop_map(Op::Prim),
        (0..N_INDS, 0..N_ROLES, 0u32..3).prop_map(|(i, r, n)| Op::AtLeast(i, r, n)),
        (0..N_INDS, 0..N_ROLES, 1u32..4).prop_map(|(i, r, n)| Op::AtMost(i, r, n)),
        (0..N_INDS, 0..N_ROLES, 0..N_INDS).prop_map(|(i, r, j)| Op::Fills(i, r, j)),
        (0..N_INDS, 0..N_ROLES, 0i64..5).prop_map(|(i, r, v)| Op::FillsHost(i, r, v)),
        (0..N_INDS, 0..N_ROLES).prop_map(|(i, r)| Op::Close(i, r)),
    ]
}

fn apply(kb: &mut Kb, op: &Op) {
    let (name, c) = match op {
        Op::Prim(i) => (
            format!("x{i}"),
            Concept::Name(kb.schema().symbols.find_concept("P0").unwrap()),
        ),
        Op::AtLeast(i, r, n) => (
            format!("x{i}"),
            Concept::AtLeast(*n, RoleId::from_index(*r)),
        ),
        Op::AtMost(i, r, n) => (format!("x{i}"), Concept::AtMost(*n, RoleId::from_index(*r))),
        Op::Fills(i, r, j) => {
            let f = IndRef::Classic(kb.schema_mut().symbols.individual(&format!("x{j}")));
            (
                format!("x{i}"),
                Concept::Fills(RoleId::from_index(*r), vec![f]),
            )
        }
        Op::FillsHost(i, r, v) => (
            format!("x{i}"),
            Concept::Fills(
                RoleId::from_index(*r),
                vec![IndRef::Host(classic_core::HostValue::Int(*v))],
            ),
        ),
        Op::Close(i, r) => (format!("x{i}"), Concept::Close(RoleId::from_index(*r))),
    };
    // Rejected updates simply don't enter the history.
    let _ = kb.assert_ind(&name, &c);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn any_accepted_history_replays_identically(
        ops in proptest::collection::vec(op_strategy(), 1..24)
    ) {
        let mut kb = schema_kb();
        for op in &ops {
            apply(&mut kb, op);
        }
        let rebuilt = roundtrip(&kb, |_| {}).expect("snapshot replays");
        prop_assert!(same_state(&kb, &rebuilt), "replayed state diverged");
        // Snapshot text is a fixed point: snapshotting the rebuilt KB
        // yields the same script.
        prop_assert_eq!(snapshot_to_string(&kb), snapshot_to_string(&rebuilt));
    }

    #[test]
    fn double_roundtrip_is_stable(
        ops in proptest::collection::vec(op_strategy(), 1..16)
    ) {
        let mut kb = schema_kb();
        for op in &ops {
            apply(&mut kb, op);
        }
        let once = roundtrip(&kb, |_| {}).expect("first replay");
        let twice = roundtrip(&once, |_| {}).expect("second replay");
        prop_assert!(same_state(&once, &twice));
    }
}
