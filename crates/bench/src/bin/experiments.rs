//! Experiment runner: regenerates every quantitative result of the
//! reproduction (see DESIGN.md §5 and EXPERIMENTS.md).
//!
//! ```text
//! cargo run -p classic-bench --release --bin experiments           # all
//! cargo run -p classic-bench --release --bin experiments -- e3 e7  # some
//! cargo run -p classic-bench --release --bin experiments -- list
//! ```

use classic_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "list") {
        for (id, desc, _) in experiments::registry() {
            println!("{id}: {desc}");
        }
        return;
    }
    let ids: Vec<String> = if args.is_empty() {
        vec!["all".to_owned()]
    } else {
        args
    };
    for id in ids {
        match experiments::run(&id) {
            Some(report) => println!("{report}"),
            None => {
                eprintln!("unknown experiment {id:?}; try `list`");
                std::process::exit(1);
            }
        }
    }
}
