//! Experiment runner: regenerates every quantitative result of the
//! reproduction (see DESIGN.md §5 and EXPERIMENTS.md).
//!
//! ```text
//! cargo run -p classic-bench --release --bin experiments           # all
//! cargo run -p classic-bench --release --bin experiments -- e3 e7  # some
//! cargo run -p classic-bench --release --bin experiments -- list
//! ```

use classic_bench::experiments;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(ix) = args.iter().position(|a| a == "--smoke") {
        // Smoke mode: experiments that honor it shrink their workload
        // sizes (CI runs E12 this way).
        args.remove(ix);
        std::env::set_var("CLASSIC_BENCH_SMOKE", "1");
    }
    if args.iter().any(|a| a == "list") {
        for (id, desc, _) in experiments::registry() {
            println!("{id}: {desc}");
        }
        return;
    }
    let ids: Vec<String> = if args.is_empty() {
        vec!["all".to_owned()]
    } else {
        args
    };
    for id in ids {
        match experiments::run(&id) {
            Some(report) => println!("{report}"),
            None => {
                eprintln!("unknown experiment {id:?}; try `list`");
                std::process::exit(1);
            }
        }
    }
}
