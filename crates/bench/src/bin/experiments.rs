//! Experiment runner: regenerates every quantitative result of the
//! reproduction (see DESIGN.md §5 and EXPERIMENTS.md).
//!
//! ```text
//! cargo run -p classic-bench --release --bin experiments           # all
//! cargo run -p classic-bench --release --bin experiments -- e3 e7  # some
//! cargo run -p classic-bench --release --bin experiments -- list
//! cargo run -p classic-bench --release --bin experiments -- e9 --metrics out.prom
//! cargo run -p classic-bench --release --bin experiments -- e4 --trace-out run.json
//! ```
//!
//! `--metrics <path>` dumps the process-wide metric roll-up (every KB the
//! experiments built) after the run: Prometheus text at `<path>`, JSON at
//! `<path>.json`.
//!
//! `--trace-out <path>` raises observability to Full for the run and
//! afterwards dumps every retained span tree — including those of KBs
//! the experiments already dropped (their recorders bury traces in a
//! process graveyard) — as Chrome trace-event JSON. Load the file in
//! Perfetto or `chrome://tracing`.

use classic_bench::experiments;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(ix) = args.iter().position(|a| a == "--smoke") {
        // Smoke mode: experiments that honor it shrink their workload
        // sizes (CI runs E12 and E13 this way).
        args.remove(ix);
        std::env::set_var("CLASSIC_BENCH_SMOKE", "1");
    }
    let mut metrics_path: Option<String> = None;
    if let Some(ix) = args.iter().position(|a| a == "--metrics") {
        if ix + 1 >= args.len() {
            eprintln!("--metrics needs a path");
            std::process::exit(1);
        }
        metrics_path = Some(args.remove(ix + 1));
        args.remove(ix);
    }
    let mut trace_path: Option<String> = None;
    if let Some(ix) = args.iter().position(|a| a == "--trace-out") {
        if ix + 1 >= args.len() {
            eprintln!("--trace-out needs a path");
            std::process::exit(1);
        }
        trace_path = Some(args.remove(ix + 1));
        args.remove(ix);
        // Spans only record at Full; the dump would be empty otherwise.
        classic_obs::set_level(classic_obs::ObsLevel::Full);
    }
    if args.iter().any(|a| a == "list") {
        for (id, desc, _) in experiments::registry() {
            println!("{id}: {desc}");
        }
        return;
    }
    let ids: Vec<String> = if args.is_empty() {
        vec!["all".to_owned()]
    } else {
        args
    };
    for id in ids {
        match experiments::run(&id) {
            Some(report) => println!("{report}"),
            None => {
                eprintln!("unknown experiment {id:?}; try `list`");
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = metrics_path {
        std::fs::write(&path, classic_obs::render_all_prometheus())
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        let json_path = format!("{path}.json");
        std::fs::write(&json_path, classic_obs::render_all_json())
            .unwrap_or_else(|e| panic!("writing {json_path}: {e}"));
        eprintln!("; metrics written to {path} and {json_path}");
    }
    if let Some(path) = trace_path {
        let traces = classic_obs::all_traces();
        std::fs::write(&path, classic_obs::render_chrome_trace(&traces))
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!(
            "; {} retained trace(s) written to {path} (Chrome trace-event JSON)",
            traces.len()
        );
    }
}
