//! Dump a generated workload as a CLASSIC command script.
//!
//! Bridges the benchmark generators and the interactive tooling: the
//! emitted script replays through the REPL (`cargo run --example repl --
//! <file>`) or `classic_store::replay`, so generated databases can be
//! inspected interactively or persisted.
//!
//! ```text
//! cargo run -p classic-bench --release --bin workload_dump -- crime 200 > crime.classic
//! cargo run -p classic-bench --release --bin workload_dump -- software 500 > sw.classic
//! cargo run -p classic-bench --release --bin workload_dump -- schema 100 > schema.classic
//! ```

use classic_bench::workload::{crime, schema_gen, software};
use classic_store::snapshot_to_string;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let usage = "usage: workload_dump <crime|software|schema> [size]";
    let kind = args.first().map(String::as_str).unwrap_or("crime");
    let size: usize = args
        .get(1)
        .map(|s| s.parse().expect("size must be a number"))
        .unwrap_or(100);
    let kb = match kind {
        "crime" => {
            crime::build(&crime::CrimeConfig {
                crimes: size,
                ..crime::CrimeConfig::default()
            })
            .kb
        }
        "software" => {
            software::build(&software::SoftwareConfig {
                modules: (size / 25).max(2),
                functions: size,
                ..software::SoftwareConfig::default()
            })
            .kb
        }
        "schema" => schema_gen::generate_schema(&schema_gen::SchemaGenConfig {
            concepts: size,
            ..schema_gen::SchemaGenConfig::default()
        })
        .build_kb(),
        other => {
            eprintln!("unknown workload {other:?}\n{usage}");
            std::process::exit(1);
        }
    };
    print!("{}", snapshot_to_string(&kb));
}
