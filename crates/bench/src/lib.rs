//! # classic-bench
//!
//! Workload generators and the experiment harness for the CLASSIC
//! reproduction. The paper (SIGMOD 1989) contains no numbered tables or
//! figures; the experiments here regenerate its quantitative claims —
//! see DESIGN.md §5 for the experiment index (E1…E8) and EXPERIMENTS.md
//! for paper-vs-measured results.
//!
//! * `cargo run -p classic-bench --release --bin experiments` prints every
//!   experiment table;
//! * `cargo bench` runs the Criterion timings over the same code paths.

#![forbid(unsafe_code)]

pub mod experiments;
pub mod workload;
