//! The software information system workload (experiments E3, E8).
//!
//! The paper reports that kandor (CLASSIC's predecessor) backed "a
//! prototype tool for representing and querying a knowledge base of
//! several hundred concepts (and several thousand individuals) about a
//! large software system and its structure", since upgraded to CLASSIC
//! (§4). That AT&T knowledge base is proprietary, so — per the
//! substitution rule in DESIGN.md — this module generates a deterministic
//! synthetic equivalent of the same shape: modules, files and functions
//! with `defined-in`/`calls`/`imports`/`loc` relationships, a schema of
//! primitive kinds plus a ladder of *defined* concepts, and query
//! workloads that exercise the classification-pruned retrieval of §5.

use classic_core::desc::{Concept, IndRef};
use classic_core::HostValue;
use classic_kb::Kb;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the software-IS generator.
#[derive(Debug, Clone)]
pub struct SoftwareConfig {
    pub modules: usize,
    pub functions: usize,
    /// Max outgoing `calls` edges per function.
    pub max_calls: usize,
    /// Extra defined concepts (the `CALLER-{k}` ladder) to widen the
    /// schema, mirroring the "several hundred concepts" scale knob.
    pub ladder: usize,
    pub seed: u64,
}

impl Default for SoftwareConfig {
    fn default() -> Self {
        SoftwareConfig {
            modules: 20,
            functions: 400,
            max_calls: 6,
            ladder: 8,
            seed: 0x50F7_3142,
        }
    }
}

/// Names of the roles/concepts the generated KB guarantees to contain.
pub struct SoftwareKb {
    pub kb: Kb,
    pub cfg: SoftwareConfig,
}

/// Build the software-IS knowledge base.
pub fn build(cfg: &SoftwareConfig) -> SoftwareKb {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut kb = Kb::new();
    // Roles.
    kb.define_role("defined-in").expect("fresh");
    kb.define_role("calls").expect("fresh");
    kb.define_role("imports").expect("fresh");
    kb.define_role("loc").expect("fresh");
    let defined_in = kb.schema().symbols.find_role("defined-in").expect("role");
    let calls = kb.schema().symbols.find_role("calls").expect("role");
    let imports = kb.schema().symbols.find_role("imports").expect("role");
    let loc = kb.schema().symbols.find_role("loc").expect("role");
    // Primitive kinds, mutually disjoint (a software object is exactly one
    // of module/file/function — the §3.4 integrity idiom).
    kb.define_concept(
        "SOFTWARE-OBJECT",
        Concept::primitive(Concept::thing(), "software-object"),
    )
    .expect("fresh");
    let so = Concept::Name(
        kb.schema()
            .symbols
            .find_concept("SOFTWARE-OBJECT")
            .expect("c"),
    );
    for kind in ["MODULE", "FUNCTION", "FILE"] {
        kb.define_concept(
            kind,
            Concept::disjoint_primitive(so.clone(), "sw-kind", &kind.to_lowercase()),
        )
        .expect("fresh");
    }
    let function = Concept::Name(kb.schema().symbols.find_concept("FUNCTION").expect("c"));
    let module = Concept::Name(kb.schema().symbols.find_concept("MODULE").expect("c"));
    // Defined concepts (recognition targets).
    kb.define_concept(
        "DEFINED-FUNCTION",
        Concept::and([function.clone(), Concept::AtLeast(1, defined_in)]),
    )
    .expect("fresh");
    kb.define_concept(
        "LEAF-FUNCTION",
        Concept::and([function.clone(), Concept::AtMost(0, calls)]),
    )
    .expect("fresh");
    kb.define_concept(
        "CONNECTED-MODULE",
        Concept::and([module.clone(), Concept::AtLeast(1, imports)]),
    )
    .expect("fresh");
    // The CALLER-k ladder: functions with at least k outgoing calls.
    for k in 1..=cfg.ladder {
        kb.define_concept(
            &format!("CALLER-{k}"),
            Concept::and([function.clone(), Concept::AtLeast(k as u32, calls)]),
        )
        .expect("fresh");
    }
    // Individuals: modules with imports, functions with defined-in, calls
    // and host-valued loc.
    for m in 0..cfg.modules {
        let name = format!("mod-{m}");
        kb.create_ind(&name).expect("fresh ind");
        kb.assert_ind(&name, &module).expect("coherent");
        if m > 0 && rng.gen_bool(0.7) {
            let target = format!("mod-{}", rng.gen_range(0..m));
            let t = IndRef::Classic(kb.schema_mut().symbols.individual(&target));
            kb.assert_ind(&name, &Concept::Fills(imports, vec![t]))
                .expect("coherent");
        }
    }
    for f in 0..cfg.functions {
        let name = format!("fn-{f}");
        kb.create_ind(&name).expect("fresh ind");
        kb.assert_ind(&name, &function).expect("coherent");
        let m = format!("mod-{}", rng.gen_range(0..cfg.modules));
        let mref = IndRef::Classic(kb.schema_mut().symbols.individual(&m));
        kb.assert_ind(&name, &Concept::Fills(defined_in, vec![mref]))
            .expect("coherent");
        let n_calls = rng.gen_range(0..=cfg.max_calls);
        if n_calls > 0 && f > 0 {
            let targets: Vec<IndRef> = (0..n_calls)
                .map(|_| {
                    let t = format!("fn-{}", rng.gen_range(0..f));
                    IndRef::Classic(kb.schema_mut().symbols.individual(&t))
                })
                .collect();
            kb.assert_ind(&name, &Concept::Fills(calls, targets))
                .expect("coherent");
        } else if rng.gen_bool(0.5) {
            // Provably leaf: calls closed at zero.
            kb.assert_ind(&name, &Concept::Close(calls))
                .expect("coherent");
        }
        let lines = HostValue::Int(rng.gen_range(5..500));
        kb.assert_ind(&name, &Concept::Fills(loc, vec![IndRef::Host(lines)]))
            .expect("coherent");
    }
    SoftwareKb {
        kb,
        cfg: cfg.clone(),
    }
}

impl SoftwareKb {
    /// The query workload: refinements at varying selectivity, phrased as
    /// ad-hoc concepts (not schema names), so retrieval must classify
    /// them (§5's technique) rather than hit the extension index alone.
    pub fn queries(&mut self) -> Vec<(String, Concept)> {
        let s = self.kb.schema_mut();
        let calls = s.symbols.find_role("calls").expect("role");
        let defined_in = s.symbols.find_role("defined-in").expect("role");
        let imports = s.symbols.find_role("imports").expect("role");
        let function = Concept::Name(s.symbols.find_concept("FUNCTION").expect("c"));
        let module = Concept::Name(s.symbols.find_concept("MODULE").expect("c"));
        vec![
            (
                "busy functions (≥3 calls, defined somewhere)".into(),
                Concept::and([
                    function.clone(),
                    Concept::AtLeast(3, calls),
                    Concept::AtLeast(1, defined_in),
                ]),
            ),
            (
                "very busy functions (≥5 calls)".into(),
                Concept::and([function.clone(), Concept::AtLeast(5, calls)]),
            ),
            (
                "provably-leaf functions".into(),
                Concept::and([function.clone(), Concept::AtMost(0, calls)]),
            ),
            (
                "hub modules (≥1 import, ≤8 imports)".into(),
                Concept::and([
                    module,
                    Concept::AtLeast(1, imports),
                    Concept::AtMost(8, imports),
                ]),
            ),
            (
                "defined functions with some call".into(),
                Concept::and([
                    function,
                    Concept::AtLeast(1, defined_in),
                    Concept::AtLeast(1, calls),
                ]),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_recognizes() {
        let mut sw = build(&SoftwareConfig {
            modules: 5,
            functions: 60,
            ..SoftwareConfig::default()
        });
        assert_eq!(sw.kb.ind_count(), 65);
        // Every function with a defined-in is a DEFINED-FUNCTION.
        let df = sw
            .kb
            .schema()
            .symbols
            .find_concept("DEFINED-FUNCTION")
            .expect("c");
        let instances = sw.kb.instances_of(df).expect("defined");
        assert_eq!(instances.len(), 60);
        // Queries agree between pruned and naive retrieval.
        for (label, q) in sw.queries() {
            let a = classic_query::Query::concept(q.clone())
                .run(&mut sw.kb)
                .expect("query")
                .into_known()
                .expect("known mode");
            let b = classic_query::retrieve_naive(&mut sw.kb, &q).expect("query");
            let mut x = a.known.clone();
            let mut y = b.known.clone();
            x.sort();
            y.sort();
            assert_eq!(x, y, "pruned/naive disagree on {label}");
            assert!(
                a.stats.tested <= b.stats.tested,
                "pruning tested more candidates on {label}"
            );
        }
    }

    #[test]
    fn deterministic() {
        let cfg = SoftwareConfig {
            modules: 4,
            functions: 30,
            ..SoftwareConfig::default()
        };
        let a = build(&cfg);
        let b = build(&cfg);
        assert_eq!(a.kb.ind_count(), b.kb.ind_count());
        let leaf_a =
            a.kb.schema()
                .symbols
                .find_concept("LEAF-FUNCTION")
                .expect("c");
        let leaf_b =
            b.kb.schema()
                .symbols
                .find_concept("LEAF-FUNCTION")
                .expect("c");
        assert_eq!(
            a.kb.instances_of(leaf_a).expect("ok").len(),
            b.kb.instances_of(leaf_b).expect("ok").len()
        );
    }
}
