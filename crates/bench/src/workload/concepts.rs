//! Random concept-expression workloads (experiments E1 and E5).
//!
//! E1 measures the paper's §5 claim that subsumption runs "in time
//! proportional to the sizes of the two concepts", so the generator
//! produces *coherent* concepts of a controllable structural size over a
//! fixed vocabulary of roles and primitives. E5 measures normalization
//! and needs pairs of syntactically different but provably equivalent
//! expressions, produced by applying the §2.2 equivalences as rewrite
//! rules (AND reordering/flattening, ALL-over-AND splitting, ONE-OF
//! duplication into intersecting enumerations).

use classic_core::desc::{Concept, IndRef};
use classic_core::schema::Schema;
use classic_core::symbol::RoleId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the random concept generator.
#[derive(Debug, Clone)]
pub struct ConceptGenConfig {
    /// Number of roles in the vocabulary.
    pub roles: usize,
    /// Number of primitive concepts in the vocabulary.
    pub prims: usize,
    /// Pool of individual names usable in `ONE-OF`.
    pub individuals: usize,
    /// Maximum `ALL` nesting depth.
    pub max_depth: usize,
    /// RNG seed (all workloads are deterministic).
    pub seed: u64,
}

impl Default for ConceptGenConfig {
    fn default() -> Self {
        ConceptGenConfig {
            roles: 8,
            prims: 8,
            individuals: 16,
            max_depth: 3,
            seed: 0xC1A5_51C0,
        }
    }
}

/// Deterministic generator of coherent concept expressions.
pub struct ConceptGen {
    pub schema: Schema,
    roles: Vec<RoleId>,
    prims: Vec<Concept>,
    individuals: Vec<IndRef>,
    max_depth: usize,
    rng: StdRng,
}

impl ConceptGen {
    pub fn new(cfg: &ConceptGenConfig) -> ConceptGen {
        let mut schema = Schema::new();
        let roles: Vec<RoleId> = (0..cfg.roles)
            .map(|i| schema.define_role(&format!("r{i}")).expect("fresh role"))
            .collect();
        let prims: Vec<Concept> = (0..cfg.prims)
            .map(|i| {
                let name = format!("P{i}");
                schema
                    .define_concept(
                        &name,
                        Concept::primitive(Concept::thing(), &format!("p{i}")),
                    )
                    .expect("fresh prim");
                Concept::Name(schema.symbols.find_concept(&name).expect("just defined"))
            })
            .collect();
        let individuals: Vec<IndRef> = (0..cfg.individuals)
            .map(|i| IndRef::Classic(schema.symbols.individual(&format!("I{i}"))))
            .collect();
        ConceptGen {
            schema,
            roles,
            prims,
            individuals,
            max_depth: cfg.max_depth,
            rng: StdRng::seed_from_u64(cfg.seed),
        }
    }

    /// Generate a coherent concept with structural size ≈ `target_size`.
    ///
    /// Coherence by construction: per conjunction each role gets at most
    /// one `AT-LEAST` (≤ 3) and one `AT-MOST` (≥ 4), so bounds never
    /// cross; `ONE-OF` sets are non-empty; primitives have no disjoint
    /// groupings.
    pub fn concept(&mut self, target_size: usize) -> Concept {
        self.gen_conj(target_size, self.max_depth)
    }

    fn gen_conj(&mut self, budget: usize, depth: usize) -> Concept {
        let mut parts = Vec::new();
        let mut spent = 1usize; // the AND node
        let mut used_at_least = vec![false; self.roles.len()];
        let mut used_at_most = vec![false; self.roles.len()];
        // One ALL and one AT-LEAST per role per conjunction, and one
        // ONE-OF of size ≥ 3 (= the AT-LEAST ceiling) per conjunction:
        // together these keep every generated expression coherent — an
        // ALL's enumerated range can never undercut a sibling AT-LEAST,
        // and enumerations are never intersected at one level.
        let mut used_all = vec![false; self.roles.len()];
        let mut used_one_of = false;
        while spent < budget {
            let remaining = budget - spent;
            let choice = self.rng.gen_range(0..5u8);
            let part = match choice {
                0 => {
                    let p = self.prims[self.rng.gen_range(0..self.prims.len())].clone();
                    spent += 1;
                    p
                }
                1 => {
                    let r = self.rng.gen_range(0..self.roles.len());
                    if used_at_least[r] {
                        continue;
                    }
                    used_at_least[r] = true;
                    spent += 1;
                    Concept::AtLeast(self.rng.gen_range(0..=3), self.roles[r])
                }
                2 => {
                    let r = self.rng.gen_range(0..self.roles.len());
                    if used_at_most[r] {
                        continue;
                    }
                    used_at_most[r] = true;
                    spent += 1;
                    Concept::AtMost(self.rng.gen_range(4..=8), self.roles[r])
                }
                3 if depth > 0 && remaining >= 3 => {
                    let r = self.rng.gen_range(0..self.roles.len());
                    if used_all[r] {
                        continue;
                    }
                    used_all[r] = true;
                    let inner_budget = self.rng.gen_range(2..=remaining.min(budget / 2 + 2));
                    let inner = self.gen_conj(inner_budget, depth - 1);
                    spent += 1 + inner.size();
                    Concept::all(self.roles[r], inner)
                }
                _ => {
                    if used_one_of || remaining < 4 {
                        continue;
                    }
                    used_one_of = true;
                    let k = self.rng.gen_range(3..=4.min(self.individuals.len()));
                    let start = self.rng.gen_range(0..self.individuals.len() - k + 1);
                    spent += 1 + k;
                    Concept::OneOf(self.individuals[start..start + k].to_vec())
                }
            };
            parts.push(part);
        }
        match parts.len() {
            0 => Concept::thing(),
            1 => parts.pop().expect("one"),
            _ => Concept::And(parts),
        }
    }

    /// Produce `(c, c')` where `c'` is a semantics-preserving rewrite of
    /// `c` (the §2.2 equivalences run backwards): equivalent but
    /// syntactically different.
    pub fn equivalent_pair(&mut self, target_size: usize) -> (Concept, Concept) {
        let c = self.concept(target_size);
        let rewritten = self.rewrite(&c);
        (c, rewritten)
    }

    fn rewrite(&mut self, c: &Concept) -> Concept {
        match c {
            Concept::And(parts) => {
                // Flatten nested ANDs, rewrite parts, then rotate.
                let mut out: Vec<Concept> = Vec::new();
                for p in parts {
                    match self.rewrite(p) {
                        Concept::And(inner) => out.extend(inner),
                        other => out.push(other),
                    }
                }
                if out.len() > 1 {
                    let k = self.rng.gen_range(0..out.len());
                    out.rotate_left(k);
                    // Duplicate one conjunct — idempotence of AND.
                    let dup = out[self.rng.gen_range(0..out.len())].clone();
                    out.push(dup);
                }
                Concept::And(out)
            }
            Concept::All(r, inner) => {
                let inner = self.rewrite(inner);
                // (ALL r (AND a b)) ⇝ (AND (ALL r a) (ALL r b))
                if let Concept::And(parts) = inner {
                    if parts.len() > 1 && self.rng.gen_bool(0.5) {
                        return Concept::And(
                            parts.into_iter().map(|p| Concept::all(*r, p)).collect(),
                        );
                    }
                    Concept::all(*r, Concept::And(parts))
                } else {
                    Concept::all(*r, inner)
                }
            }
            Concept::OneOf(inds) if inds.len() > 1 => {
                // (ONE-OF S) ⇝ (AND (ONE-OF S ∪ X) (ONE-OF S ∪ Y)) with
                // X ∩ Y disjoint from each other, so the intersection is S.
                let extra_a = self.fresh_extra(inds);
                let extra_b = self.fresh_extra(inds);
                if extra_a != extra_b {
                    let mut a = inds.clone();
                    a.push(extra_a);
                    let mut b = inds.clone();
                    b.push(extra_b);
                    Concept::And(vec![Concept::OneOf(a), Concept::OneOf(b)])
                } else {
                    Concept::OneOf(inds.clone())
                }
            }
            other => other.clone(),
        }
    }

    fn fresh_extra(&mut self, exclude: &[IndRef]) -> IndRef {
        loop {
            let cand = self.individuals[self.rng.gen_range(0..self.individuals.len())].clone();
            if !exclude.contains(&cand) {
                return cand;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use classic_core::normal::normalize;
    use classic_core::subsume::{equivalent, subsumes};

    #[test]
    fn generated_concepts_are_coherent_and_sized() {
        let mut g = ConceptGen::new(&ConceptGenConfig::default());
        for size in [4, 16, 64, 256] {
            let c = g.concept(size);
            assert!(c.size() >= size / 2, "size {} << target {size}", c.size());
            let nf = normalize(&c, &mut g.schema).unwrap();
            assert!(!nf.is_incoherent(), "generator produced ⊥ at size {size}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = ConceptGen::new(&ConceptGenConfig::default());
        let mut b = ConceptGen::new(&ConceptGenConfig::default());
        for _ in 0..10 {
            assert_eq!(a.concept(32), b.concept(32));
        }
    }

    #[test]
    fn equivalent_pairs_are_equivalent() {
        let mut g = ConceptGen::new(&ConceptGenConfig::default());
        for _ in 0..50 {
            let (c, c2) = g.equivalent_pair(24);
            let n1 = normalize(&c, &mut g.schema).unwrap();
            let n2 = normalize(&c2, &mut g.schema).unwrap();
            assert!(equivalent(&n1, &n2), "rewrite broke equivalence");
            // And the normal forms are structurally identical (the §2.2
            // canonicalization property).
            assert_eq!(n1, n2);
        }
    }

    #[test]
    fn generated_pairs_exercise_subsumption_both_ways() {
        // Sanity: among random pairs, subsumption holds sometimes and
        // fails sometimes (the benchmark isn't measuring a constant path).
        let mut g = ConceptGen::new(&ConceptGenConfig::default());
        let mut holds = 0;
        let mut fails = 0;
        for _ in 0..40 {
            let a = g.concept(12);
            let b = g.concept(12);
            let b_and_a = Concept::And(vec![b.clone(), a.clone()]);
            let na = normalize(&a, &mut g.schema).unwrap();
            let nboth = normalize(&b_and_a, &mut g.schema).unwrap();
            if subsumes(&na, &nboth) {
                holds += 1; // must always hold (conjunction is below conjunct)
            }
            let nb = normalize(&b, &mut g.schema).unwrap();
            if !subsumes(&na, &nb) {
                fails += 1;
            }
        }
        assert_eq!(holds, 40);
        assert!(fails > 0);
    }
}
