//! Synthetic layered schemas (experiment E2).
//!
//! The paper's §5 describes classification as the schema-maintenance
//! operation: "all concepts in the schema are reduced to a normal form,
//! and then are compared to each other to establish the subsumption
//! hierarchy". E2 measures that process as the schema grows, comparing
//! the pruned top-down/bottom-up traversal against the naive all-pairs
//! baseline.
//!
//! The generator builds schemas shaped like real CLASSIC applications (a
//! forest of primitive kinds refined by defined concepts): a first layer
//! of primitives under `THING`, then layers of *defined* concepts, each
//! conjoining 1–2 names from earlier layers with cardinality and value
//! restrictions — so the resulting hierarchy has both depth and fan-out,
//! and equivalences occasionally occur (exercising alias handling).

use classic_core::desc::Concept;
use classic_core::symbol::{ConceptName, RoleId};
use classic_kb::Kb;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the layered schema generator.
#[derive(Debug, Clone)]
pub struct SchemaGenConfig {
    /// Total named concepts to define.
    pub concepts: usize,
    /// Concepts in the primitive base layer.
    pub base_prims: usize,
    /// Role vocabulary size.
    pub roles: usize,
    /// Concepts per defined layer.
    pub layer_width: usize,
    pub seed: u64,
}

impl Default for SchemaGenConfig {
    fn default() -> Self {
        SchemaGenConfig {
            concepts: 200,
            base_prims: 12,
            roles: 10,
            layer_width: 24,
            seed: 0x5EED_5C4E,
        }
    }
}

/// A generated schema, as the sequence of definitions to apply.
pub struct GeneratedSchema {
    /// `(name, definition)` pairs, in definition order.
    pub definitions: Vec<(String, Concept)>,
    /// Role names to declare first.
    pub roles: Vec<String>,
}

/// Generate the definition sequence (pure — nothing is applied yet).
pub fn generate_schema(cfg: &SchemaGenConfig) -> GeneratedSchema {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let roles: Vec<String> = (0..cfg.roles).map(|i| format!("r{i}")).collect();
    let mut definitions: Vec<(String, Concept)> = Vec::with_capacity(cfg.concepts);
    // We need the ids stable across the Kb the definitions are later
    // applied to, so definitions reference earlier concepts *by name*
    // through a staging Kb used only to mint consistent ids.
    let mut stage = Kb::new();
    let role_ids: Vec<RoleId> = roles
        .iter()
        .map(|r| stage.define_role(r).expect("fresh role"))
        .collect();
    let mut names: Vec<(String, ConceptName)> = Vec::new();

    let base = cfg.base_prims.min(cfg.concepts).max(1);
    for i in 0..base {
        let name = format!("K{i}");
        let def = Concept::primitive(Concept::thing(), &format!("k{i}"));
        let id = stage.schema_mut().symbols.concept(&name);
        names.push((name.clone(), id));
        definitions.push((name, def));
    }
    let mut defined = base;
    while defined < cfg.concepts {
        let width = cfg.layer_width.min(cfg.concepts - defined);
        for _ in 0..width {
            let name = format!("C{defined}");
            // 1–2 parents from what exists so far.
            let n_parents = if names.len() > 1 && rng.gen_bool(0.3) {
                2
            } else {
                1
            };
            let mut parts: Vec<Concept> = (0..n_parents)
                .map(|_| Concept::Name(names[rng.gen_range(0..names.len())].1))
                .collect();
            // 0–2 restrictions.
            for _ in 0..rng.gen_range(0..=2u8) {
                let r = role_ids[rng.gen_range(0..role_ids.len())];
                parts.push(match rng.gen_range(0..3u8) {
                    0 => Concept::AtLeast(rng.gen_range(1..=3), r),
                    1 => Concept::AtMost(rng.gen_range(4..=8), r),
                    _ => {
                        let target = names[rng.gen_range(0..names.len())].1;
                        Concept::all(r, Concept::Name(target))
                    }
                });
            }
            let def = if parts.len() == 1 {
                // A bare alias would collide with redefinition semantics
                // only if identical; refine it slightly instead.
                Concept::And(vec![
                    parts.pop().expect("one"),
                    Concept::AtMost(9, role_ids[rng.gen_range(0..role_ids.len())]),
                ])
            } else {
                Concept::And(parts)
            };
            let id = stage.schema_mut().symbols.concept(&name);
            names.push((name.clone(), id));
            definitions.push((name, def));
            defined += 1;
        }
    }
    GeneratedSchema { definitions, roles }
}

impl GeneratedSchema {
    /// Apply the definitions to a fresh knowledge base.
    pub fn build_kb(&self) -> Kb {
        let mut kb = Kb::new();
        for r in &self.roles {
            kb.define_role(r).expect("fresh role");
        }
        for (name, def) in &self.definitions {
            kb.define_concept(name, def.clone())
                .expect("generated definition is well-formed");
        }
        kb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_requested_number_of_concepts() {
        let cfg = SchemaGenConfig {
            concepts: 60,
            ..SchemaGenConfig::default()
        };
        let schema = generate_schema(&cfg);
        assert_eq!(schema.definitions.len(), 60);
        let kb = schema.build_kb();
        assert_eq!(kb.schema().concept_count(), 60);
        // The taxonomy has interior structure (not a flat fan under TOP).
        let deep = kb
            .taxonomy()
            .interior_nodes()
            .filter(|&n| {
                !kb.taxonomy()
                    .node(n)
                    .parents
                    .contains(&classic_core::taxonomy::NodeId::TOP)
            })
            .count();
        assert!(deep > 10, "hierarchy too flat: {deep} deep nodes");
    }

    #[test]
    fn deterministic_across_runs() {
        let cfg = SchemaGenConfig {
            concepts: 40,
            ..SchemaGenConfig::default()
        };
        let a = generate_schema(&cfg);
        let b = generate_schema(&cfg);
        assert_eq!(a.definitions.len(), b.definitions.len());
        for ((na, _), (nb, _)) in a.definitions.iter().zip(&b.definitions) {
            assert_eq!(na, nb);
        }
        // And the built taxonomies agree in size.
        assert_eq!(a.build_kb().taxonomy().len(), b.build_kb().taxonomy().len());
    }

    #[test]
    fn pruned_classification_beats_all_pairs_on_generated_schema() {
        let cfg = SchemaGenConfig {
            concepts: 120,
            ..SchemaGenConfig::default()
        };
        let kb = generate_schema(&cfg).build_kb();
        // Classify a fresh refinement of an existing concept both ways.
        let some = kb
            .schema()
            .symbols
            .find_concept("C30")
            .expect("generated concept");
        let nf = kb.schema().concept_nf(some).unwrap().clone();
        let pruned = kb.taxonomy().classify(&nf);
        let brute = kb.taxonomy().classify_brute(&nf);
        assert_eq!(pruned.equivalent, brute.equivalent);
        assert!(
            pruned.tests < brute.tests,
            "pruned {} !< brute {}",
            pruned.tests,
            brute.tests
        );
    }
}
