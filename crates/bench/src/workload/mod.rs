//! Deterministic workload generators for the benchmark harness.
//!
//! Every generator is seeded (`rand` + `StdRng`), so each experiment in
//! EXPERIMENTS.md regenerates identical inputs run to run and machine to
//! machine.

pub mod concepts;
pub mod crime;
pub mod schema_gen;
pub mod software;
