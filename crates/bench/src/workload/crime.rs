//! The law-enforcement workload of paper §4 (experiments E6 and E7).
//!
//! "A typical situation where one starts out with an incomplete view of
//! the actual events, and incrementally fleshes out the details": crimes
//! accumulate evidence assertion by assertion, and the measurements track
//! how much the database *derives* per told fact — recognition,
//! `SAME-AS` filler derivation, closure deductions, and the
//! `typical-suspect` heuristic rule.

use classic_core::desc::{Concept, IndRef};
use classic_kb::{AssertReport, Kb};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the crime-DB generator.
#[derive(Debug, Clone)]
pub struct CrimeConfig {
    pub crimes: usize,
    /// Fraction of crimes asserted to be domestic (site = perpetrator's
    /// domicile), driving co-reference propagation.
    pub domestic_fraction: f64,
    /// Install the "domestic criminals are typically jobless adults" rule.
    pub with_rules: bool,
    pub seed: u64,
}

impl Default for CrimeConfig {
    fn default() -> Self {
        CrimeConfig {
            crimes: 200,
            domestic_fraction: 0.4,
            with_rules: true,
            seed: 0xC814E5,
        }
    }
}

/// The generated KB plus the per-assertion reports (E6's metric source).
pub struct CrimeKb {
    pub kb: Kb,
    pub reports: Vec<AssertReport>,
    pub told_assertions: usize,
}

/// Build the §4 schema: CRIME, DOMESTIC-CRIME, ADULT, and the heuristic
/// rule when requested.
pub fn build_schema(kb: &mut Kb, with_rules: bool) {
    kb.define_role("perpetrator").expect("fresh");
    kb.define_role("victim").expect("fresh");
    kb.define_attribute("site").expect("fresh");
    kb.define_attribute("domicile").expect("fresh");
    kb.define_role("heard-speaking").expect("fresh");
    kb.define_role("jobs").expect("fresh");
    kb.define_role("typical-suspect").expect("fresh");
    let perp = kb.schema().symbols.find_role("perpetrator").expect("r");
    let victim = kb.schema().symbols.find_role("victim").expect("r");
    let site = kb.schema().symbols.find_role("site").expect("r");
    let domicile = kb.schema().symbols.find_role("domicile").expect("r");
    let jobs = kb.schema().symbols.find_role("jobs").expect("r");
    let suspect = kb.schema().symbols.find_role("typical-suspect").expect("r");

    kb.define_concept("PERSON", Concept::primitive(Concept::thing(), "person"))
        .expect("fresh");
    let person = Concept::Name(kb.schema().symbols.find_concept("PERSON").expect("c"));
    kb.define_concept("ADULT", Concept::primitive(person.clone(), "adult"))
        .expect("fresh");
    let adult = Concept::Name(kb.schema().symbols.find_concept("ADULT").expect("c"));
    kb.define_concept(
        "CRIME",
        Concept::primitive(
            Concept::and([
                Concept::AtLeast(1, perp),
                Concept::all(perp, person),
                Concept::AtLeast(1, victim),
                Concept::AtLeast(1, site),
                Concept::AtMost(1, site),
            ]),
            "crime",
        ),
    )
    .expect("fresh");
    let crime = Concept::Name(kb.schema().symbols.find_concept("CRIME").expect("c"));
    kb.define_concept(
        "DOMESTIC-CRIME",
        Concept::and([
            crime,
            Concept::AtMost(1, perp),
            Concept::SameAs(vec![site], vec![perp, domicile]),
        ]),
    )
    .expect("fresh");
    if with_rules {
        // §4: "domestic criminals are typically adults, and have no jobs".
        kb.assert_rule(
            "DOMESTIC-CRIME",
            Concept::all(suspect, Concept::and([adult, Concept::AtMost(0, jobs)])),
        )
        .expect("rule applies cleanly to an empty DB");
    }
}

/// Generate a populated crime database, recording every assertion report.
pub fn build(cfg: &CrimeConfig) -> CrimeKb {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut kb = Kb::new();
    build_schema(&mut kb, cfg.with_rules);
    let perp = kb.schema().symbols.find_role("perpetrator").expect("r");
    let victim = kb.schema().symbols.find_role("victim").expect("r");
    let site = kb.schema().symbols.find_role("site").expect("r");
    let crime_name = kb.schema().symbols.find_concept("CRIME").expect("c");
    let dc_name = kb
        .schema()
        .symbols
        .find_concept("DOMESTIC-CRIME")
        .expect("c");
    let person_name = kb.schema().symbols.find_concept("PERSON").expect("c");

    let mut reports = Vec::new();
    let mut told = 0usize;
    let tell = |kb: &mut Kb,
                name: &str,
                c: &Concept,
                reports: &mut Vec<AssertReport>,
                told: &mut usize| {
        *told += 1;
        reports.push(
            kb.assert_ind(name, c)
                .expect("generated facts are coherent"),
        );
    };

    for i in 0..cfg.crimes {
        let cname = format!("crime-{i}");
        kb.create_ind(&cname).expect("fresh ind");
        tell(
            &mut kb,
            &cname,
            &Concept::Name(crime_name),
            &mut reports,
            &mut told,
        );
        // A victim is always known (not necessarily a person! §4).
        let v = IndRef::Classic(kb.schema_mut().symbols.individual(&format!("victim-{i}")));
        tell(
            &mut kb,
            &cname,
            &Concept::Fills(victim, vec![v]),
            &mut reports,
            &mut told,
        );
        let domestic = rng.gen_bool(cfg.domestic_fraction);
        if domestic {
            // Perpetrator and site known; DOMESTIC-CRIME derives the
            // perpetrator's domicile via SAME-AS.
            let p = format!("suspect-{i}");
            let pref = IndRef::Classic(kb.schema_mut().symbols.individual(&p));
            tell(
                &mut kb,
                &cname,
                &Concept::Fills(perp, vec![pref]),
                &mut reports,
                &mut told,
            );
            tell(
                &mut kb,
                &p,
                &Concept::Name(person_name),
                &mut reports,
                &mut told,
            );
            let home = IndRef::Classic(kb.schema_mut().symbols.individual(&format!("home-{i}")));
            tell(
                &mut kb,
                &cname,
                &Concept::Fills(site, vec![home]),
                &mut reports,
                &mut told,
            );
            tell(
                &mut kb,
                &cname,
                &Concept::Name(dc_name),
                &mut reports,
                &mut told,
            );
        } else {
            // Open case: number of perpetrators only bounded below.
            let n = rng.gen_range(1..=3);
            tell(
                &mut kb,
                &cname,
                &Concept::AtLeast(n, perp),
                &mut reports,
                &mut told,
            );
        }
    }
    CrimeKb {
        kb,
        reports,
        told_assertions: told,
    }
}

impl CrimeKb {
    /// Total derived consequences across all assertions (E6 numerator).
    pub fn total_derived(&self) -> u64 {
        self.reports
            .iter()
            .map(|r| r.fills_propagated + r.corefs_derived + r.rules_fired + r.reclassified)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domestic_crimes_derive_domiciles() {
        let crime_kb = build(&CrimeConfig {
            crimes: 40,
            domestic_fraction: 1.0,
            ..CrimeConfig::default()
        });
        let kb = &crime_kb.kb;
        let domicile = kb.schema().symbols.find_role("domicile").expect("r");
        // Every suspect's domicile was derived via co-reference.
        let mut derived = 0;
        for id in kb.ind_ids() {
            if !kb.ind(id).fillers(domicile).is_empty() {
                derived += 1;
            }
        }
        assert_eq!(derived, 40);
        assert!(crime_kb.total_derived() >= 40);
    }

    #[test]
    fn rule_fires_on_domestic_crimes_only() {
        let crime_kb = build(&CrimeConfig {
            crimes: 30,
            domestic_fraction: 0.5,
            with_rules: true,
            seed: 7,
        });
        let kb = &crime_kb.kb;
        let dc = kb
            .schema()
            .symbols
            .find_concept("DOMESTIC-CRIME")
            .expect("c");
        let n_domestic = kb.instances_of(dc).expect("ok").len();
        assert!(n_domestic > 0);
        let fired: u64 = crime_kb.reports.iter().map(|r| r.rules_fired).sum();
        assert_eq!(fired as usize, n_domestic);
    }

    #[test]
    fn open_cases_have_unbounded_perpetrators() {
        let crime_kb = build(&CrimeConfig {
            crimes: 20,
            domestic_fraction: 0.0,
            ..CrimeConfig::default()
        });
        let kb = &crime_kb.kb;
        let perp = kb.schema().symbols.find_role("perpetrator").expect("r");
        let crime = kb.schema().symbols.find_concept("CRIME").expect("c");
        for id in kb.instances_of(crime).expect("ok") {
            let rr = kb.ind(id).derived.role(perp);
            assert!(rr.at_least >= 1);
            assert!(
                !rr.closed,
                "open case must not have a closed perpetrator role"
            );
        }
    }
}
