//! E18 — end-to-end request tracing: overhead, attribution, export.
//!
//! The paper positions CLASSIC as a shared DBMS facility (§1, §5);
//! PR 10 gives the reproduction the forensics such a facility needs:
//! every wire request runs under a trace id (client-adopted or minted),
//! the span tree roots at the request, and the slowest requests are
//! retained with full attribution. This experiment drives the E14
//! workload shape (concurrent line-protocol clients over several
//! tenants, fsynced writes + snapshot reads) and asserts the tracing
//! claims inline:
//!
//! 1. **Overhead**: best-of-N wall time with Full tracing and default
//!    sampling is ≤ 1.05× the Counters-level wall (+30 ms absolute
//!    slack so a sub-second smoke wall cannot flake the ratio).
//! 2. **Attribution**: after the traced run, every slowlog entry
//!    belongs to a workload tenant, carries a 32-hex trace id, and —
//!    when sampled — roots at `server.request`.
//! 3. **Export**: a client-adopted trace id is retrievable via
//!    `GET /trace?id=…` as Chrome trace-event JSON that parses under
//!    the strict `classic_obs` parser with ts/dur nested inside the
//!    request root; the tenant-wide dump parses too.
//! 4. **Accounting**: `classic_tenant_requests_total{tenant="…"}` on
//!    `/metrics` matches the exact number of forms each tenant was
//!    sent.
//!
//! Full run: 8 clients × 2 tenants × 60 iterations, best of 3; smoke
//! (`CLASSIC_BENCH_SMOKE`): 4 × 2 × 15, best of 2.

use std::io::{BufRead, BufReader, Read, Write as _};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use classic_obs::{Json, ObsLevel};
use classic_server::{ServerConfig, ServerHandle};
use std::fmt::Write as _;

fn smoke() -> bool {
    std::env::var_os("CLASSIC_BENCH_SMOKE").is_some()
}

/// Minimal line-protocol client: one form out, one JSON line back.
struct Client {
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(handle: &ServerHandle) -> Client {
        let stream = TcpStream::connect(handle.local_addr()).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        Client {
            reader: BufReader::new(stream),
        }
    }

    /// Round-trip one form; panics unless the reply is `ok:true`.
    fn ok(&mut self, form: &str) -> String {
        let stream = self.reader.get_mut();
        stream.write_all(form.as_bytes()).expect("send");
        stream.write_all(b"\n").expect("send");
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("reply");
        assert!(
            line.starts_with("{\"ok\":true"),
            "form {form:?} failed: {line}"
        );
        line
    }
}

/// One `GET` against the server's HTTP side, returning the body.
fn http_get(handle: &ServerHandle, path: &str) -> String {
    let mut stream = TcpStream::connect(handle.local_addr()).expect("connect");
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: bench\r\n\r\n").as_bytes())
        .expect("request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("no header/body split in reply to GET {path}"));
    assert!(
        head.starts_with("HTTP/1.1 200"),
        "GET {path} failed: {head}"
    );
    body.to_owned()
}

struct Workload {
    clients: usize,
    tenants: usize,
    iters: usize,
}

impl Workload {
    /// Forms routed to tenant `t`: the 3 schema forms plus each bound
    /// client's `iters` iterations of 2 writes + 1 read. (The
    /// `(tenant …)` binding form itself counts against the session's
    /// previous tenant, i.e. `default`.)
    fn expected_requests(&self, t: usize) -> usize {
        let bound = (0..self.clients).filter(|c| c % self.tenants == t).count();
        3 + bound * self.iters * 3
    }
}

/// Stand a fresh server up, drive the workload, return (wall, handle).
/// The caller shuts the server down (after optional forensics).
fn run_once(w: &Workload, tag: &str) -> (Duration, ServerHandle, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!("classic-bench-e18-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let handle = classic_server::start(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        data_dir: dir.clone(),
        workers: w.clients + 2,
        ..ServerConfig::default()
    })
    .expect("server starts");

    for t in 0..w.tenants {
        let mut c = Client::connect(&handle);
        c.ok(&format!("(tenant e18-{t})"));
        c.ok("(define-role child)");
        c.ok("(define-concept PERSON (PRIMITIVE THING person))");
        c.ok("(define-concept PARENT (AND PERSON (AT-LEAST 1 child)))");
    }

    let wall = Instant::now();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..w.clients)
            .map(|c_ix| {
                let server = &handle;
                let w = &w;
                scope.spawn(move || {
                    let mut client = Client::connect(server);
                    client.ok(&format!("(tenant e18-{})", c_ix % w.tenants));
                    for i in 0..w.iters {
                        let ind = format!("c{c_ix}-i{i}");
                        client.ok(&format!("(create-ind {ind})"));
                        client.ok(&format!(
                            "(assert-ind {ind} (AND PERSON (FILLS child {ind}-kid)))"
                        ));
                        client.ok("(retrieve PARENT)");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("client thread");
        }
    });
    (wall.elapsed(), handle, dir)
}

/// Per-tenant request accounting on the labeled `/metrics` exposition:
/// `classic_tenant_requests_total{tenant="…"}` must match exactly.
fn assert_tenant_accounting(handle: &ServerHandle, w: &Workload, out: &mut String) {
    let metrics = http_get(handle, "/metrics");
    for t in 0..w.tenants {
        let needle = format!("classic_tenant_requests_total{{tenant=\"e18-{t}\"}} ");
        let got: usize = metrics
            .lines()
            .find_map(|l| l.strip_prefix(needle.as_str())?.trim().parse().ok())
            .unwrap_or_else(|| panic!("{needle:?} missing from /metrics"));
        assert_eq!(
            got,
            w.expected_requests(t),
            "per-tenant request accounting off for e18-{t}"
        );
    }
    let _ = writeln!(
        out,
        "asserted: classic_tenant_requests_total{{tenant=…}} exact for all {} tenants",
        w.tenants
    );
}

/// Slowlog forensics after the traced run: every retained entry belongs
/// to the workload, and sampled entries root at the wire request.
fn assert_slowlog(handle: &ServerHandle, out: &mut String) {
    let body = http_get(handle, "/slowlog?n=32");
    let log = Json::parse(body.trim()).expect("slowlog is strict JSON");
    let entries = log
        .get("slowlog")
        .and_then(Json::as_arr)
        .expect("slowlog array");
    assert!(!entries.is_empty(), "traced run left the slowlog empty");
    for e in entries {
        let tenant = e.get("tenant").and_then(Json::as_str).expect("tenant");
        assert!(
            tenant.starts_with("e18-") || tenant == "default",
            "foreign tenant in a freshly cleared slowlog: {tenant}"
        );
        let id = e.get("trace_id").and_then(Json::as_str).expect("trace id");
        assert_eq!(id.len(), 32, "trace id not 32 hex digits: {id:?}");
        if e.get("sampled").and_then(Json::as_bool) == Some(true) {
            assert_eq!(
                e.get("root").and_then(Json::as_str),
                Some("server.request"),
                "sampled slowlog entry not rooted at the request: {e:?}"
            );
        }
    }
    let sampled = entries
        .iter()
        .filter(|e| e.get("sampled").and_then(Json::as_bool) == Some(true))
        .count();
    assert!(
        sampled > 0,
        "no sampled entries despite Full tracing at rate 1.0"
    );
    let _ = writeln!(
        out,
        "asserted: {} slowlog entries, {sampled} with span trees, all rooted at server.request",
        entries.len()
    );
}

/// Wire-propagated id → span tree → Chrome export, end to end: adopt a
/// known id over the line protocol, then pull that one trace back out
/// over HTTP and check attribution and ts/dur nesting under the strict
/// JSON parser.
fn assert_trace_export(handle: &ServerHandle, out: &mut String) {
    let mut c = Client::connect(handle);
    c.ok("(tenant e18-0)");
    c.ok("(trace-id \"e18aced\")");
    c.ok("(retrieve PARENT)");

    let body = http_get(handle, "/trace?id=e18aced");
    let dump = Json::parse(body.trim()).expect("chrome dump parses under the strict parser");
    let events = dump
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents");
    let spans: Vec<&Json> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
        .collect();
    let root = spans
        .iter()
        .find(|e| e.get("name").and_then(Json::as_str) == Some("server.request"))
        .expect("exported tree roots at server.request");
    let args = root.get("args").expect("root args");
    assert_eq!(
        args.get("trace_id").and_then(Json::as_str),
        Some("0000000000000000000000000e18aced"),
        "adopted id lost on the way to the export"
    );
    assert_eq!(args.get("tenant").and_then(Json::as_str), Some("e18-0"));
    assert_eq!(args.get("kind").and_then(Json::as_str), Some("retrieve"));

    let ts = |e: &Json| e.get("ts").and_then(Json::as_num).expect("ts");
    let dur = |e: &Json| e.get("dur").and_then(Json::as_num).expect("dur");
    let (rts, rdur) = (ts(root), dur(root));
    for s in &spans {
        assert!(ts(s) + 1e-3 >= rts, "span starts before the root: {s:?}");
        assert!(
            ts(s) + dur(s) <= rts + rdur + 1e-3,
            "span outlives the root: {s:?}"
        );
    }

    // The tenant-wide dump is strict JSON too.
    let body = http_get(handle, "/trace?tenant=e18-0");
    let dump = Json::parse(body.trim()).expect("tenant trace dump parses");
    let n = dump
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents")
        .len();
    let _ = writeln!(
        out,
        "asserted: adopted id round-trips to Chrome export ({} spans), tenant dump = {n} events, \
         ts/dur nested",
        spans.len()
    );
}

pub fn run() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== E18: end-to-end request tracing: overhead, attribution, export =="
    );
    let _ = writeln!(
        out,
        "E14-shaped workload (concurrent clients, fsynced writes + snapshot reads);"
    );
    let _ = writeln!(
        out,
        "walls are best-of-N per observability level, forensics asserted inline."
    );

    let w = Workload {
        clients: if smoke() { 4 } else { 8 },
        tenants: 2,
        iters: if smoke() { 15 } else { 60 },
    };
    let reps = if smoke() { 2 } else { 3 };
    let ops = w.clients * w.iters * 3;
    let _ = writeln!(
        out,
        "workload: {} clients x {} iterations over {} tenants ({ops} ops), best of {reps}",
        w.clients, w.iters, w.tenants
    );

    let prev_level = classic_obs::level();
    let prev_rate = classic_obs::sample_rate();
    classic_obs::set_sample_rate(1.0); // the default head-sampling rate

    // Counters: histograms and accounting, no spans.
    classic_obs::set_level(ObsLevel::Counters);
    let mut counters_best = Duration::MAX;
    for rep in 0..reps {
        let (wall, handle, dir) = run_once(&w, &format!("counters-{rep}"));
        counters_best = counters_best.min(wall);
        handle.shutdown().expect("graceful shutdown");
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Full: every request traced (rate 1.0). The last rep's server stays
    // up for the forensics; the slowlog is cleared right before it so
    // every retained entry is attributable to this run.
    classic_obs::set_level(ObsLevel::Full);
    let mut full_best = Duration::MAX;
    let mut last: Option<(ServerHandle, std::path::PathBuf)> = None;
    for rep in 0..reps {
        if rep + 1 == reps {
            classic_obs::global_slowlog().clear();
        }
        let (wall, handle, dir) = run_once(&w, &format!("full-{rep}"));
        full_best = full_best.min(wall);
        if rep + 1 == reps {
            last = Some((handle, dir));
        } else {
            handle.shutdown().expect("graceful shutdown");
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    let (handle, dir) = last.expect("final traced server");

    let _ = writeln!(out, "{:>22} {:>12} {:>14}", "level", "best wall s", "ns/op");
    for (name, wall) in [("counters", counters_best), ("full tracing", full_best)] {
        let _ = writeln!(
            out,
            "{:>22} {:>12.3} {:>14.0}",
            name,
            wall.as_secs_f64(),
            wall.as_nanos() as f64 / ops as f64
        );
    }
    let ratio = full_best.as_secs_f64() / counters_best.as_secs_f64().max(1e-9);
    assert!(
        full_best.as_secs_f64() <= counters_best.as_secs_f64() * 1.05 + 0.030,
        "full tracing cost {ratio:.3}x the counters wall (budget 1.05x + 30ms)"
    );
    let _ = writeln!(
        out,
        "asserted: full/counters wall ratio {ratio:.3} within the 1.05x budget"
    );

    assert_tenant_accounting(&handle, &w, &mut out);
    assert_slowlog(&handle, &mut out);
    assert_trace_export(&handle, &mut out);

    handle.shutdown().expect("graceful shutdown");
    let _ = std::fs::remove_dir_all(&dir);
    classic_obs::set_level(prev_level);
    classic_obs::set_sample_rate(prev_rate);
    out
}
