//! E9 — the subsumption kernel: memoized subsumption on interned normal
//! forms plus the bitset transitive-closure index, against the seed's
//! uncached classification path.
//!
//! The paper's §5 complexity argument prices classification in
//! *subsumption tests*. The kernel attacks the constant factor twice:
//! repeated tests between the same pair of (hash-consed) normal forms are
//! answered from a memo, and reachability questions during the
//! parents/children search are answered from transitive-closure bitsets
//! instead of edge walks. Both are pure accelerations — E9 first asserts
//! the two paths place every query identically, then measures the
//! speedup and reports the kernel's own counters
//! ([`classic_kb::Kb::kernel_stats`]).

use crate::experiments::{ns_per, time};
use crate::workload::software::{build, SoftwareConfig};
use std::fmt::Write as _;

pub fn run() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== E9: kernel memo + bitset closure vs uncached classification =="
    );
    let _ = writeln!(
        out,
        "same placements, fewer/cheaper subsumption tests; memo pays off on"
    );
    let _ = writeln!(out, "every repeated query concept");
    let _ = writeln!(
        out,
        "{:>7} {:>9} {:>13} {:>13} {:>9} {:>8}",
        "inds", "queries", "µs/clf (krn)", "µs/clf (unc)", "speedup", "hit%"
    );
    for functions in [500usize, 2_000, 8_000, 20_000] {
        let cfg = SoftwareConfig {
            modules: (functions / 25).max(4),
            functions,
            ..SoftwareConfig::default()
        };
        let mut sw = build(&cfg);
        let queries = sw.queries();
        let n_inds = sw.kb.ind_count();
        let nfs: Vec<_> = queries
            .iter()
            .map(|(_, q)| sw.kb.normalize(q).expect("coherent query"))
            .collect();
        // Correctness first: both paths must place every query identically.
        for nf in &nfs {
            let k = sw.kb.taxonomy().classify(nf);
            let u = sw.kb.taxonomy().classify_unmemoized(nf);
            assert_eq!(k.parents, u.parents, "kernel path changed parents");
            assert_eq!(k.children, u.children, "kernel path changed children");
            assert_eq!(
                k.equivalent, u.equivalent,
                "kernel path changed equivalence"
            );
        }
        let reps = 8usize;
        let before = sw.kb.kernel_stats();
        let (_, t_kernel) = time(|| {
            for _ in 0..reps {
                for nf in &nfs {
                    std::hint::black_box(sw.kb.taxonomy().classify(nf));
                }
            }
        });
        let after = sw.kb.kernel_stats();
        let (_, t_walk) = time(|| {
            for _ in 0..reps {
                for nf in &nfs {
                    std::hint::black_box(sw.kb.taxonomy().classify_unmemoized(nf));
                }
            }
        });
        let n_queries = (reps * nfs.len()) as u64;
        let hits = after.memo_hits - before.memo_hits;
        let misses = after.memo_misses - before.memo_misses;
        let _ = writeln!(
            out,
            "{:>7} {:>9} {:>13.1} {:>13.1} {:>8.1}x {:>7.1}%",
            n_inds,
            n_queries,
            ns_per(t_kernel, n_queries) / 1000.0,
            ns_per(t_walk, n_queries) / 1000.0,
            t_walk.as_secs_f64() / t_kernel.as_secs_f64().max(1e-9),
            100.0 * hits as f64 / (hits + misses).max(1) as f64,
        );
    }
    let _ = writeln!(
        out,
        "expected shape: ≥1x at every size; hit% → 100 as reps repeat the"
    );
    let _ = writeln!(out, "same query set against an unchanged schema.");

    // Hot vs cold retrieval through the kernel path: the first pass over a
    // query set seeds the memo, later passes ride it.
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "-- cold vs hot retrieval (kernel path, 8000 functions) --"
    );
    let cfg = SoftwareConfig {
        modules: 320,
        functions: 8_000,
        ..SoftwareConfig::default()
    };
    let mut sw = build(&cfg);
    let queries = sw.queries();
    let nfs: Vec<_> = queries
        .iter()
        .map(|(_, q)| sw.kb.normalize(q).expect("coherent query"))
        .collect();
    let (cold_answers, t_cold) = time(|| {
        nfs.iter()
            .map(|nf| {
                classic_query::retrieve_nf(&sw.kb, nf)
                    .expect("retrieval")
                    .known
                    .len()
            })
            .sum::<usize>()
    });
    let (hot_answers, t_hot) = time(|| {
        nfs.iter()
            .map(|nf| {
                classic_query::retrieve_nf(&sw.kb, nf)
                    .expect("retrieval")
                    .known
                    .len()
            })
            .sum::<usize>()
    });
    assert_eq!(cold_answers, hot_answers, "retrieval must be deterministic");
    let nq = nfs.len() as u64;
    let _ = writeln!(
        out,
        "cold: {:>8.1} µs/q   hot: {:>8.1} µs/q   hot speedup: {:.2}x",
        ns_per(t_cold, nq) / 1000.0,
        ns_per(t_hot, nq) / 1000.0,
        t_cold.as_secs_f64() / t_hot.as_secs_f64().max(1e-9),
    );
    let s = sw.kb.kernel_stats();
    let _ = writeln!(out);
    let _ = writeln!(out, "-- kernel counters (end of the 8000-function run) --");
    let _ = writeln!(
        out,
        "interned forms: {}   intern hits: {}   memo hits: {}   memo misses: {}   closure rebuilds: {}",
        s.interned, s.intern_hits, s.memo_hits, s.memo_misses, s.closure_rebuilds
    );
    out
}
