//! E7 — open-world vs closed-world answers.
//!
//! Paper §3.2: "we do not make the 'closed-world' assumption that a
//! relationship does not hold unless we know of it", and §3.5.3:
//! "different kinds of answers to queries can be considered: sets of
//! individuals that are known to satisfy the query, sets of individuals
//! that might satisfy the query…".
//!
//! This experiment exports the §4 crime database to its relational view
//! (`classic-rel`, exactly the paper's §3.5.2 construction) and compares
//! three answer sets for each question:
//!
//! * **CW** — the conjunctive query under the closed world (relational
//!   baseline);
//! * **known** — CLASSIC's provable answers;
//! * **possible** — CLASSIC's open-world upper bound.
//!
//! The headline divergence: every CRIME is *known* to have at least one
//! perpetrator (it is part of CRIME's definition) even when no
//! perpetrator tuple exists — the closed-world view loses those answers.

use crate::workload::crime::{build, CrimeConfig};
use crate::workload::software::{build as build_sw, SoftwareConfig};
use classic_core::desc::Concept;
use classic_rel::{export_kb, Atom, ConjunctiveQuery, DatalogRule, Program, Term};
use std::fmt::Write as _;

pub fn run() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== E7: open-world vs closed-world answer sets ============"
    );
    let _ = writeln!(
        out,
        "paper claim (§1/§3.2): partial knowledge needs answers beyond the"
    );
    let _ = writeln!(out, "closed-world extension");
    let _ = writeln!(
        out,
        "{:>7} {:<34} {:>7} {:>7} {:>9} {:>9}",
        "crimes", "query", "CW", "known", "possible", "lost-by-CW"
    );
    for crimes in [200usize, 1_000, 4_000] {
        let cfg = CrimeConfig {
            crimes,
            domestic_fraction: 0.4,
            ..CrimeConfig::default()
        };
        let mut ckb = build(&cfg);
        let db = export_kb(&ckb.kb);
        let perp = ckb.kb.schema().symbols.find_role("perpetrator").expect("r");
        let crime = Concept::Name(ckb.kb.schema().symbols.find_concept("CRIME").expect("c"));

        // Q1: crimes with at least one perpetrator.
        let q1_classic = Concept::and([crime.clone(), Concept::AtLeast(1, perp)]);
        let q1_cw = ConjunctiveQuery::new(
            &["x"],
            vec![
                Atom::new("concept:CRIME", vec![Term::var("x")]),
                Atom::new("role:perpetrator", vec![Term::var("x"), Term::var("y")]),
            ],
        );
        report_row(
            &mut out,
            crimes,
            "crimes with ≥1 perpetrator",
            &mut ckb.kb,
            &q1_classic,
            &q1_cw,
            &db,
        );

        // Q2: domestic crimes (single perpetrator, site known).
        let dc = Concept::Name(
            ckb.kb
                .schema()
                .symbols
                .find_concept("DOMESTIC-CRIME")
                .expect("c"),
        );
        let q2_cw = ConjunctiveQuery::new(
            &["x"],
            vec![Atom::new("concept:DOMESTIC-CRIME", vec![Term::var("x")])],
        );
        report_row(
            &mut out,
            crimes,
            "domestic crimes",
            &mut ckb.kb,
            &dc,
            &q2_cw,
            &db,
        );

        // Q3: crimes with at most one perpetrator — provable only via
        // bounds/closure; CW can merely count stored tuples, which under
        // the open world *overcounts* certainty.
        let q3_classic = Concept::and([crime, Concept::AtMost(1, perp)]);
        // Closed-world rendering: crimes whose stored perpetrator tuples
        // number ≤ 1 — i.e., every crime without two distinct fillers.
        let cw_at_most_1 = cw_at_most_one_perp(&db);
        let known = classic_query::Query::concept(q3_classic.clone())
            .run(&mut ckb.kb)
            .expect("query")
            .into_known()
            .expect("known mode")
            .known
            .len();
        let poss = classic_query::Query::concept(q3_classic.clone())
            .possible()
            .run(&mut ckb.kb)
            .expect("query")
            .into_possible()
            .expect("possible mode")
            .len();
        let _ = writeln!(
            out,
            "{:>7} {:<34} {:>7} {:>7} {:>9} {:>9}",
            crimes,
            "crimes with ≤1 perpetrator",
            cw_at_most_1,
            known,
            poss,
            format!("+{}", cw_at_most_1.saturating_sub(known)),
        );
    }
    // -- the same join, asked of both engines ------------------------------
    // The paper's planned "more powerful and integrated query language"
    // (§3.5.2) exists as certain-answer conjunctive queries over the KB;
    // the identical join over the relational export runs closed-world.
    // Membership atoms let the KB-side join see *derived* knowledge
    // (existence from CRIME's definition) that no stored tuple carries.
    {
        let mut ckb = build(&CrimeConfig {
            crimes: 1_000,
            domestic_fraction: 0.4,
            ..CrimeConfig::default()
        });
        let db = export_kb(&ckb.kb);
        let perp = ckb.kb.schema().symbols.find_role("perpetrator").expect("r");
        let crime = Concept::Name(ckb.kb.schema().symbols.find_concept("CRIME").expect("c"));
        // Certain answers: crimes provably having a perpetrator (join
        // phrased as a membership atom over a concept expression).
        let kbq = classic_query::KbQuery::new(
            &["x"],
            vec![classic_query::KbAtom::IsA(
                classic_query::KbTerm::var("x"),
                Concept::and([crime, Concept::AtLeast(1, perp)]),
            )],
        );
        let certain = classic_query::answer(&mut ckb.kb, &kbq)
            .expect("query")
            .len();
        let cw = ConjunctiveQuery::new(
            &["x"],
            vec![
                Atom::new("concept:CRIME", vec![Term::var("x")]),
                Atom::new("role:perpetrator", vec![Term::var("x"), Term::var("y")]),
            ],
        )
        .evaluate(&db)
        .len();
        let _ = writeln!(out);
        let _ = writeln!(out, "-- identical join, two engines (1000 crimes) --");
        let _ = writeln!(
            out,
            "KB conjunctive query (certain answers): {certain}; relational CQ (closed world): {cw}"
        );
    }

    // -- complementarity with deductive databases (§1/§6.2) -------------
    // The paper's foil: Datalog can recurse where CLASSIC cannot, and
    // CLASSIC proves existence where Datalog (closed world) cannot.
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "-- deductive-database complementarity (Datalog foil) --"
    );
    let sw = build_sw(&SoftwareConfig {
        modules: 30,
        functions: 300,
        ..SoftwareConfig::default()
    });
    let db = export_kb(&sw.kb);
    // Transitive closure over imports: expressible in Datalog, not in
    // CLASSIC's (deliberately) recursion-free concept language.
    let program = Program::new(vec![
        DatalogRule::new(
            Atom::new("reach", vec![Term::var("x"), Term::var("y")]),
            vec![Atom::new(
                "role:imports",
                vec![Term::var("x"), Term::var("y")],
            )],
        ),
        DatalogRule::new(
            Atom::new("reach", vec![Term::var("x"), Term::var("z")]),
            vec![
                Atom::new("reach", vec![Term::var("x"), Term::var("y")]),
                Atom::new("role:imports", vec![Term::var("y"), Term::var("z")]),
            ],
        ),
    ]);
    let derived = program.evaluate(&db);
    let direct = db.relation_or_empty("role:imports", 2).len();
    let reach = derived.relation("reach").map_or(0, |r| r.len());
    let _ = writeln!(
        out,
        "imports edges: {direct}; Datalog transitive closure: {reach}          (inexpressible as a CLASSIC concept — no recursion, by design §5)"
    );
    let _ = writeln!(
        out,
        "conversely: CLASSIC's AT-LEAST answers above (Q1) have no Datalog"
    );
    let _ = writeln!(
        out,
        "derivation — closed-world rules cannot prove unnamed existence."
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "expected shape: known ⊆ possible always; CW misses perpetrator-"
    );
    let _ = writeln!(
        out,
        "existence answers (Q1: CW < known) and overclaims certainty where"
    );
    let _ = writeln!(
        out,
        "roles are merely unrecorded (Q3: CW > known; the open cases are"
    );
    let _ = writeln!(out, "only *possibly* single-perpetrator).");
    out
}

fn report_row(
    out: &mut String,
    crimes: usize,
    label: &str,
    kb: &mut classic_kb::Kb,
    classic_q: &Concept,
    cw_q: &ConjunctiveQuery,
    db: &classic_rel::Database,
) {
    let cw = cw_q.evaluate(db).len();
    let known = classic_query::Query::concept(classic_q.clone())
        .run(kb)
        .expect("query")
        .into_known()
        .expect("known mode")
        .known
        .len();
    let poss = classic_query::Query::concept(classic_q.clone())
        .possible()
        .run(kb)
        .expect("query")
        .into_possible()
        .expect("possible mode")
        .len();
    assert!(known <= poss, "known answers must be a subset of possible");
    let _ = writeln!(
        out,
        "{:>7} {:<34} {:>7} {:>7} {:>9} {:>9}",
        crimes,
        label,
        cw,
        known,
        poss,
        format!("-{}", known.saturating_sub(cw)),
    );
}

/// Closed-world count of crimes with at most one stored perpetrator tuple.
fn cw_at_most_one_perp(db: &classic_rel::Database) -> usize {
    let crimes = db.relation_or_empty("concept:CRIME", 1);
    let perps = db.relation_or_empty("role:perpetrator", 2);
    crimes
        .iter()
        .filter(|c| {
            let subject = &c[0];
            perps.iter().filter(|t| &t[0] == subject).count() <= 1
        })
        .count()
}
