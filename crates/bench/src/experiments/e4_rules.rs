//! E4 — rule propagation to a fixed point.
//!
//! Paper §5: "Rules continue propagating until a fixed point is reached"
//! and "this process is guaranteed to end because it is bounded by the
//! number of classes and individuals in the database: every individual
//! can move into a class at most once (since there is no 'removal')."
//!
//! Workload: a rule *chain* of length K — concepts C₁ … C_K with
//! Cᵢ = (AND BASE (AT-LEAST 1 rᵢ)) and rules Cᵢ ⇒ (AT-LEAST 1 rᵢ₊₁) — so
//! a single assertion on an individual cascades through all K rules. With
//! N individuals the fixpoint must fire exactly K·N rules. The table
//! verifies the bound holds with equality and that wall time scales
//! linearly in K·N.

use crate::experiments::{ns_per, time};
use classic_core::desc::Concept;
use classic_kb::Kb;
use std::fmt::Write as _;

/// Build the chain schema and rules; returns the trigger role.
fn chain_kb(k: usize) -> (Kb, classic_core::RoleId) {
    let mut kb = Kb::new();
    for i in 0..=k {
        kb.define_role(&format!("r{i}")).expect("fresh");
    }
    kb.define_concept("BASE", Concept::primitive(Concept::thing(), "base"))
        .expect("fresh");
    let base = Concept::Name(kb.schema().symbols.find_concept("BASE").expect("c"));
    for i in 1..=k {
        let r = kb.schema().symbols.find_role(&format!("r{i}")).expect("r");
        kb.define_concept(
            &format!("C{i}"),
            Concept::and([base.clone(), Concept::AtLeast(1, r)]),
        )
        .expect("fresh");
    }
    for i in 1..=k {
        let next = kb
            .schema()
            .symbols
            .find_role(&format!("r{}", (i + 1).min(k)))
            .expect("r");
        let consequent = if i < k {
            Concept::AtLeast(1, next)
        } else {
            // Terminal rule: an inert descriptor, so the chain ends.
            Concept::AtMost(64, next)
        };
        kb.assert_rule(&format!("C{i}"), consequent)
            .expect("rule applies to empty DB");
    }
    let r1 = kb.schema().symbols.find_role("r1").expect("r");
    (kb, r1)
}

pub fn run() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== E4: rule chains propagate to a fixed point ============"
    );
    let _ = writeln!(
        out,
        "paper claim (§5): fixpoint guaranteed, bounded by #classes × #inds"
    );
    let _ = writeln!(
        out,
        "{:>5} {:>6} {:>10} {:>10} {:>10} {:>12} {:>12}",
        "K", "N", "fired", "bound K·N", "steps", "µs/assert", "ns/firing"
    );
    for (k, n) in [
        (1usize, 200usize),
        (4, 200),
        (16, 200),
        (64, 200),
        (16, 50),
        (16, 800),
    ] {
        let (mut kb, r1) = chain_kb(k);
        let base = kb.schema().symbols.find_concept("BASE").expect("c");
        for i in 0..n {
            kb.create_ind(&format!("x{i}")).expect("fresh");
            kb.assert_ind(&format!("x{i}"), &Concept::Name(base))
                .expect("coherent");
        }
        let before_fired = kb.stats.rules_fired.get();
        let before_steps = kb.stats.propagation_steps.get();
        // One assertion per individual triggers the whole chain.
        let (_, elapsed) = time(|| {
            for i in 0..n {
                kb.assert_ind(&format!("x{i}"), &Concept::AtLeast(1, r1))
                    .expect("coherent");
            }
        });
        let fired = kb.stats.rules_fired.get() - before_fired;
        let steps = kb.stats.propagation_steps.get() - before_steps;
        assert_eq!(
            fired,
            (k * n) as u64,
            "fixpoint bound must hold with equality on the chain workload"
        );
        // Every individual ends up recognized under the whole chain.
        let ck = kb
            .schema()
            .symbols
            .find_concept(&format!("C{k}"))
            .expect("c");
        assert_eq!(kb.instances_of(ck).expect("defined").len(), n);
        let _ = writeln!(
            out,
            "{:>5} {:>6} {:>10} {:>10} {:>10} {:>12.1} {:>12.1}",
            k,
            n,
            fired,
            k * n,
            steps,
            ns_per(elapsed, n as u64) / 1000.0,
            ns_per(elapsed, fired),
        );
    }
    let _ = writeln!(
        out,
        "expected shape: fired == K·N exactly (monotone, each rule once per"
    );
    let _ = writeln!(
        out,
        "individual); ns/firing roughly flat, so total time is linear in K·N."
    );
    out
}
