//! E12 — segmented snapshot store: open cost, compaction, crash matrix.
//!
//! The 1989 system persisted a knowledge base as one monolithic command
//! script, so *every* open replayed the whole ABox. The segmented store
//! (docs/FORMAT.md) splits the snapshot into fixed-budget segments behind
//! a generation-stamped manifest; a paged open loads the manifest and the
//! schema segment, replays only the log suffix past the manifest
//! generation, and hydrates individual segments on demand. This
//! experiment regenerates the format's three claims:
//!
//! * **open cost** — with a short log suffix, the paged open touches a
//!   *constant* number of segments while the monolithic ablation (full
//!   snapshot replay, what the old format did on every open) replays all
//!   N individuals. The segment counts are asserted inline — hydrated
//!   segments must not grow with N — so the sublinearity is structural,
//!   not a timing artifact.
//! * **equivalence** — eager open, paged open (after full hydration) and
//!   the monolithic replay all reach the same state (`same_state`
//!   oracle, asserted inline).
//! * **crash safety** — the compactor killed at every [`CrashPoint`]
//!   leaves a directory that reopens to exactly the no-crash state
//!   (asserted inline; the full matrix also runs as a test suite,
//!   `crates/store/tests/crash_matrix.rs`).

use crate::experiments::time;
use classic_core::desc::Concept;
use classic_kb::Kb;
use classic_store::{same_state, snapshot_to_string, CrashPoint, DurableKb};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Individuals per segment for the experiment stores (small enough that
/// even the smoke sizes span many segments).
const BUDGET: usize = 32;

/// Length of the log suffix left unfolded after the last compaction.
const SUFFIX: usize = 8;

fn smoke() -> bool {
    std::env::var_os("CLASSIC_BENCH_SMOKE").is_some()
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("classic-e12-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Build the university workload into any sink that accepts the five
/// mutating operations. `n` is the individual count.
fn build_schema(store: &mut DurableKb) {
    store.define_role("advisor").unwrap();
    store.define_role("enrolled-at").unwrap();
    store
        .define_concept("PERSON", Concept::primitive(Concept::thing(), "person"))
        .unwrap();
    let person = store
        .kb()
        .unwrap()
        .schema()
        .symbols
        .find_concept("PERSON")
        .unwrap();
    let enrolled = store
        .kb()
        .unwrap()
        .schema()
        .symbols
        .find_role("enrolled-at")
        .unwrap();
    store
        .define_concept(
            "STUDENT",
            Concept::and([Concept::Name(person), Concept::AtLeast(1, enrolled)]),
        )
        .unwrap();
    let advisor = store
        .kb()
        .unwrap()
        .schema()
        .symbols
        .find_role("advisor")
        .unwrap();
    store
        .assert_rule("STUDENT", Concept::AtLeast(1, advisor))
        .unwrap();
}

fn populate(store: &mut DurableKb, n: usize) {
    let person = store
        .kb()
        .unwrap()
        .schema()
        .symbols
        .find_concept("PERSON")
        .unwrap();
    let enrolled = store
        .kb()
        .unwrap()
        .schema()
        .symbols
        .find_role("enrolled-at")
        .unwrap();
    for i in 0..n {
        let name = format!("S{i:05}");
        store.create_ind(&name).unwrap();
        store.assert_ind(&name, &Concept::Name(person)).unwrap();
        if i % 3 == 0 {
            store
                .assert_ind(&name, &Concept::AtLeast(1, enrolled))
                .unwrap();
        }
    }
}

/// The short post-compaction log suffix: a handful of updates touching a
/// handful of *adjacent* individuals — the common shape of "reopen after
/// a quiet shutdown plus a few fresh edits". Locality matters: these all
/// land in one ind segment, so a paged reopen hydrates one segment no
/// matter how large the ABox is.
fn apply_suffix(store: &mut DurableKb, n: usize) {
    let enrolled = store
        .kb()
        .unwrap()
        .schema()
        .symbols
        .find_role("enrolled-at")
        .unwrap();
    for k in 0..SUFFIX.min(n) {
        let name = format!("S{k:05}");
        store
            .assert_ind(&name, &Concept::AtLeast(1, enrolled))
            .unwrap();
    }
}

/// Build a store of `n` individuals, compact, apply the suffix, close.
/// Returns the compaction report captured right after the fold.
fn build_store(path: &Path, n: usize) -> classic_store::CompactionReport {
    let mut store = DurableKb::open(path, |_| {}).unwrap();
    store.set_segment_budget(BUDGET);
    build_schema(&mut store);
    populate(&mut store, n);
    store.compact().unwrap();
    let report = store.last_compaction().expect("compact() just ran");
    apply_suffix(&mut store, n);
    report
}

pub fn run() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== E12: segmented snapshot store ===");
    let _ = writeln!(
        out,
        "claim: with a short log suffix, paged open cost is sublinear in ABox"
    );
    let _ = writeln!(
        out,
        "size (constant segments hydrated — asserted); the monolithic ablation"
    );
    let _ = writeln!(
        out,
        "replays everything. Crash matrix convergence is asserted inline."
    );
    let sizes: &[usize] = if smoke() {
        &[128, 256]
    } else {
        &[256, 512, 1024, 2048]
    };

    let _ = writeln!(
        out,
        "{:>6} {:>8} {:>9} {:>9} {:>11} {:>10} {:>10} {:>10}",
        "inds",
        "segments",
        "hydrated",
        "foldedOps",
        "µs/monolith",
        "µs/eager",
        "µs/paged",
        "segBytes"
    );

    let mut hydrated_counts = Vec::new();
    for &n in sizes {
        let dir = tmpdir(&format!("open-{n}"));
        let path = dir.join("kb.log");
        let report = build_store(&path, n);

        // Monolithic ablation: what every open cost before segmentation —
        // replay the full snapshot script into a fresh KB. (Render is
        // untimed; only the replay is charged.)
        let eager = DurableKb::open(&path, |_| {}).unwrap();
        let text = snapshot_to_string(eager.kb().unwrap());
        drop(eager);
        let (mono_kb, t_mono) = time(|| {
            let mut kb = Kb::new();
            classic_store::replay(&mut kb, &text).unwrap();
            kb
        });

        // Eager segmented open: replays every segment plus the suffix.
        let (eager, t_eager) = time(|| DurableKb::open(&path, |_| {}).unwrap());

        // Paged open: manifest + schema segment + log suffix only. The
        // suffix hydrates just the segments it touches.
        let (paged, t_paged) = time(|| DurableKb::open_paged(&path, |_| {}).unwrap());
        let total = paged.segment_count();
        let hydrated = total - paged.pending_segments();
        assert!(
            !paged.is_fully_hydrated(),
            "N={n}: a short suffix must not force full hydration"
        );

        // All three roads reach the same state.
        let mut paged = paged;
        assert!(
            same_state(paged.kb_hydrated().unwrap(), eager.kb().unwrap()),
            "N={n}: paged open diverged from eager open"
        );
        assert!(
            same_state(&mono_kb, eager.kb().unwrap()),
            "N={n}: monolithic replay diverged from segmented open"
        );

        let _ = writeln!(
            out,
            "{:>6} {:>8} {:>9} {:>9} {:>11.1} {:>10.1} {:>10.1} {:>10}",
            n,
            total,
            hydrated,
            report.folded_ops,
            t_mono.as_nanos() as f64 / 1e3,
            t_eager.as_nanos() as f64 / 1e3,
            t_paged.as_nanos() as f64 / 1e3,
            report.bytes_written,
        );
        hydrated_counts.push((n, total, hydrated));
        drop(eager);
        drop(paged);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // The sublinearity claim, made structural: total segments grow with N
    // but the paged open hydrates a bounded set (the suffix touches at
    // most SUFFIX distinct individuals ⇒ at most SUFFIX ind segments).
    for &(n, total, hydrated) in &hydrated_counts {
        assert!(
            hydrated <= SUFFIX + 1,
            "N={n}: paged open hydrated {hydrated} of {total} segments — \
             more than the log suffix can touch"
        );
    }
    let (n0, t0, _) = hydrated_counts[0];
    let (n1, t1, _) = hydrated_counts[hydrated_counts.len() - 1];
    assert!(
        t1 > t0,
        "segment totals must grow with ABox size ({n0}→{t0}, {n1}→{t1})"
    );
    let _ = writeln!(
        out,
        "hydrated segments stay ≤ {} across all sizes while totals grow {}→{}",
        SUFFIX + 1,
        t0,
        t1
    );

    // Second compaction of an unchanged prefix: content-addressed reuse.
    {
        let n = sizes[sizes.len() - 1];
        let dir = tmpdir("reuse");
        let path = dir.join("kb.log");
        build_store(&path, n);
        let mut store = DurableKb::open(&path, |_| {}).unwrap();
        store.set_segment_budget(BUDGET);
        store.compact().unwrap();
        let r = store.last_compaction().unwrap();
        assert!(
            r.segments_reused > 0,
            "a compaction folding a {SUFFIX}-op suffix must reuse untouched segments"
        );
        let _ = writeln!(
            out,
            "refold of a {}-op suffix at N={}: {} segments reused, {} rewritten ({} bytes)",
            SUFFIX, n, r.segments_reused, r.segments_written, r.bytes_written
        );
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Crash matrix: the compactor killed at every crash point converges
    // to the no-crash oracle on reopen.
    let n_crash = if smoke() { 64 } else { 256 };
    let oracle_dir = tmpdir("crash-oracle");
    let oracle_path = oracle_dir.join("kb.log");
    build_store(&oracle_path, n_crash);
    let oracle = DurableKb::open(&oracle_path, |_| {}).unwrap();
    let oracle_text = snapshot_to_string(oracle.kb().unwrap());
    drop(oracle);
    let _ = std::fs::remove_dir_all(&oracle_dir);
    let mut oracle_kb = Kb::new();
    classic_store::replay(&mut oracle_kb, &oracle_text).unwrap();

    for point in CrashPoint::ALL {
        let dir = tmpdir(&format!("crash-{point:?}"));
        let path = dir.join("kb.log");
        let mut store = DurableKb::open(&path, |_| {}).unwrap();
        store.set_segment_budget(BUDGET);
        build_schema(&mut store);
        populate(&mut store, n_crash);
        store.compact().unwrap();
        apply_suffix(&mut store, n_crash);
        store.compact_crashing_at(point).unwrap();
        drop(store);
        let reopened = DurableKb::open(&path, |_| {}).unwrap();
        assert!(
            same_state(reopened.kb().unwrap(), &oracle_kb),
            "crash at {point:?}: reopen diverged from the no-crash oracle"
        );
        let _ = writeln!(out, "crash at {point:?}: reopen converged to oracle ✓");
        drop(reopened);
        let _ = std::fs::remove_dir_all(&dir);
    }

    let _ = writeln!(
        out,
        "PASS: equivalence, bounded hydration, segment reuse and all {} crash",
        CrashPoint::ALL.len()
    );
    let _ = writeln!(out, "points are asserted, not just reported.");
    out
}
