//! E8 — ablations of the design choices §5 calls out.
//!
//! The paper motivates three implementation decisions; each ablation
//! removes one and measures the cost on a fixed software-IS workload:
//!
//! * **A1 — taxonomy pruning off.** Retrieval tests every individual
//!   instead of classifying the query (§5's central technique).
//! * **A2 — extension index off.** The query is still classified, but
//!   candidates are drawn from the whole database rather than the
//!   most-specific subsumers' extensions (isolates the index's
//!   contribution from subsumee short-circuiting).
//! * **A3 — normal-form reuse off.** The query is re-normalized on every
//!   execution instead of once ("a great deal of preprocessing in order
//!   to facilitate query answering", §5).

use crate::experiments::{ns_per, time};
use crate::workload::software::{build, SoftwareConfig};
use classic_core::normal::NormalForm;
use classic_kb::Kb;
use std::fmt::Write as _;

pub fn run() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== E8: ablations (fixed workload: 8000 functions) ========="
    );
    let cfg = SoftwareConfig {
        modules: 320,
        functions: 8_000,
        ..SoftwareConfig::default()
    };
    let mut sw = build(&cfg);
    let queries = sw.queries();
    let nfs: Vec<NormalForm> = queries
        .iter()
        .map(|(_, q)| sw.kb.normalize(q).expect("coherent"))
        .collect();
    let reps = 8usize;
    let n_q = (reps * nfs.len()) as u64;
    // Warm caches so the first-measured configuration isn't penalized.
    for nf in &nfs {
        let _ = classic_query::retrieve_nf(&sw.kb, nf).expect("retrieval");
        let _ = classic_query::retrieve_naive_nf(&sw.kb, nf).expect("retrieval");
    }

    let _ = writeln!(
        out,
        "{:<44} {:>10} {:>12} {:>9}",
        "configuration", "tests/q", "µs/query", "slowdown"
    );

    // Full system.
    let mut tested = 0u64;
    let (_, t_full) = time(|| {
        for _ in 0..reps {
            for nf in &nfs {
                tested += classic_query::retrieve_nf(&sw.kb, nf)
                    .expect("retrieval")
                    .stats
                    .tested as u64;
            }
        }
    });
    let base = t_full.as_secs_f64();
    let _ = writeln!(
        out,
        "{:<44} {:>10} {:>12.1} {:>8.1}x",
        "full system (classified, indexed, cached NF)",
        tested / n_q,
        ns_per(t_full, n_q) / 1000.0,
        1.0
    );

    // A1: no classification — scan everything.
    let mut tested = 0u64;
    let (_, t_naive) = time(|| {
        for _ in 0..reps {
            for nf in &nfs {
                tested += classic_query::retrieve_naive_nf(&sw.kb, nf)
                    .expect("retrieval")
                    .stats
                    .tested as u64;
            }
        }
    });
    let _ = writeln!(
        out,
        "{:<44} {:>10} {:>12.1} {:>8.1}x",
        "A1: taxonomy pruning off (naive scan)",
        tested / n_q,
        ns_per(t_naive, n_q) / 1000.0,
        t_naive.as_secs_f64() / base
    );

    // A2: classified but candidates = whole database.
    let mut tested = 0u64;
    let (_, t_noindex) = time(|| {
        for _ in 0..reps {
            for nf in &nfs {
                tested += retrieve_without_extension_index(&sw.kb, nf) as u64;
            }
        }
    });
    let _ = writeln!(
        out,
        "{:<44} {:>10} {:>12.1} {:>8.1}x",
        "A2: extension index off (classify, scan all)",
        tested / n_q,
        ns_per(t_noindex, n_q) / 1000.0,
        t_noindex.as_secs_f64() / base
    );

    // A3: re-normalize the query expression every execution.
    let mut tested = 0u64;
    let (_, t_renorm) = time(|| {
        for _ in 0..reps {
            for (_, q) in &queries {
                let nf = sw.kb.normalize(q).expect("coherent");
                tested += classic_query::retrieve_nf(&sw.kb, &nf)
                    .expect("retrieval")
                    .stats
                    .tested as u64;
            }
        }
    });
    let _ = writeln!(
        out,
        "{:<44} {:>10} {:>12.1} {:>8.1}x",
        "A3: normal-form reuse off (re-normalize/query)",
        tested / n_q,
        ns_per(t_renorm, n_q) / 1000.0,
        t_renorm.as_secs_f64() / base
    );

    let _ = writeln!(
        out,
        "expected shape: A1 and A2 well above full (the §5 technique is the"
    );
    let _ = writeln!(
        out,
        "big win); A3 statistically indistinguishable from full at this"
    );
    let _ = writeln!(
        out,
        "query size (re-normalizing a ~10-node query costs microseconds"
    );
    let _ = writeln!(
        out,
        "against a ~0.5 ms retrieval) — the preprocessing §5 celebrates"
    );
    let _ = writeln!(out, "matters as queries and schemas grow, not here.");
    out
}

/// Classify the query (so subsumee extensions still short-circuit), but
/// test candidates drawn from the entire database.
fn retrieve_without_extension_index(kb: &Kb, nf: &NormalForm) -> usize {
    let cls = kb.taxonomy().classify(nf);
    let mut free: std::collections::BTreeSet<classic_kb::IndId> = Default::default();
    if let Some(eq) = cls.equivalent {
        free.extend(kb.instances_of_node(eq));
        // Even with an exact match, the ablation re-tests everyone else.
    }
    for &c in &cls.children {
        free.extend(kb.instances_of_node(c));
    }
    let mut tested = 0usize;
    for id in kb.ind_ids() {
        if free.contains(&id) {
            continue;
        }
        tested += 1;
        let _ = kb.known_instance(id, nf);
    }
    tested
}
