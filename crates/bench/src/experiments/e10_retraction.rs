//! E10 — incremental retraction vs rebuild-from-scratch.
//!
//! The paper's update model is additive ("there is no 'removal'", §5), and
//! the 1989 system handled mistakes by rebuilding the database from the
//! surviving told facts. The dependency-journaled `retract-ind` makes the
//! withdrawal incremental: only the individuals whose derivations are
//! supported (directly or transitively) by the retracted fact are
//! re-derived and re-run to fixpoint.
//!
//! Workload: the software information system at E2/E3 scale. For each
//! size we retract K told `calls` assertions one at a time and compare
//!
//! * the incremental path (`Kb::retract_ind`), and
//! * the rebuild a retraction costs without it: replaying the surviving
//!   told script into a fresh KB (snapshot rendering excluded from the
//!   timed region — only the replay is charged).
//!
//! The oracle from the test suite runs inline: after the K retractions,
//! the incrementally-maintained KB must be in the same state as the
//! rebuilt one.

use crate::experiments::{ns_per, time};
use crate::workload::software::{build, SoftwareConfig};
use classic_core::desc::Concept;
use classic_kb::Kb;
use std::fmt::Write as _;

/// How many told facts each size retracts.
const K: usize = 12;

pub fn run() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== E10: incremental retraction vs rebuild-from-scratch ==="
    );
    let _ = writeln!(
        out,
        "claim: dependency-journaled retraction re-derives only the affected"
    );
    let _ = writeln!(
        out,
        "individuals; a system without it replays every surviving told fact"
    );
    let _ = writeln!(
        out,
        "{:>7} {:>6} {:>10} {:>9} {:>12} {:>12} {:>9}",
        "inds", "K", "avgReset", "avgSteps", "µs/retract", "µs/rebuild", "speedup"
    );
    for functions in [400usize, 1_200, 2_400] {
        let cfg = SoftwareConfig {
            modules: (functions / 25).max(4),
            functions,
            ..SoftwareConfig::default()
        };
        let sw = build(&cfg);
        let mut kb = sw.kb;
        let n_inds = kb.ind_count();
        let targets = retraction_targets(&kb);
        assert_eq!(targets.len(), K, "workload yields enough told calls facts");

        // Incremental path, timed.
        let mut resets = 0u64;
        let mut steps = 0u64;
        let (_, t_retract) = time(|| {
            for (name, c) in &targets {
                let report = kb.retract_ind(name, c).expect("told fact retracts");
                resets += report.reset;
                steps += report.steps;
            }
        });

        // Rebuild baseline: what ONE retraction costs without the journal —
        // replay the surviving told script into a fresh KB. Rendering the
        // script is untimed; only the replay is charged.
        let script = classic_store::snapshot_to_string(&kb);
        let mut rebuilt = Kb::new();
        let (_, t_rebuild) = time(|| {
            classic_store::replay(&mut rebuilt, &script).expect("snapshot replays");
        });

        // The oracle, inline: incremental == rebuilt.
        assert!(
            classic_store::same_state(&kb, &rebuilt),
            "incremental retraction diverged from rebuild at {functions} functions"
        );

        let us_retract = ns_per(t_retract, K as u64) / 1000.0;
        let us_rebuild = ns_per(t_rebuild, 1) / 1000.0;
        let _ = writeln!(
            out,
            "{:>7} {:>6} {:>10.1} {:>9.1} {:>12.1} {:>12.1} {:>8.1}x",
            n_inds,
            K,
            resets as f64 / K as f64,
            steps as f64 / K as f64,
            us_retract,
            us_rebuild,
            us_rebuild / us_retract.max(f64::EPSILON),
        );
    }
    let _ = writeln!(
        out,
        "expected shape: µs/retract stays near-flat with database size while"
    );
    let _ = writeln!(
        out,
        "µs/rebuild grows with it, so the speedup widens on larger databases."
    );
    out
}

/// Pick K told `(FILLS calls …)` facts spread across the function
/// individuals. Returns `(individual name, told concept)` pairs exactly as
/// asserted, so `retract_ind` matches them syntactically.
fn retraction_targets(kb: &Kb) -> Vec<(String, Concept)> {
    let calls = kb.schema().symbols.find_role("calls").expect("role");
    let mut targets = Vec::with_capacity(K);
    // Stride so the picks are spread over the database, not clustered at
    // the low ids.
    let stride = (kb.ind_count() / (K * 2)).max(1);
    for id in kb.ind_ids().step_by(stride) {
        if targets.len() == K {
            break;
        }
        let ind = kb.ind(id);
        if let Some(c) = ind
            .told
            .iter()
            .find(|c| matches!(c, Concept::Fills(r, _) if *r == calls))
        {
            let name = kb.schema().symbols.individual_name(ind.name).to_owned();
            targets.push((name, c.clone()));
        }
    }
    targets
}
