//! E6 — the active database: deductions per told fact.
//!
//! Paper §3.3/§4: CLASSIC "can actively discover new information about
//! objects from several sources" — recognition, `ALL` propagation onto
//! fillers, `AT-MOST`-driven closure, `SAME-AS` filler derivation, and
//! forward-chaining rules. The crime database of §4 exercises all of
//! them: asserting `DOMESTIC-CRIME` of a crime with a known site and
//! perpetrator derives the perpetrator's domicile; recognition triggers
//! the `typical-suspect` heuristic rule.
//!
//! Metric: derived consequences per told assertion (the "activeness" of
//! the database), broken out by source, as the database grows.

use crate::experiments::{ns_per, time};
use crate::workload::crime::{build, CrimeConfig};
use std::fmt::Write as _;

pub fn run() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== E6: active deduction rate (crime DB of §4) ============"
    );
    let _ = writeln!(
        out,
        "paper claim (§3.3): the DB derives fillers, closures, memberships"
    );
    let _ = writeln!(
        out,
        "and rule consequences not explicitly asserted by users"
    );
    let _ = writeln!(
        out,
        "{:>7} {:>7} {:>8} {:>8} {:>8} {:>9} {:>10} {:>11}",
        "crimes", "told", "fills", "corefs", "rules", "reclass", "der/told", "µs/assert"
    );
    for crimes in [100usize, 400, 1_600, 6_400] {
        let cfg = CrimeConfig {
            crimes,
            ..CrimeConfig::default()
        };
        let (ckb, elapsed) = time(|| build(&cfg));
        let fills: u64 = ckb.reports.iter().map(|r| r.fills_propagated).sum();
        let corefs: u64 = ckb.reports.iter().map(|r| r.corefs_derived).sum();
        let rules: u64 = ckb.reports.iter().map(|r| r.rules_fired).sum();
        let reclass: u64 = ckb.reports.iter().map(|r| r.reclassified).sum();
        let derived = fills + corefs + rules + reclass;
        let _ = writeln!(
            out,
            "{:>7} {:>7} {:>8} {:>8} {:>8} {:>9} {:>10.2} {:>11.1}",
            crimes,
            ckb.told_assertions,
            fills,
            corefs,
            rules,
            reclass,
            derived as f64 / ckb.told_assertions as f64,
            ns_per(elapsed, ckb.told_assertions as u64) / 1000.0,
        );
    }
    let _ = writeln!(
        out,
        "expected shape: a stable derived-per-told ratio > 0 (every domestic"
    );
    let _ = writeln!(
        out,
        "crime derives a domicile, fires the suspect rule, and reclassifies);"
    );
    let _ = writeln!(out, "per-assertion cost stays flat as the DB grows.");
    out
}
