//! E11 — static analyzer cost and catch rate.
//!
//! The analyzer (`classic-analyze`) re-normalizes every told definition
//! (prefix replay for provenance) and compares every rule pair, so its
//! cost should grow near-quadratically in the rule count and roughly
//! linearly-to-quadratically in schema size (the redundant-conjunct pass
//! re-normalizes each `AND` once per conjunct). This experiment measures
//! that cost on the E2 layered schema generator, and validates the two
//! acceptance properties:
//!
//! * **catch rate** — schemas with deliberately seeded incoherent
//!   definitions must have *every* seeded concept flagged `A001`
//!   (asserted inline, not just reported);
//! * **no false errors** — on the clean generated schemas and the §4
//!   crime database, the analyzer must report zero error-severity
//!   diagnostics (warnings are legitimate: the generator does produce
//!   the occasional redundant conjunct).

use crate::experiments::{ns_per, time};
use crate::workload::crime::{self, CrimeConfig};
use crate::workload::schema_gen::{generate_schema, SchemaGenConfig};
use classic_analyze::{analyze, Code, Severity, Span};
use classic_core::desc::Concept;
use classic_kb::Kb;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::fmt::Write as _;

/// Fraction of definitions to seed with an incoherence.
const SEED_RATE: f64 = 0.1;

pub fn run() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== E11: static analyzer cost and catch rate ===");
    let _ = writeln!(
        out,
        "claim: the lint pass is cheap relative to schema construction, and"
    );
    let _ = writeln!(
        out,
        "catches 100% of seeded incoherent definitions with zero false errors"
    );
    let _ = writeln!(
        out,
        "{:>9} {:>7} {:>9} {:>11} {:>8} {:>8} {:>10}",
        "concepts", "rules", "seeded", "µs/analyze", "µs/def", "caught", "falseErr"
    );

    for concepts in [100usize, 200, 400] {
        let cfg = SchemaGenConfig {
            concepts,
            ..SchemaGenConfig::default()
        };

        // Clean run: zero error-severity findings allowed.
        let mut clean_kb = generate_schema(&cfg).build_kb();
        add_rules(&mut clean_kb, concepts / 20);
        let (clean_report, t_clean) = time(|| analyze(&mut clean_kb));
        let false_errors = clean_report.count(Severity::Error);
        assert_eq!(
            false_errors,
            0,
            "false error positives on a clean generated schema:\n{}",
            clean_report.render()
        );

        // Seeded run: corrupt ~10% of the defined concepts and require a
        // 100% A001 catch rate on exactly those names.
        let (mut seeded_kb, seeded_names) = build_seeded(&cfg);
        add_rules(&mut seeded_kb, concepts / 20);
        let (report, _) = time(|| analyze(&mut seeded_kb));
        let flagged: HashSet<&str> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == Code::IncoherentConcept)
            .filter_map(|d| match &d.span {
                Span::Concept(name) => Some(name.as_str()),
                _ => None,
            })
            .collect();
        let caught = seeded_names
            .iter()
            .filter(|n| flagged.contains(n.as_str()))
            .count();
        assert_eq!(
            caught,
            seeded_names.len(),
            "analyzer missed seeded incoherent concepts"
        );

        let us_analyze = ns_per(t_clean, 1) / 1000.0;
        let us_per_def = ns_per(t_clean, concepts as u64) / 1000.0;
        let _ = writeln!(
            out,
            "{:>9} {:>7} {:>9} {:>11.1} {:>8.2} {:>7}/{} {:>10}",
            concepts,
            clean_report.rules_checked,
            seeded_names.len(),
            us_analyze,
            us_per_def,
            caught,
            seeded_names.len(),
            false_errors,
        );
    }

    // The paper's §4 crime database (with its rules) must also lint clean.
    let crime = crime::build(&CrimeConfig::default());
    let mut kb = crime.kb;
    let (report, t) = time(|| analyze(&mut kb));
    assert_eq!(
        report.count(Severity::Error),
        0,
        "false error positives on the §4 crime schema:\n{}",
        report.render()
    );
    let _ = writeln!(
        out,
        "crime db (§4): {} concepts, {} rules, {} error(s), {} warning(s), {:.1} µs",
        report.concepts_checked,
        report.rules_checked,
        report.count(Severity::Error),
        report.count(Severity::Warning),
        ns_per(t, 1) / 1000.0
    );
    let _ = writeln!(
        out,
        "expected shape: µs/def grows slowly with schema size; caught is"
    );
    let _ = writeln!(
        out,
        "always N/N and falseErr always 0 (both are asserted, not just shown)."
    );
    out
}

/// Generate the layered schema but corrupt ~[`SEED_RATE`] of the *defined*
/// (non-primitive) concepts with a cardinality contradiction. Returns the
/// KB plus the names that must be flagged.
fn build_seeded(cfg: &SchemaGenConfig) -> (Kb, Vec<String>) {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xA001);
    let schema = generate_schema(cfg);
    let mut kb = Kb::new();
    let mut role_ids = Vec::new();
    for r in &schema.roles {
        role_ids.push(kb.define_role(r).expect("fresh role"));
    }
    let mut seeded = Vec::new();
    for (name, def) in &schema.definitions {
        let corrupt = matches!(def, Concept::And(_)) && rng.gen_bool(SEED_RATE);
        let def = if corrupt {
            let r = role_ids[rng.gen_range(0..role_ids.len())];
            seeded.push(name.clone());
            Concept::and([def.clone(), Concept::AtLeast(5, r), Concept::AtMost(2, r)])
        } else {
            def.clone()
        };
        kb.define_concept(name, def)
            .expect("seeded definition still normalizes (to ⊥)");
    }
    (kb, seeded)
}

/// Attach a few forward-chaining rules to exercise the rule passes: each
/// rule fires on a generated concept and concludes a cardinality bound.
fn add_rules(kb: &mut Kb, n: usize) {
    let roles: Vec<_> = (0..3)
        .filter_map(|i| kb.schema().symbols.find_role(&format!("r{i}")))
        .collect();
    if roles.is_empty() {
        return;
    }
    let names: Vec<String> = kb
        .schema()
        .defined_concepts()
        .map(|c| kb.schema().symbols.concept_name(c).to_owned())
        .collect();
    for (added, (i, name)) in names.iter().enumerate().step_by(7).take(n).enumerate() {
        let r = roles[i % roles.len()];
        kb.assert_rule(name, Concept::AtMost(40 + added as u32, r))
            .expect("rule on a defined concept");
    }
}
