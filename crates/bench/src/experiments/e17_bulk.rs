//! E17 — streaming bulk ingest vs one-at-a-time durable asserts.
//!
//! The bulk pipeline's claim (docs/INGEST.md): external record data
//! should enter the KB through one batched fixpoint and one segment
//! compaction, not through the interactive write path — which pays a
//! rule/realization fixpoint *and* a log append with fsync per
//! operation. Workload: a generated CSV (`id,kind,legs,score,team`)
//! whose value shapes exercise the schema inference (`ONE-OF` for the
//! low-cardinality columns, `ALL INTEGER`/`FLOAT` for the numeric
//! ones). Both paths load the same rows into a fresh durable store:
//!
//! * **bulk** — `classic_ingest::plan` (parse + normalize + infer) then
//!   [`DurableKb::bulk_load`]: deferred fixpoints, direct segment
//!   writes, manifest rename as the single commit point;
//! * **incremental** — the same inferred DDL and the same resolved row
//!   descriptions through [`DurableKb::create_ind`] /
//!   [`DurableKb::assert_ind`], one fsynced log append per operation.
//!
//! Three properties are asserted inline, not just printed:
//!
//! * **equality** — where both paths run, the two stores end in the
//!   same state (`same_state` oracle), so the speed is not bought with
//!   different semantics;
//! * **speedup** — at 10⁵ rows the bulk path loads ≥ 10× more
//!   individuals per second than the incremental path;
//! * **lintability** — the inferred TBox passes `classic-analyze` at
//!   `--deny errors` (asserted via [`classic_analyze::Report::passes`],
//!   the same predicate the CLI exits on).
//!
//! Peak RSS is sampled from `/proc/self/status` (`VmHWM`) after each
//! phase; the kernel's high-water mark is monotone across the process,
//! so the incremental phase runs first and each row reports the
//! *watermark growth* its phase caused — a near-zero bulk column means
//! the bulk phase fit inside pages the incremental phase already
//! touched, i.e. its footprint is no larger.
//!
//! Measurement isolation matters on a small machine: holding the
//! incremental store's multi-hundred-MiB KB alive while timing the
//! bulk leg was measured to slow it ~4× (allocator/page pressure, one
//! core). So the incremental store is *dropped* before the bulk leg
//! and reopened from its own operation log afterwards — untimed — for
//! the same-state oracle. Each leg is timed with the other's memory
//! released.

use crate::experiments::time;
use classic_analyze::{analyze, Severity};
use classic_ingest::{plan, run_durable, Format, IngestOptions};
use classic_store::{same_state, DurableKb};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::fmt::Write as _;
use std::path::PathBuf;

const KINDS: &[&str] = &["dog", "cat", "bird", "fish", "hamster"];
const TEAMS: &[&str] = &["red", "blue", "green"];

/// Rows at which the ≥10× speedup is asserted (the issue's floor).
const ASSERT_AT: usize = 100_000;

/// Cap on the incremental leg: beyond this the per-op path is only
/// extrapolating what the smaller sizes already show, at minutes of
/// fsync cost.
const INCREMENTAL_CAP: usize = 100_000;

fn smoke() -> bool {
    std::env::var_os("CLASSIC_BENCH_SMOKE").is_some()
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("classic-e17-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Process peak-RSS high-water mark in MiB (0.0 where unavailable).
fn peak_rss_mib() -> f64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|kib| kib.parse::<f64>().ok())
        })
        .map(|kib| kib / 1024.0)
        .unwrap_or(0.0)
}

/// Deterministic record data: one individual per row, four value
/// columns shaped so inference derives `ONE-OF` (kind, team) and
/// typed `ALL` restrictions (legs, score).
fn make_csv(rows: usize, rng: &mut ChaCha8Rng) -> String {
    let mut out = String::with_capacity(32 + rows * 32);
    out.push_str("id,kind,legs,score,team\n");
    for i in 0..rows {
        let kind = KINDS[rng.gen_range(0..KINDS.len())];
        let legs: u32 = rng.gen_range(0..9);
        let score = rng.gen_range(0..10_000) as f64 / 100.0;
        let team = TEAMS[rng.gen_range(0..TEAMS.len())];
        let _ = writeln!(out, "r{i},{kind},{legs},{score:.2},{team}");
    }
    out
}

pub fn run() -> String {
    let sizes: &[usize] = if smoke() {
        &[500, 2_000]
    } else {
        &[10_000, ASSERT_AT, 1_000_000]
    };

    let mut out = String::new();
    let _ = writeln!(out, "== E17: bulk ingest vs incremental asserts ===");
    let _ = writeln!(
        out,
        "claim: batched fixpoints + direct segment writes beat per-op"
    );
    let _ = writeln!(
        out,
        "fsynced asserts by ≥10x at 1e5 rows, with identical final state"
    );
    let _ = writeln!(
        out,
        "{:>9} {:>10} {:>10} {:>9} {:>9} {:>9} {:>8} {:>8}",
        "rows", "incr i/s", "bulk i/s", "speedup", "ms incr", "ms bulk", "MiB inc", "MiB blk"
    );

    let mut rng = ChaCha8Rng::seed_from_u64(0xC1A551C);
    for &rows in sizes {
        let csv = make_csv(rows, &mut rng);
        let opts = IngestOptions {
            format: Format::Csv,
            entity: "pet".into(),
            id_column: Some("id".into()),
            infer: true,
            source: "e17".into(),
        };

        // Incremental first, then *dropped*: its KB stays on disk (the
        // fsynced log) and is reopened after the bulk leg for the
        // oracle, so neither leg is timed under the other's footprint.
        let incremental = rows <= INCREMENTAL_CAP;
        let rss0 = peak_rss_mib();
        let incr = if incremental {
            let dir = tmpdir(&format!("incr-{rows}"));
            let mut store = DurableKb::open(dir.join("kb.log"), |_| {}).unwrap();
            let ingest_plan = plan(csv.as_bytes(), &opts).unwrap();
            let (_, t) = time(|| {
                for cmd in &ingest_plan.ddl {
                    store.eval_durable(cmd).unwrap();
                }
                let resolved =
                    classic_lang::resolve_bulk_rows(store.kb_mut_for_queries(), &ingest_plan.spec)
                        .unwrap();
                for row in &resolved {
                    store.create_ind(&row.name).unwrap();
                    store.assert_ind(&row.name, &row.desc).unwrap();
                }
            });
            drop(store);
            Some((dir, t))
        } else {
            None
        };
        let rss_incr = peak_rss_mib() - rss0;

        let rss1 = peak_rss_mib();
        let dir = tmpdir(&format!("bulk-{rows}"));
        let mut bulk_store = DurableKb::open(dir.join("kb.log"), |_| {}).unwrap();
        let (loaded, t_bulk) = time(|| {
            let ingest_plan = plan(csv.as_bytes(), &opts).unwrap();
            run_durable(&mut bulk_store, &ingest_plan).unwrap()
        });
        let rss_bulk = peak_rss_mib() - rss1;
        assert_eq!(
            loaded.report.accepted, rows,
            "generated rows must all be coherent"
        );

        // The inferred TBox passes the CLI's `--deny errors` predicate.
        let report = analyze(bulk_store.kb_mut_for_queries());
        assert!(
            report.passes(Severity::Error),
            "inferred TBox has error-level diagnostics at {rows} rows: {report:?}"
        );

        let bulk_rate = rows as f64 / t_bulk.as_secs_f64();
        if let Some((incr_dir, t_incr)) = incr {
            // Same-state oracle: reopen the incremental store from its
            // log (untimed) and compare — the batched path bought
            // speed, not different semantics.
            let mut incr_store = DurableKb::open(incr_dir.join("kb.log"), |_| {}).unwrap();
            incr_store.hydrate_all().unwrap();
            bulk_store.hydrate_all().unwrap();
            assert!(
                same_state(incr_store.kb().unwrap(), bulk_store.kb().unwrap()),
                "bulk and incremental stores diverged at {rows} rows"
            );
            drop(incr_store);
            let incr_rate = rows as f64 / t_incr.as_secs_f64();
            let speedup = bulk_rate / incr_rate;
            if rows >= ASSERT_AT {
                assert!(
                    speedup >= 10.0,
                    "bulk path only {speedup:.1}x faster at {rows} rows (floor: 10x)"
                );
            }
            let _ = writeln!(
                out,
                "{:>9} {:>10.0} {:>10.0} {:>8.1}x {:>9.1} {:>9.1} {:>8.1} {:>8.1}",
                rows,
                incr_rate,
                bulk_rate,
                speedup,
                t_incr.as_secs_f64() * 1e3,
                t_bulk.as_secs_f64() * 1e3,
                rss_incr,
                rss_bulk,
            );
        } else {
            let _ = writeln!(
                out,
                "{:>9} {:>10} {:>10.0} {:>9} {:>9} {:>9.1} {:>8} {:>8.1}",
                rows,
                "—",
                bulk_rate,
                "—",
                "—",
                t_bulk.as_secs_f64() * 1e3,
                "—",
                rss_bulk,
            );
        }
    }

    let _ = writeln!(
        out,
        "expected shape: bulk i/s stays roughly flat with size while the"
    );
    let _ = writeln!(
        out,
        "incremental path pays a fixpoint and an fsync per row (equality,"
    );
    let _ = writeln!(out, "10x floor, and TBox lint asserted inline).");
    out
}
