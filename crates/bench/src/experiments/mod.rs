//! The experiment harness: one module per experiment in DESIGN.md §5.
//!
//! The paper has no numbered tables or figures; each experiment here
//! regenerates one of its quantitative claims (see the per-module docs
//! and EXPERIMENTS.md). Every experiment prints a self-contained table
//! with the paper's claim quoted, the workload parameters, and the
//! measured rows.

pub mod e10_retraction;
pub mod e11_analyze;
pub mod e12_store;
pub mod e13_obs_overhead;
pub mod e14_server;
pub mod e15_shard;
pub mod e16_incremental;
pub mod e17_bulk;
pub mod e18_tracing;
pub mod e1_subsumption;
pub mod e2_classification;
pub mod e3_query;
pub mod e4_rules;
pub mod e5_normalize;
pub mod e6_active;
pub mod e7_openworld;
pub mod e8_ablations;
pub mod e9_kernel_cache;

use std::time::{Duration, Instant};

/// Time a closure, returning its result and the elapsed wall time.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed())
}

/// Nanoseconds per operation, guarded against division by zero.
pub fn ns_per(d: Duration, ops: u64) -> f64 {
    if ops == 0 {
        0.0
    } else {
        d.as_nanos() as f64 / ops as f64
    }
}

/// One experiment registration: (id, description, runner).
pub type Experiment = (&'static str, &'static str, fn() -> String);

/// The experiment registry.
pub fn registry() -> Vec<Experiment> {
    vec![
        (
            "e1",
            "subsumption time ∝ |C1|·|C2| (paper §5)",
            e1_subsumption::run,
        ),
        (
            "e2",
            "schema classification cost and taxonomy pruning (paper §5)",
            e2_classification::run,
        ),
        (
            "e3",
            "query answering via classification vs naive scan (paper §5)",
            e3_query::run,
        ),
        (
            "e4",
            "rule propagation to fixpoint, bounded by classes × individuals (paper §5)",
            e4_rules::run,
        ),
        (
            "e5",
            "normalization decides the §2.2 equivalences; cost vs size",
            e5_normalize::run,
        ),
        (
            "e6",
            "active-DB deduction rate on the §4 crime database",
            e6_active::run,
        ),
        (
            "e7",
            "open-world vs closed-world answers (paper §1, §3.5.2)",
            e7_openworld::run,
        ),
        (
            "e8",
            "ablations: pruning, extension index, normal-form reuse",
            e8_ablations::run,
        ),
        (
            "e9",
            "subsumption memo + bitset closure vs the uncached path",
            e9_kernel_cache::run,
        ),
        (
            "e10",
            "incremental retraction vs rebuild-from-scratch",
            e10_retraction::run,
        ),
        (
            "e11",
            "static analyzer cost vs TBox size; catch rate on seeded bugs",
            e11_analyze::run,
        ),
        (
            "e12",
            "segmented snapshot store: open cost, segment reuse, crash matrix",
            e12_store::run,
        ),
        (
            "e13",
            "observability overhead: Off vs Counters vs Full (Off ≤ 3%, asserted)",
            e13_obs_overhead::run,
        ),
        (
            "e14",
            "multi-tenant server: concurrent wire-protocol latency and throughput",
            e14_server::run,
        ),
        (
            "e15",
            "sharded propagation engine: throughput vs the sequential oracle",
            e15_shard::run,
        ),
        (
            "e16",
            "incremental re-lint: cone-bounded refresh vs full analysis, equality asserted",
            e16_incremental::run,
        ),
        (
            "e17",
            "bulk ingest vs incremental asserts: >=10x at 1e5 rows, same-state oracle",
            e17_bulk::run,
        ),
        (
            "e18",
            "end-to-end request tracing: <=1.05x overhead, attribution, Chrome export",
            e18_tracing::run,
        ),
    ]
}

/// Run one experiment by id (or `all`), returning the rendered report.
pub fn run(id: &str) -> Option<String> {
    if id == "all" {
        let mut out = String::new();
        for (_, _, f) in registry() {
            out.push_str(&f());
            out.push('\n');
        }
        return Some(out);
    }
    registry()
        .into_iter()
        .find(|(eid, _, _)| *eid == id)
        .map(|(_, _, f)| f())
}
