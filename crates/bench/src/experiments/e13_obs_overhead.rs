//! E13 — observability overhead: the instrumented hot paths at
//! [`ObsLevel::Off`] vs [`ObsLevel::Counters`] vs [`ObsLevel::Full`] on
//! the E9 classification/retrieval workload.
//!
//! The instrumentation contract (DESIGN.md §4.12) is that disabling
//! observability costs nothing measurable: every counter bump and span
//! open is gated on one relaxed atomic load of the global level. This
//! experiment measures the same retrieval loop at all three levels and
//! **asserts inline** that `Off` is within 3% of `Counters` — `Counters`
//! is the pre-observability baseline (the seed always counted), so the
//! assertion pins "near-zero cost when disabled" to a number CI can
//! fail on. `Full` is reported for context (spans + duration
//! histograms + flight recording); it is allowed to cost more.

use crate::experiments::{ns_per, time};
use crate::workload::software::{build, SoftwareConfig};
use classic_core::NormalForm;
use classic_kb::Kb;
use classic_obs::ObsLevel;
use std::fmt::Write as _;
use std::time::Duration;

fn smoke() -> bool {
    std::env::var_os("CLASSIC_BENCH_SMOKE").is_some()
}

/// One pass over the query set: the instrumented retrieval path
/// (subsumption kernel, taxonomy classification, candidate testing).
fn pass(kb: &Kb, nfs: &[NormalForm]) -> usize {
    nfs.iter()
        .map(|nf| {
            classic_query::retrieve_nf(kb, nf)
                .expect("retrieval")
                .known
                .len()
        })
        .sum()
}

/// Minimum wall time of `trials` timed passes at the given level.
fn measure(kb: &Kb, nfs: &[NormalForm], level: ObsLevel, reps: usize, trials: usize) -> Duration {
    classic_obs::set_level(level);
    let mut best = Duration::MAX;
    for _ in 0..trials {
        let (_, t) = time(|| {
            for _ in 0..reps {
                std::hint::black_box(pass(kb, nfs));
            }
        });
        best = best.min(t);
    }
    best
}

pub fn run() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== E13: observability overhead (Off / Counters / Full) =="
    );
    let _ = writeln!(
        out,
        "one relaxed atomic load gates every instrumentation point; Off must"
    );
    let _ = writeln!(
        out,
        "be within 3% of Counters (the pre-obs baseline) — asserted."
    );

    let functions = if smoke() { 600 } else { 8_000 };
    let reps = if smoke() { 2 } else { 6 };
    let trials = 5usize;
    let cfg = SoftwareConfig {
        modules: (functions / 25).max(4),
        functions,
        ..SoftwareConfig::default()
    };
    let mut sw = build(&cfg);
    let queries = sw.queries();
    let nfs: Vec<NormalForm> = queries
        .iter()
        .map(|(_, q)| sw.kb.normalize(q).expect("coherent query"))
        .collect();
    let n_queries = (reps * nfs.len()) as u64;
    let prior = classic_obs::level();

    // Warm the kernel memo and extension index so every level sees the
    // same steady state.
    std::hint::black_box(pass(&sw.kb, &nfs));

    // Answers must not depend on the level.
    classic_obs::set_level(ObsLevel::Off);
    let a_off = pass(&sw.kb, &nfs);
    classic_obs::set_level(ObsLevel::Full);
    let a_full = pass(&sw.kb, &nfs);
    assert_eq!(a_off, a_full, "ObsLevel must never change answers");

    // Interleave measurements and keep per-level minima; re-measure on a
    // miss (minima converge down, so retries only tighten the estimate).
    let mut t_off = Duration::MAX;
    let mut t_counters = Duration::MAX;
    let mut t_full = Duration::MAX;
    let mut attempts = 0usize;
    loop {
        attempts += 1;
        t_counters = t_counters.min(measure(&sw.kb, &nfs, ObsLevel::Counters, reps, trials));
        t_off = t_off.min(measure(&sw.kb, &nfs, ObsLevel::Off, reps, trials));
        t_full = t_full.min(measure(&sw.kb, &nfs, ObsLevel::Full, reps, trials));
        if t_off.as_secs_f64() <= 1.03 * t_counters.as_secs_f64() || attempts >= 5 {
            break;
        }
    }
    classic_obs::set_level(prior);

    let _ = writeln!(
        out,
        "workload: {} individuals, {} queries/level, min of {} trials ({} attempt(s))",
        sw.kb.ind_count(),
        n_queries,
        trials,
        attempts
    );
    let _ = writeln!(
        out,
        "{:>10} {:>12} {:>13}",
        "level", "µs/query", "vs counters"
    );
    for (name, t) in [("off", t_off), ("counters", t_counters), ("full", t_full)] {
        let _ = writeln!(
            out,
            "{:>10} {:>12.2} {:>12.3}x",
            name,
            ns_per(t, n_queries) / 1000.0,
            t.as_secs_f64() / t_counters.as_secs_f64().max(1e-12),
        );
    }
    let ratio = t_off.as_secs_f64() / t_counters.as_secs_f64().max(1e-12);
    assert!(
        ratio <= 1.03,
        "ObsLevel::Off must be within 3% of Counters, measured {ratio:.4}x"
    );
    let _ = writeln!(
        out,
        "asserted: off/counters = {ratio:.4} ≤ 1.03 (disabled observability is free)"
    );
    out
}
