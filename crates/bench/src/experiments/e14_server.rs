//! E14 — multi-tenant server under concurrent load: latency and
//! throughput of the wire protocol with many clients hammering several
//! independent tenants in one process.
//!
//! The paper frames the CLASSIC DBMS as a shared facility serving many
//! applications (§1, §5). This experiment stands the reproduction's
//! server up on a loopback socket and drives it with N concurrent
//! line-protocol clients spread over M tenants — each iteration two
//! durable writes (`create-ind`, `assert-ind`, fsynced to the tenant
//! log before the reply) and one snapshot read (`retrieve`). Reported:
//! p50/p99 round-trip latency split by writes vs reads, and total
//! ops/sec. Asserted inline: every reply is `ok:true`, every tenant
//! ends with exactly the individuals its clients created, and the
//! server's own `/metrics` exposition accounts for every form sent.
//!
//! Full run: 16 clients × 4 tenants; smoke (`CLASSIC_BENCH_SMOKE`):
//! 4 clients × 2 tenants with a smaller op count.

use std::io::{BufRead, BufReader, Read, Write as _};
use std::net::TcpStream;
use std::time::Instant;

use classic_server::{ServerConfig, ServerHandle};
use std::fmt::Write as _;

fn smoke() -> bool {
    std::env::var_os("CLASSIC_BENCH_SMOKE").is_some()
}

/// Minimal line-protocol client: one form out, one JSON line back.
struct Client {
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(handle: &ServerHandle) -> Client {
        let stream = TcpStream::connect(handle.local_addr()).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        Client {
            reader: BufReader::new(stream),
        }
    }

    /// Round-trip one form; panics unless the reply is `ok:true`.
    fn ok(&mut self, form: &str) -> String {
        let stream = self.reader.get_mut();
        stream.write_all(form.as_bytes()).expect("send");
        stream.write_all(b"\n").expect("send");
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("reply");
        assert!(
            line.starts_with("{\"ok\":true"),
            "form {form:?} failed: {line}"
        );
        line
    }
}

fn percentile(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let ix = ((sorted_ns.len() - 1) as f64 * p).round() as usize;
    sorted_ns[ix] as f64 / 1000.0 // µs
}

/// Scrape `GET /metrics` and read one counter's rolled-up value.
fn scrape_counter(handle: &ServerHandle, name: &str) -> u64 {
    let mut stream = TcpStream::connect(handle.local_addr()).expect("connect");
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: bench\r\n\r\n")
        .expect("request");
    let mut body = String::new();
    stream.read_to_string(&mut body).expect("response");
    body.lines()
        .find_map(|l| l.strip_prefix(name)?.trim().parse().ok())
        .unwrap_or_else(|| panic!("{name} missing from /metrics"))
}

pub fn run() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== E14: multi-tenant server, concurrent wire-protocol load =="
    );
    let _ = writeln!(
        out,
        "N clients over M tenants; writes fsync the tenant log before the"
    );
    let _ = writeln!(out, "reply, reads run on shared version-pinned snapshots.");

    let clients = if smoke() { 4 } else { 16 };
    let tenants = if smoke() { 2 } else { 4 };
    let iters_per_client = if smoke() { 25 } else { 150 };

    let dir = std::env::temp_dir().join(format!("classic-bench-e14-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let handle = classic_server::start(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        data_dir: dir.clone(),
        workers: clients + 2, // every client stays connected + HTTP scrapes
        ..ServerConfig::default()
    })
    .expect("server starts");

    // Schema per tenant, over the wire like everything else.
    for t in 0..tenants {
        let mut c = Client::connect(&handle);
        c.ok(&format!("(tenant load-{t})"));
        c.ok("(define-role child)");
        c.ok("(define-concept PERSON (PRIMITIVE THING person))");
        c.ok("(define-concept PARENT (AND PERSON (AT-LEAST 1 child)))");
    }
    let base_requests = scrape_counter(&handle, "classic_server_requests_total");

    let wall = Instant::now();
    let results: Vec<(Vec<u64>, Vec<u64>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c_ix| {
                let server = &handle;
                scope.spawn(move || {
                    let tenant = c_ix % tenants;
                    let mut client = Client::connect(server);
                    client.ok(&format!("(tenant load-{tenant})"));
                    let mut write_ns = Vec::with_capacity(iters_per_client * 2);
                    let mut read_ns = Vec::with_capacity(iters_per_client);
                    for i in 0..iters_per_client {
                        let ind = format!("c{c_ix}-i{i}");
                        for form in [
                            format!("(create-ind {ind})"),
                            format!("(assert-ind {ind} (AND PERSON (FILLS child {ind}-kid)))"),
                        ] {
                            let t = Instant::now();
                            client.ok(&form);
                            write_ns.push(t.elapsed().as_nanos() as u64);
                        }
                        let t = Instant::now();
                        let reply = client.ok("(retrieve PARENT)");
                        read_ns.push(t.elapsed().as_nanos() as u64);
                        assert!(
                            reply.contains(&format!("\"c{c_ix}-i{i}\"")),
                            "freshly asserted PARENT missing from snapshot read"
                        );
                    }
                    (write_ns, read_ns)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let wall = wall.elapsed();

    let mut write_ns: Vec<u64> = results
        .iter()
        .flat_map(|(w, _)| w.iter().copied())
        .collect();
    let mut read_ns: Vec<u64> = results
        .iter()
        .flat_map(|(_, r)| r.iter().copied())
        .collect();
    write_ns.sort_unstable();
    read_ns.sort_unstable();
    let total_ops = (write_ns.len() + read_ns.len()) as u64;

    // Every tenant holds exactly the individuals its clients created
    // (client + auto-created filler per iteration): tenant isolation
    // under concurrency, checked on the server's own stats endpoint.
    let per_tenant_clients = |t: usize| (0..clients).filter(|c| c % tenants == t).count();
    let all_stats = handle.shared().all_stats();
    for t in 0..tenants {
        let stats = all_stats
            .iter()
            .find(|s| s.name == format!("load-{t}"))
            .expect("tenant listed in stats");
        let want = per_tenant_clients(t) * iters_per_client * 2;
        assert_eq!(
            stats.individuals, want,
            "tenant {} individual count off under concurrent load",
            stats.name
        );
    }
    let served = scrape_counter(&handle, "classic_server_requests_total") - base_requests;
    assert!(
        served >= total_ops,
        "/metrics accounts for {served} forms, expected at least {total_ops}"
    );

    let _ = writeln!(
        out,
        "workload: {clients} clients x {iters_per_client} iterations over {tenants} tenants \
         ({total_ops} ops, 2:1 write:read)"
    );
    let _ = writeln!(
        out,
        "{:>18} {:>10} {:>12} {:>12}",
        "op", "count", "p50 µs", "p99 µs"
    );
    for (name, ns) in [("durable write", &write_ns), ("snapshot read", &read_ns)] {
        let _ = writeln!(
            out,
            "{:>18} {:>10} {:>12.1} {:>12.1}",
            name,
            ns.len(),
            percentile(ns, 0.50),
            percentile(ns, 0.99)
        );
    }
    let _ = writeln!(
        out,
        "throughput: {:.0} ops/sec over {:.2}s wall",
        total_ops as f64 / wall.as_secs_f64().max(1e-9),
        wall.as_secs_f64()
    );
    let _ = writeln!(
        out,
        "asserted: all replies ok, per-tenant counts exact, /metrics saw all {served} forms"
    );

    handle.shutdown().expect("graceful shutdown");
    let _ = std::fs::remove_dir_all(&dir);
    out
}
