//! E2 — schema classification cost and taxonomy pruning.
//!
//! Paper §5: "all concepts in the schema are reduced to a normal form,
//! and then are compared to each other to establish the subsumption
//! hierarchy". The naive reading is all-pairs comparison (O(N²)
//! subsumption tests to build a schema of N concepts); the classification
//! traversal this reproduction implements (and the CLASSIC literature
//! describes) prunes: a node's children are only visited when the node
//! subsumes the candidate.
//!
//! Workload: layered synthetic schemas of N ∈ {50 … 1600} defined
//! concepts. Reported: total subsumption tests for the pruned build, the
//! exact all-pairs cost a brute-force build would pay, the ratio, and
//! wall time per definition.

use crate::experiments::{ns_per, time};
use crate::workload::schema_gen::{generate_schema, SchemaGenConfig};
use classic_core::taxonomy::Taxonomy;
use classic_kb::Kb;
use std::fmt::Write as _;

pub fn run() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== E2: schema classification (pruned vs all-pairs) ======"
    );
    let _ = writeln!(
        out,
        "paper claim (§5): schema concepts are normalized then compared to"
    );
    let _ = writeln!(
        out,
        "establish the subsumption hierarchy; pruning makes this affordable"
    );
    let _ = writeln!(
        out,
        "{:>6} {:>12} {:>12} {:>8} {:>12} {:>10}",
        "N", "prunedTests", "bruteTests", "ratio", "µs/define", "taxoNodes"
    );
    for n in [50usize, 100, 200, 400, 800, 1600] {
        let cfg = SchemaGenConfig {
            concepts: n,
            layer_width: (n / 8).max(8),
            ..SchemaGenConfig::default()
        };
        let schema = generate_schema(&cfg);
        // Pruned build (the production path), timed.
        let (kb, elapsed) = time(|| schema.build_kb());
        let pruned_tests = kb.taxonomy().tests_total();
        // Brute cost: replay the same definitions, classifying each
        // against the growing taxonomy by comparing against every node in
        // both directions (what a system without traversal pruning pays).
        let brute_tests = brute_build_cost(&schema);
        let _ = writeln!(
            out,
            "{:>6} {:>12} {:>12} {:>8.2} {:>12.1} {:>10}",
            n,
            pruned_tests,
            brute_tests,
            brute_tests as f64 / pruned_tests.max(1) as f64,
            ns_per(elapsed, n as u64) / 1000.0,
            kb.taxonomy().len(),
        );
    }
    let _ = writeln!(
        out,
        "expected shape: pruned/brute ratio grows with N (pruning wins more"
    );
    let _ = writeln!(out, "on bigger schemas); µs/define grows slowly with N.");
    out
}

/// Exact all-pairs classification cost for the same definition sequence.
fn brute_build_cost(schema: &crate::workload::schema_gen::GeneratedSchema) -> u64 {
    let mut kb = Kb::new();
    for r in &schema.roles {
        kb.define_role(r).expect("fresh role");
    }
    let mut taxo = Taxonomy::new();
    let mut total = 0u64;
    for (name, def) in &schema.definitions {
        let cname = kb.schema_mut().symbols.concept(name);
        // Define on the KB's schema (for name resolution of later defs)…
        kb.define_concept(name, def.clone())
            .expect("generated definition is well-formed");
        let nf = kb.schema().concept_nf(cname).expect("just defined").clone();
        // …but classify into our shadow taxonomy with the brute method.
        let report = taxo.classify_brute(&nf);
        total += report.tests as u64;
        taxo.insert(cname, nf);
    }
    total
}
