//! E5 — normalization and the §2.2 equivalences.
//!
//! Paper §2.2 exhibits concept pairs that "denote the same class":
//!
//! 1. `(AND (ALL r CAR) (ALL r EXPENSIVE-THING))`
//!    ≡ `(ALL r (AND CAR EXPENSIVE-THING))`
//! 2. `(ALL r (AND (ONE-OF Ford-1 Volvo-2 Toyota-3)
//!                 (ONE-OF Volvo-2 Toyota-3 VW-4)))`
//!    ≡ `(AND (ALL r (ONE-OF Volvo-2 Toyota-3)) (AT-MOST 2 r))`
//!
//! "The recognition of all the necessary equivalences is the kind of
//! inference that is at the core of the limited deduction and query
//! processing performed by the CLASSIC system."
//!
//! This experiment (a) checks both worked examples normalize to
//! *identical* normal forms, (b) generates random equivalent pairs by
//! running the equivalences backwards and confirms a 100% identification
//! rate, and (c) measures normalization cost vs expression size.

use crate::experiments::{ns_per, time};
use crate::workload::concepts::{ConceptGen, ConceptGenConfig};
use classic_core::normal::normalize;
use classic_lang::parse_concept;
use std::fmt::Write as _;

pub fn run() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== E5: normalization identifies the §2.2 equivalences ===="
    );

    // (a) The paper's worked examples, verbatim through the parser.
    let mut g = ConceptGen::new(&ConceptGenConfig::default());
    g.schema.define_role("thing-driven").expect("fresh");
    g.schema
        .define_concept(
            "CAR",
            classic_core::Concept::primitive(classic_core::Concept::thing(), "car"),
        )
        .expect("fresh");
    g.schema
        .define_concept(
            "EXPENSIVE-THING",
            classic_core::Concept::primitive(classic_core::Concept::thing(), "expensive"),
        )
        .expect("fresh");
    let worked = [
        (
            "(AND (ALL thing-driven CAR) (ALL thing-driven EXPENSIVE-THING))",
            "(ALL thing-driven (AND CAR EXPENSIVE-THING))",
        ),
        (
            "(ALL thing-driven (AND (ONE-OF Ford-1 Volvo-2 Toyota-3) \
                                    (ONE-OF Volvo-2 Toyota-3 VW-4)))",
            "(AND (ALL thing-driven (ONE-OF Volvo-2 Toyota-3)) (AT-MOST 2 thing-driven))",
        ),
    ];
    for (i, (a, b)) in worked.iter().enumerate() {
        let ca = parse_concept(a, &mut g.schema).expect("parses");
        let cb = parse_concept(b, &mut g.schema).expect("parses");
        let na = normalize(&ca, &mut g.schema).expect("coherent");
        let nb = normalize(&cb, &mut g.schema).expect("coherent");
        let _ = writeln!(
            out,
            "paper example {}: identical normal forms = {}",
            i + 1,
            na == nb
        );
        assert_eq!(na, nb, "paper §2.2 example {} must normalize equal", i + 1);
    }

    // (b)+(c) Random equivalent pairs, identification rate and cost.
    let _ = writeln!(
        out,
        "{:>6} {:>8} {:>10} {:>12} {:>14}",
        "size", "pairs", "identified", "µs/normalize", "ns/size-unit"
    );
    for target in [8usize, 16, 32, 64, 128, 256] {
        let pairs = 48usize;
        let mut generated = Vec::with_capacity(pairs);
        for _ in 0..pairs {
            generated.push(g.equivalent_pair(target));
        }
        let mut identified = 0usize;
        let mut size_sum = 0usize;
        let (_, elapsed) = time(|| {
            for (a, b) in &generated {
                size_sum += a.size() + b.size();
                let na = normalize(a, &mut g.schema).expect("coherent");
                let nb = normalize(b, &mut g.schema).expect("coherent");
                if na == nb {
                    identified += 1;
                }
            }
        });
        assert_eq!(
            identified, pairs,
            "every equivalent pair must be identified"
        );
        let ops = (pairs * 2) as u64;
        let _ = writeln!(
            out,
            "{:>6} {:>8} {:>9}% {:>12.1} {:>14.1}",
            target,
            pairs,
            100 * identified / pairs,
            ns_per(elapsed, ops) / 1000.0,
            ns_per(elapsed, ops) / (size_sum as f64 / ops as f64),
        );
    }
    let _ = writeln!(
        out,
        "expected shape: 100% identification (canonical normal forms);"
    );
    let _ = writeln!(
        out,
        "normalization cost low-order polynomial in expression size."
    );
    out
}
