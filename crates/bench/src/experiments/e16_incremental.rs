//! E16 — incremental re-lint cost vs full analysis, across KB sizes.
//!
//! The incremental analyzer's claim (DESIGN.md §4.15): after a
//! mutation, [`AnalysisState::refresh`] re-checks only the mutation's
//! dependency cone, so its cost tracks the structure the write touched
//! — not the KB size — while its report stays *identical* to a from-
//! scratch [`analyze`]. Workload: M independent `FILLS` chains of
//! length L; one assertion lands on one chain's *tail*, so the dirty
//! cone is the tail plus its transitive filler hosts — that one chain
//! (≈L individuals) — no matter how large M grows.
//!
//! Three properties are asserted inline, not just printed:
//!
//! * **equality** — `state.report(&kb)` after the incremental refresh
//!   is `==` (codes, spans, provenance, counts) to a full `analyze`
//!   of a cloned KB;
//! * **constant cone** — the re-linted count is bounded by the chain
//!   length, independent of the number of chains;
//! * **speedup** — at the largest size the incremental refresh is
//!   strictly faster than the full pass.

use crate::experiments::{ns_per, time};
use classic_analyze::{analyze, AnalysisState};
use classic_core::desc::{Concept, IndRef};
use classic_kb::Kb;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Individuals per chain (the expected cone size).
const CHAIN_LEN: usize = 8;

pub fn run() -> String {
    let smoke = std::env::var("CLASSIC_BENCH_SMOKE").is_ok();
    let sizes: &[usize] = if smoke {
        &[50, 100]
    } else {
        &[250, 1000, 4000]
    };

    let mut out = String::new();
    let _ = writeln!(out, "== E16: incremental re-lint vs full analysis ===");
    let _ = writeln!(
        out,
        "claim: refresh cost follows the dirty cone (one {CHAIN_LEN}-long chain),"
    );
    let _ = writeln!(
        out,
        "not the KB size, with the report equal to a full analyze (asserted)"
    );
    let _ = writeln!(
        out,
        "{:>7} {:>7} {:>6} {:>9} {:>10} {:>10} {:>9}",
        "chains", "inds", "cone", "relinted", "µs incr", "µs full", "speedup"
    );

    for (ix, &chains) in sizes.iter().enumerate() {
        let mut kb = build(chains);
        let mut state = AnalysisState::new();
        // Prime: the first refresh is the full pass by construction.
        state.refresh(&mut kb);

        // One write on chain 0's tail, marked the way the server marks
        // assertion cones (post-op, seeded with the written individual).
        // The cone then climbs the chain through the filler hosts.
        let tail_name = format!("n0x{}", CHAIN_LEN - 1);
        let tail = kb
            .schema()
            .symbols
            .find_individual(&tail_name)
            .expect("chain tail exists");
        let tail_id = kb.ind_id(tail).expect("tail is materialized");
        let next = kb.schema().symbols.find_role("next").expect("role");
        kb.assert_ind(&tail_name, &Concept::AtLeast(1, next))
            .expect("tail bound is coherent");
        state.mark_dirty(&kb, &BTreeSet::from([tail_id]));

        let (refresh, t_inc) = time(|| state.refresh(&mut kb));
        let mut full_kb = kb.clone();
        let (full_report, t_full) = time(|| analyze(&mut full_kb));

        // Equality by construction, pinned here on every run.
        let inc_report = state.report(&kb);
        assert_eq!(
            inc_report, full_report,
            "incremental report diverged from full analysis at {chains} chains"
        );
        // The cone is one chain, however many chains exist. The bound
        // is loose (2×) to absorb consulted-by neighbors, but must not
        // scale with `chains`.
        assert!(
            refresh.relinted <= 2 * CHAIN_LEN,
            "re-linted {} individuals at {chains} chains; cone should stay ≈{CHAIN_LEN}",
            refresh.relinted
        );
        if ix == sizes.len() - 1 {
            assert!(
                t_inc < t_full,
                "incremental refresh ({t_inc:?}) not faster than full analysis ({t_full:?})"
            );
        }

        let us_inc = ns_per(t_inc, 1) / 1000.0;
        let us_full = ns_per(t_full, 1) / 1000.0;
        let _ = writeln!(
            out,
            "{:>7} {:>7} {:>6} {:>9} {:>10.1} {:>10.1} {:>8.1}×",
            chains,
            chains * CHAIN_LEN,
            refresh.cone_size,
            refresh.relinted,
            us_inc,
            us_full,
            us_full / us_inc.max(0.001),
        );
    }

    let _ = writeln!(
        out,
        "expected shape: µs full grows with the KB; µs incr and the cone stay"
    );
    let _ = writeln!(
        out,
        "flat, so the speedup column grows (equality asserted at every row)."
    );
    out
}

/// M chains: `n{i}x0 → n{i}x1 → … → n{i}x{L-1}` over role `next`, with
/// one defined concept (`LINKED ≐ (AT-LEAST 1 next)`) and one rule on
/// it, so the refresh exercises recognition, rule compatibility, and
/// the orphan check (chain tails have told facts but no concept).
fn build(chains: usize) -> Kb {
    let mut kb = Kb::new();
    let next = kb.define_role("next").expect("fresh role");
    kb.define_concept("LINKED", Concept::AtLeast(1, next))
        .expect("coherent definition");
    kb.assert_rule("LINKED", Concept::AtMost(64, next))
        .expect("rule on defined concept");
    for i in 0..chains {
        for j in 0..CHAIN_LEN {
            kb.create_ind(&format!("n{i}x{j}")).expect("fresh name");
        }
        for j in 0..CHAIN_LEN - 1 {
            let succ = kb
                .schema()
                .symbols
                .find_individual(&format!("n{i}x{}", j + 1))
                .expect("successor exists");
            kb.assert_ind(
                &format!("n{i}x{j}"),
                &Concept::Fills(next, vec![IndRef::Classic(succ)]),
            )
            .expect("chain link lands");
        }
        // A told fact on the tail keeps it lintable as an orphan.
        kb.assert_ind(
            &format!("n{i}x{}", CHAIN_LEN - 1),
            &Concept::AtMost(3, next),
        )
        .expect("tail bound lands");
    }
    kb
}
