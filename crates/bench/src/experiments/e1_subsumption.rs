//! E1 — subsumption complexity.
//!
//! Paper §5: "The subsumption relationship is established in time
//! proportional to the sizes of the two concepts" and "our current
//! algorithm for subsumption has low-order polynomial complexity."
//!
//! Workload: seeded random coherent concept pairs with structural sizes
//! n ∈ {8 … 512}. For each size we normalize once, then time
//! `subsumes(a, a ⊓ b)` (a full traversal that must succeed) and
//! `subsumes(a, b)` (typically failing early). The table reports ns/op
//! and the normalized quotient ns / (|a|·|b|): the paper's claim predicts
//! the quotient stays roughly flat (bounded) as sizes grow, rather than
//! growing with n.

use crate::experiments::{ns_per, time};
use crate::workload::concepts::{ConceptGen, ConceptGenConfig};
use classic_core::desc::Concept;
use classic_core::normal::normalize;
use classic_core::subsume::subsumes;
use std::fmt::Write as _;

pub fn run() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== E1: subsumption time vs concept size ================="
    );
    let _ = writeln!(
        out,
        "paper claim (§5): time proportional to the product of concept sizes"
    );
    let _ = writeln!(
        out,
        "{:>6} {:>8} {:>8} {:>12} {:>14} {:>12}",
        "size", "|a|·|b|", "pairs", "ns/subsume", "ns/(|a|·|b|)", "hit-rate"
    );
    let mut g = ConceptGen::new(&ConceptGenConfig::default());
    for target in [8usize, 16, 32, 64, 128, 256, 512] {
        // Pre-generate and pre-normalize the pairs: E1 times subsumption
        // alone (normalization is E5).
        let pairs = 64usize;
        let mut prepared = Vec::with_capacity(pairs);
        let mut size_product_sum = 0u64;
        for _ in 0..pairs {
            let a = g.concept(target);
            let b = g.concept(target);
            let both = Concept::And(vec![a.clone(), b.clone()]);
            let na = normalize(&a, &mut g.schema).expect("coherent");
            let nb = normalize(&b, &mut g.schema).expect("coherent");
            let nboth = normalize(&both, &mut g.schema).expect("coherent");
            size_product_sum += (na.size() * nboth.size()) as u64;
            prepared.push((na, nb, nboth));
        }
        let reps = 16u64;
        let mut hits = 0u64;
        let (_, elapsed) = time(|| {
            for _ in 0..reps {
                for (na, nb, nboth) in &prepared {
                    // Must-succeed full traversal…
                    if subsumes(na, nboth) {
                        hits += 1;
                    }
                    // …and a typically-failing comparison.
                    if subsumes(na, nb) {
                        hits += 1;
                    }
                }
            }
        });
        let ops = reps * pairs as u64 * 2;
        let avg_product = size_product_sum as f64 / pairs as f64;
        let nsop = ns_per(elapsed, ops);
        let _ = writeln!(
            out,
            "{:>6} {:>8.0} {:>8} {:>12.1} {:>14.4} {:>11.1}%",
            target,
            avg_product,
            pairs,
            nsop,
            nsop / avg_product,
            100.0 * hits as f64 / ops as f64,
        );
    }
    let _ = writeln!(
        out,
        "expected shape: ns/(|a|·|b|) bounded above and non-increasing (the"
    );
    let _ = writeln!(
        out,
        "paper claims an upper bound proportional to the size product; early"
    );
    let _ = writeln!(
        out,
        "exits and subset checks only make real runs cheaper than the bound);"
    );
    let _ = writeln!(out, "ns/subsume grows low-order polynomially with size.");
    out
}
