//! E15 — the sharded propagation engine vs the sequential oracle.
//!
//! The paper prices propagation to fixpoint at classes × individuals
//! (§5); PR 7 shards that fixpoint across worker threads with
//! deterministic cross-shard messaging. E15 measures assert-fixpoint
//! throughput on an E9-scale software KB augmented with wide ALL/rule
//! cascades (the worst case for a sequential worklist: one assertion
//! touches thousands of individuals), at 1, 2 and 4 propagation threads.
//!
//! Correctness is asserted inline, not sampled: after the measured phase,
//! every multi-threaded KB must be `same_state` with the single-threaded
//! oracle, and `check_invariants` must hold. The ≥2.5× speedup claim at
//! 4 shards is asserted only when the host actually has ≥4 cores and the
//! run is not a smoke run — on fewer cores the sharded path still runs
//! (and must still match the oracle) but cannot be expected to win.
//!
//! Full run: 8 000 functions + 8 hubs × 1 500 members; smoke
//! (`CLASSIC_BENCH_SMOKE`): 400 functions + 2 hubs × 200 members.

use crate::experiments::time;
use crate::workload::software::{build, SoftwareConfig};
use classic_core::desc::{Concept, IndRef};
use classic_kb::Kb;
use std::fmt::Write as _;
use std::time::Duration;

fn smoke() -> bool {
    std::env::var_os("CLASSIC_BENCH_SMOKE").is_some()
}

struct Scale {
    functions: usize,
    modules: usize,
    hubs: usize,
    members: usize,
}

fn scale() -> Scale {
    if smoke() {
        Scale {
            functions: 400,
            modules: 16,
            hubs: 2,
            members: 200,
        }
    } else {
        Scale {
            functions: 8_000,
            modules: 320,
            hubs: 8,
            members: 1_500,
        }
    }
}

/// Build the base KB, pin the engine, and run the measured cascade phase.
/// Returns the finished KB, the cascade wall time, and the op count.
fn run_engine(threads: usize, sc: &Scale) -> (Kb, Duration, u64) {
    let cfg = SoftwareConfig {
        modules: sc.modules,
        functions: sc.functions,
        ..SoftwareConfig::default()
    };
    let mut sw = build(&cfg);
    let kb = &mut sw.kb;
    kb.set_propagation_threads(threads);
    // Cascade schema: a wide role, a recognition target, and a rule so
    // every cascade does conjunction + recognition + forward chaining.
    kb.define_role("member").expect("fresh role");
    kb.define_concept("TRACKED", Concept::primitive(Concept::thing(), "tracked"))
        .expect("fresh");
    kb.define_concept("AUDITED", Concept::primitive(Concept::thing(), "audited"))
        .expect("fresh");
    let audited = kb.schema().symbols.find_concept("AUDITED").expect("c");
    kb.assert_rule("TRACKED", Concept::Name(audited))
        .expect("rule");
    let member = kb.schema().symbols.find_role("member").expect("role");
    let tracked = kb.schema().symbols.find_concept("TRACKED").expect("c");
    // Hubs point at existing function individuals so the cascade crosses
    // the whole arena, not a fresh corner of it.
    let mut ops = 0u64;
    let (_, elapsed) = time(|| {
        for h in 0..sc.hubs {
            let hub = format!("hub-{h}");
            kb.create_ind(&hub).expect("fresh ind");
            let fillers: Vec<IndRef> = (0..sc.members)
                .map(|i| {
                    let f = format!("fn-{}", (h * 613 + i * 7) % sc.functions);
                    IndRef::Classic(kb.schema_mut().symbols.individual(&f))
                })
                .collect();
            kb.assert_ind(&hub, &Concept::Fills(member, fillers))
                .expect("coherent");
            // The measured fixpoint: TRACKED fans out over every member,
            // recognition re-runs, and the rule fires AUDITED on each.
            kb.assert_ind(
                &hub,
                &Concept::All(member, Box::new(Concept::Name(tracked))),
            )
            .expect("coherent");
            ops += 2;
        }
    });
    kb.check_invariants().expect("invariants after cascade");
    let audited_count = kb.instances_of(audited).expect("defined").len();
    assert!(
        audited_count > 0,
        "cascade fired no rules — workload is broken"
    );
    (sw.kb, elapsed, ops)
}

pub fn run() -> String {
    let sc = scale();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut out = String::new();
    let _ = writeln!(out, "== E15: sharded propagation vs sequential oracle ==");
    let _ = writeln!(
        out,
        "assert-to-fixpoint over {} functions, {} hubs x {} members ({} cores)",
        sc.functions, sc.hubs, sc.members, cores
    );
    let _ = writeln!(
        out,
        "{:>8} {:>10} {:>12} {:>9} {:>11}",
        "threads", "cascade ms", "ms/assert", "speedup", "same_state"
    );
    let mut oracle: Option<Kb> = None;
    let mut t1 = Duration::ZERO;
    let mut speedup4 = 0.0f64;
    for threads in [1usize, 2, 4] {
        let (kb, elapsed, ops) = run_engine(threads, &sc);
        let same = match &oracle {
            None => {
                t1 = elapsed;
                true // threads=1 *is* the oracle
            }
            Some(seq) => {
                let eq = classic_store::same_state(seq, &kb);
                assert!(
                    eq,
                    "sharded engine ({threads} threads) diverged from the sequential oracle"
                );
                eq
            }
        };
        let speedup = t1.as_secs_f64() / elapsed.as_secs_f64().max(1e-9);
        if threads == 4 {
            speedup4 = speedup;
        }
        let _ = writeln!(
            out,
            "{:>8} {:>10.1} {:>12.2} {:>8.2}x {:>11}",
            threads,
            elapsed.as_secs_f64() * 1e3,
            elapsed.as_secs_f64() * 1e3 / ops.max(1) as f64,
            speedup,
            if same { "yes" } else { "NO" },
        );
        if oracle.is_none() {
            oracle = Some(kb);
        }
    }
    if cores >= 4 && !smoke() {
        assert!(
            speedup4 >= 2.5,
            "4-shard speedup {speedup4:.2}x below the 2.5x floor on a {cores}-core host"
        );
        let _ = writeln!(out, "asserted: 4-thread speedup {speedup4:.2}x >= 2.5x");
    } else {
        let _ = writeln!(
            out,
            "speedup floor not asserted ({} cores{}); equality with the oracle was",
            cores,
            if smoke() { ", smoke run" } else { "" }
        );
    }
    out
}
