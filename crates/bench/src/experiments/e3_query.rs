//! E3 — query answering via classification vs naive scan.
//!
//! Paper §5: "first, the query concept is itself classified with respect
//! to the concepts in the schema; then the instances of the parent
//! concepts are tested individually … The advantage of this technique is
//! that all instances of schema concepts that are subsumed by the query
//! are known to satisfy the query and are therefore not explicitly
//! tested. Assuming that the schema can fit in main memory, this approach
//! will reduce disk access traffic in the case of large databases."
//!
//! The 1989 prototype was main-memory; the disk-traffic claim is about a
//! hypothetical disk-resident DB. Per DESIGN.md's substitution rule we
//! measure the quantity the technique provably reduces — the number of
//! individuals *fetched and tested* per query (the page-fetch proxy) —
//! alongside wall time, on the synthetic software-information-system
//! workload (the paper's own application domain, §4).

use crate::experiments::{ns_per, time};
use crate::workload::software::{build, SoftwareConfig};
use std::fmt::Write as _;

pub fn run() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== E3: retrieval via classification vs naive scan ========"
    );
    let _ = writeln!(
        out,
        "paper claim (§5): instances of schema concepts subsumed by the query"
    );
    let _ = writeln!(
        out,
        "are not explicitly tested; candidate tests (disk proxy) shrink"
    );
    let _ = writeln!(
        out,
        "{:>7} {:>9} {:>10} {:>10} {:>8} {:>12} {:>12} {:>9}",
        "inds", "queries", "testsClf", "testsNaive", "reduct", "µs/q (clf)", "µs/q (nv)", "speedup"
    );
    for functions in [500usize, 2_000, 8_000, 20_000] {
        let cfg = SoftwareConfig {
            modules: (functions / 25).max(4),
            functions,
            ..SoftwareConfig::default()
        };
        let mut sw = build(&cfg);
        let queries = sw.queries();
        let n_inds = sw.kb.ind_count();
        // Pre-normalize the queries so both sides measure pure retrieval.
        let nfs: Vec<_> = queries
            .iter()
            .map(|(_, q)| sw.kb.normalize(q).expect("coherent query"))
            .collect();
        let reps = 8usize;
        let mut tested_clf = 0u64;
        let mut tested_naive = 0u64;
        let mut answers_clf = 0usize;
        let mut answers_naive = 0usize;
        let (_, t_clf) = time(|| {
            for _ in 0..reps {
                for nf in &nfs {
                    let a = classic_query::retrieve_nf(&sw.kb, nf).expect("retrieval");
                    tested_clf += a.stats.tested as u64;
                    answers_clf += a.known.len();
                }
            }
        });
        let (_, t_naive) = time(|| {
            for _ in 0..reps {
                for nf in &nfs {
                    let a = classic_query::retrieve_naive_nf(&sw.kb, nf).expect("retrieval");
                    tested_naive += a.stats.tested as u64;
                    answers_naive += a.known.len();
                }
            }
        });
        assert_eq!(
            answers_clf, answers_naive,
            "pruned and naive retrieval must agree"
        );
        let n_queries = (reps * nfs.len()) as u64;
        let _ = writeln!(
            out,
            "{:>7} {:>9} {:>10} {:>10} {:>7.1}x {:>12.1} {:>12.1} {:>8.1}x",
            n_inds,
            n_queries,
            tested_clf / n_queries,
            tested_naive / n_queries,
            tested_naive as f64 / tested_clf.max(1) as f64,
            ns_per(t_clf, n_queries) / 1000.0,
            ns_per(t_naive, n_queries) / 1000.0,
            t_naive.as_secs_f64() / t_clf.as_secs_f64().max(1e-9),
        );
    }
    let _ = writeln!(
        out,
        "expected shape: classification wins on both metrics at every size."
    );
    let _ = writeln!(
        out,
        "The candidate-test reduction factor is set by schema granularity"
    );
    let _ = writeln!(
        out,
        "(how tightly schema concepts bracket the query), so it is constant"
    );
    let _ = writeln!(
        out,
        "across DB sizes here and grows with schema detail — see the second"
    );
    let _ = writeln!(out, "table.");

    // Second sweep: schema granularity (the CALLER ladder) at fixed size —
    // the richer the schema, the tighter the bracketing, the fewer
    // candidates tested. This is the paper's "assuming the schema can fit
    // in main memory" trade: schema detail buys data-access reduction.
    let _ = writeln!(out);
    let _ = writeln!(out, "-- schema granularity sweep (fixed 8000 functions) --");
    let _ = writeln!(
        out,
        "{:>8} {:>10} {:>10} {:>8}",
        "ladder", "testsClf", "testsNaive", "reduct"
    );
    for ladder in [2usize, 4, 8, 16] {
        let cfg = SoftwareConfig {
            modules: 320,
            functions: 8_000,
            ladder,
            ..SoftwareConfig::default()
        };
        let mut sw = build(&cfg);
        let queries = sw.queries();
        let nfs: Vec<_> = queries
            .iter()
            .map(|(_, q)| sw.kb.normalize(q).expect("coherent query"))
            .collect();
        let mut tested_clf = 0u64;
        let mut tested_naive = 0u64;
        for nf in &nfs {
            tested_clf += classic_query::retrieve_nf(&sw.kb, nf)
                .expect("retrieval")
                .stats
                .tested as u64;
            tested_naive += classic_query::retrieve_naive_nf(&sw.kb, nf)
                .expect("retrieval")
                .stats
                .tested as u64;
        }
        let nq = nfs.len() as u64;
        let _ = writeln!(
            out,
            "{:>8} {:>10} {:>10} {:>7.1}x",
            ladder,
            tested_clf / nq,
            tested_naive / nq,
            tested_naive as f64 / tested_clf.max(1) as f64,
        );
    }
    let _ = writeln!(
        out,
        "expected shape: reduction factor grows with ladder depth."
    );
    out
}
