//! Criterion timing for experiments E3/E8: retrieval via classification
//! vs the naive scan (paper §5), on the software-information-system
//! workload. The companion tables are `experiments e3` and
//! `experiments e8`.

use classic_bench::workload::software::{build, SoftwareConfig};
use classic_core::normal::NormalForm;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_retrieval(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_retrieval");
    for functions in [500usize, 4_000, 16_000] {
        let cfg = SoftwareConfig {
            modules: (functions / 25).max(4),
            functions,
            ..SoftwareConfig::default()
        };
        let mut sw = build(&cfg);
        let queries = sw.queries();
        let nfs: Vec<NormalForm> = queries
            .iter()
            .map(|(_, q)| sw.kb.normalize(q).expect("coherent"))
            .collect();
        let kb = sw.kb;
        group.throughput(Throughput::Elements(nfs.len() as u64));
        group.bench_with_input(BenchmarkId::new("classified", functions), &nfs, |b, nfs| {
            b.iter(|| {
                let mut n = 0usize;
                for nf in nfs {
                    n += classic_query::retrieve_nf(black_box(&kb), nf)
                        .expect("retrieval")
                        .known
                        .len();
                }
                n
            })
        });
        group.bench_with_input(BenchmarkId::new("naive", functions), &nfs, |b, nfs| {
            b.iter(|| {
                let mut n = 0usize;
                for nf in nfs {
                    n += classic_query::retrieve_naive_nf(black_box(&kb), nf)
                        .expect("retrieval")
                        .known
                        .len();
                }
                n
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_retrieval);
criterion_main!(benches);
