//! Criterion timing for experiment E1: subsumption vs concept size
//! (paper §5: "time proportional to the sizes of the two concepts").
//! The companion table is `experiments e1`.

use classic_bench::workload::concepts::{ConceptGen, ConceptGenConfig};
use classic_core::desc::Concept;
use classic_core::normal::{normalize, NormalForm};
use classic_core::subsume::subsumes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn prepare(target: usize, pairs: usize) -> Vec<(NormalForm, NormalForm, NormalForm)> {
    let mut g = ConceptGen::new(&ConceptGenConfig::default());
    (0..pairs)
        .map(|_| {
            let a = g.concept(target);
            let b = g.concept(target);
            let both = Concept::And(vec![a.clone(), b.clone()]);
            (
                normalize(&a, &mut g.schema).expect("coherent"),
                normalize(&b, &mut g.schema).expect("coherent"),
                normalize(&both, &mut g.schema).expect("coherent"),
            )
        })
        .collect()
}

fn bench_subsumption(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_subsumption");
    for size in [8usize, 32, 128, 512] {
        let prepared = prepare(size, 32);
        group.throughput(Throughput::Elements(prepared.len() as u64 * 2));
        group.bench_with_input(BenchmarkId::new("mixed", size), &prepared, |b, prepared| {
            b.iter(|| {
                let mut hits = 0u32;
                for (na, nb, nboth) in prepared {
                    // Full succeeding traversal + typically-failing test.
                    hits += u32::from(subsumes(black_box(na), black_box(nboth)));
                    hits += u32::from(subsumes(black_box(na), black_box(nb)));
                }
                hits
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_subsumption);
criterion_main!(benches);
