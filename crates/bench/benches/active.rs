//! Criterion timing for experiment E6: assertion cost with full active
//! propagation on the §4 crime database (recognition, co-reference,
//! closure, rules). The companion table is `experiments e6`.

use classic_bench::workload::crime::{build, CrimeConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_crime_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_active_build");
    group.sample_size(10);
    for crimes in [100usize, 400, 1600] {
        let cfg = CrimeConfig {
            crimes,
            ..CrimeConfig::default()
        };
        group.throughput(Throughput::Elements(crimes as u64));
        group.bench_with_input(BenchmarkId::new("with_rules", crimes), &cfg, |b, cfg| {
            b.iter(|| black_box(build(cfg).total_derived()))
        });
        let no_rules = CrimeConfig {
            with_rules: false,
            ..cfg.clone()
        };
        group.bench_with_input(
            BenchmarkId::new("without_rules", crimes),
            &no_rules,
            |b, cfg| b.iter(|| black_box(build(cfg).total_derived())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_crime_build);
criterion_main!(benches);
