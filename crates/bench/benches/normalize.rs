//! Criterion timing for experiment E5: normalization cost vs expression
//! size (the preprocessing §5 relies on: "all concepts in the schema are
//! reduced to a normal form"). The companion table is `experiments e5`.

use classic_bench::workload::concepts::{ConceptGen, ConceptGenConfig};
use classic_core::desc::Concept;
use classic_core::normal::normalize;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_normalize(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_normalize");
    for size in [8usize, 32, 128, 512] {
        let mut g = ConceptGen::new(&ConceptGenConfig::default());
        let concepts: Vec<Concept> = (0..16).map(|_| g.concept(size)).collect();
        let mut schema = g.schema;
        group.throughput(Throughput::Elements(concepts.len() as u64));
        group.bench_with_input(BenchmarkId::new("random", size), &concepts, |b, cs| {
            b.iter(|| {
                let mut total = 0usize;
                for c in cs {
                    total += normalize(black_box(c), &mut schema)
                        .expect("coherent")
                        .size();
                }
                total
            })
        });
    }
    group.finish();
}

fn bench_equivalence_check(c: &mut Criterion) {
    // The §2.2 path: normalize both sides and compare canonical forms.
    let mut group = c.benchmark_group("e5_equivalence");
    for size in [16usize, 64, 256] {
        let mut g = ConceptGen::new(&ConceptGenConfig::default());
        let pairs: Vec<(Concept, Concept)> = (0..16).map(|_| g.equivalent_pair(size)).collect();
        let mut schema = g.schema;
        group.throughput(Throughput::Elements(pairs.len() as u64));
        group.bench_with_input(BenchmarkId::new("pairs", size), &pairs, |b, pairs| {
            b.iter(|| {
                let mut equal = 0usize;
                for (a, bexpr) in pairs {
                    let na = normalize(black_box(a), &mut schema).expect("coherent");
                    let nb = normalize(black_box(bexpr), &mut schema).expect("coherent");
                    equal += usize::from(na == nb);
                }
                assert_eq!(equal, pairs.len());
                equal
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_normalize, bench_equivalence_check);
criterion_main!(benches);
