//! Criterion timing for experiment E7: CLASSIC's open-world answer modes
//! vs the closed-world relational baseline over the same data
//! (paper §3.5.2/§3.5.3). The companion table is `experiments e7`.

use classic_bench::workload::crime::{build, CrimeConfig};
use classic_core::desc::Concept;
use classic_rel::{export_kb, Atom, ConjunctiveQuery, Term};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_answer_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_answer_modes");
    group.sample_size(20);
    let mut ckb = build(&CrimeConfig {
        crimes: 1_000,
        ..CrimeConfig::default()
    });
    let db = export_kb(&ckb.kb);
    let perp = ckb.kb.schema().symbols.find_role("perpetrator").expect("r");
    let crime = Concept::Name(ckb.kb.schema().symbols.find_concept("CRIME").expect("c"));
    let q = Concept::and([crime, Concept::AtLeast(1, perp)]);
    let nf = ckb.kb.normalize(&q).expect("coherent");
    let kb = ckb.kb;
    let cq = ConjunctiveQuery::new(
        &["x"],
        vec![
            Atom::new("concept:CRIME", vec![Term::var("x")]),
            Atom::new("role:perpetrator", vec![Term::var("x"), Term::var("y")]),
        ],
    );

    group.bench_function(BenchmarkId::new("classic_known", 1000), |b| {
        b.iter(|| {
            black_box(
                classic_query::retrieve_nf(&kb, &nf)
                    .expect("retrieval")
                    .known
                    .len(),
            )
        })
    });
    group.bench_function(BenchmarkId::new("classic_possible", 1000), |b| {
        b.iter(|| {
            let n = kb
                .ind_ids()
                .filter(|&id| kb.possible_instance(id, &nf))
                .count();
            black_box(n)
        })
    });
    group.bench_function(BenchmarkId::new("relational_cw", 1000), |b| {
        b.iter(|| black_box(cq.evaluate(&db).len()))
    });
    group.bench_function(BenchmarkId::new("export", 1000), |b| {
        b.iter(|| black_box(export_kb(&kb).total_tuples()))
    });
    group.finish();
}

criterion_group!(benches, bench_answer_modes);
criterion_main!(benches);
