//! Criterion timing for experiment E2: building the subsumption hierarchy
//! ("all concepts in the schema are … compared to each other to establish
//! the subsumption hierarchy", paper §5), pruned vs brute classification.
//! The companion table is `experiments e2`.

use classic_bench::workload::schema_gen::{generate_schema, SchemaGenConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_schema_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_schema_build");
    group.sample_size(10);
    for n in [100usize, 400, 1600] {
        let cfg = SchemaGenConfig {
            concepts: n,
            layer_width: (n / 8).max(8),
            ..SchemaGenConfig::default()
        };
        let schema = generate_schema(&cfg);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("pruned", n), &schema, |b, schema| {
            b.iter(|| black_box(schema.build_kb().taxonomy().len()))
        });
    }
    group.finish();
}

fn bench_classify_query(c: &mut Criterion) {
    // Classifying one fresh concept against a standing schema — the
    // operation every retrieval performs first.
    let mut group = c.benchmark_group("e2_classify_one");
    for n in [100usize, 400, 1600] {
        let cfg = SchemaGenConfig {
            concepts: n,
            layer_width: (n / 8).max(8),
            ..SchemaGenConfig::default()
        };
        let kb = generate_schema(&cfg).build_kb();
        let probe = kb
            .schema()
            .symbols
            .find_concept("C30")
            .expect("generated concept");
        let nf = kb.schema().concept_nf(probe).expect("defined").clone();
        group.bench_with_input(BenchmarkId::new("pruned", n), &(), |b, ()| {
            b.iter(|| black_box(kb.taxonomy().classify(black_box(&nf)).tests))
        });
        group.bench_with_input(BenchmarkId::new("brute", n), &(), |b, ()| {
            b.iter(|| black_box(kb.taxonomy().classify_brute(black_box(&nf)).tests))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schema_build, bench_classify_query);
criterion_main!(benches);
