//! Criterion timing for experiment E4: forward-chaining rule propagation
//! to a fixed point (paper §5: bounded by #classes × #individuals). The
//! companion table is `experiments e4`.

use classic_core::desc::Concept;
use classic_kb::Kb;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

/// Rule chain of length `k` (see experiments::e4_rules for the shape).
fn chain_kb(k: usize) -> Kb {
    let mut kb = Kb::new();
    for i in 0..=k {
        kb.define_role(&format!("r{i}")).expect("fresh");
    }
    kb.define_concept("BASE", Concept::primitive(Concept::thing(), "base"))
        .expect("fresh");
    let base = Concept::Name(kb.schema().symbols.find_concept("BASE").expect("c"));
    for i in 1..=k {
        let r = kb.schema().symbols.find_role(&format!("r{i}")).expect("r");
        kb.define_concept(
            &format!("C{i}"),
            Concept::and([base.clone(), Concept::AtLeast(1, r)]),
        )
        .expect("fresh");
    }
    for i in 1..=k {
        let next = kb
            .schema()
            .symbols
            .find_role(&format!("r{}", (i + 1).min(k)))
            .expect("r");
        let consequent = if i < k {
            Concept::AtLeast(1, next)
        } else {
            Concept::AtMost(64, next)
        };
        kb.assert_rule(&format!("C{i}"), consequent)
            .expect("rule ok");
    }
    kb
}

fn bench_rule_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_rule_chain");
    group.sample_size(10);
    for k in [4usize, 16, 64] {
        group.throughput(Throughput::Elements(k as u64));
        group.bench_with_input(BenchmarkId::new("cascade", k), &k, |b, &k| {
            b.iter_with_setup(
                || {
                    let mut kb = chain_kb(k);
                    let base = Concept::Name(kb.schema().symbols.find_concept("BASE").expect("c"));
                    kb.create_ind("x").expect("fresh");
                    kb.assert_ind("x", &base).expect("coherent");
                    kb
                },
                |mut kb| {
                    // One assertion cascades through all k rules.
                    let r1 = kb.schema().symbols.find_role("r1").expect("r");
                    kb.assert_ind("x", &Concept::AtLeast(1, r1))
                        .expect("coherent");
                    black_box(kb.stats.rules_fired.get())
                },
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rule_chain);
criterion_main!(benches);
