//! A software information system, the paper's flagship application.
//!
//! §4: "kandor, the immediate predecessor of CLASSIC, has been used to
//! implement a prototype tool for representing and querying a knowledge
//! base of several hundred concepts (and several thousand individuals)
//! about a large software system and its structure. The knowledge base
//! for this system has already been upgraded to use CLASSIC."
//!
//! The AT&T knowledge base is proprietary; this example builds the
//! synthetic equivalent from `classic-bench`'s generator (modules,
//! functions, call graph, host-valued line counts), then demonstrates the
//! workflows the paper describes: ad-hoc concept queries answered through
//! classification, schema extension over live data, and persistence of
//! the whole KB through the surface-syntax snapshot.
//!
//! Run with: `cargo run --release -p classic-bench --example software_is`

use classic::{Concept, Query};
use classic_bench::workload::software::{build, SoftwareConfig};

fn main() {
    // ---- build the KB at the paper's reported scale -----------------------
    let cfg = SoftwareConfig {
        modules: 40,
        functions: 3_000, // "several thousand individuals"
        ladder: 8,
        ..SoftwareConfig::default()
    };
    let mut sw = build(&cfg);
    println!(
        "software IS: {} individuals, {} named concepts, {} taxonomy nodes",
        sw.kb.ind_count(),
        sw.kb.schema().concept_count(),
        sw.kb.taxonomy().len()
    );

    // ---- ad-hoc queries, answered via classification (§5) ------------------
    for (label, q) in sw.queries() {
        let ans = Query::concept(q)
            .run(&mut sw.kb)
            .expect("coherent query")
            .into_known()
            .expect("known mode");
        println!(
            "{label}: {} answers ({} free from subsumed concepts, {} tested)",
            ans.known.len(),
            ans.stats.free,
            ans.stats.tested
        );
    }

    // ---- schema grows over live data (§3.1) --------------------------------
    // Define GOD-FUNCTION after the fact; existing functions are
    // immediately recognized.
    let calls = sw.kb.schema().symbols.find_role("calls").expect("r");
    let function = Concept::Name(sw.kb.schema().symbols.find_concept("FUNCTION").expect("c"));
    sw.kb
        .define_concept(
            "GOD-FUNCTION",
            Concept::and([function, Concept::AtLeast(6, calls)]),
        )
        .expect("fresh");
    let god = sw
        .kb
        .schema()
        .symbols
        .find_concept("GOD-FUNCTION")
        .expect("c");
    let gods = sw.kb.instances_of(god).expect("defined");
    println!(
        "GOD-FUNCTION defined after load: {} existing functions recognized",
        gods.len()
    );

    // ---- relational view (§3.5.2) -------------------------------------------
    let db = classic::rel::export_kb(&sw.kb);
    println!(
        "relational export: {} relations, {} tuples",
        db.relation_names().count(),
        db.total_tuples()
    );

    // ---- persistence round-trip ----------------------------------------------
    let snapshot = classic::store::snapshot_to_string(&sw.kb);
    let rebuilt = classic::store::roundtrip(&sw.kb, |_| {}).expect("replayable");
    assert!(classic::store::same_state(&sw.kb, &rebuilt));
    println!(
        "snapshot round-trip OK ({} KiB of CLASSIC surface syntax)",
        snapshot.len() / 1024
    );
    println!("software_is OK");
}
