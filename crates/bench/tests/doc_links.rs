//! Docs-link checker: every relative markdown link in the repo's
//! documentation set (README.md, DESIGN.md, EXPERIMENTS.md, docs/*.md)
//! must point at a file that exists. The docs cross-reference each
//! other heavily (README → docs/PROTOCOL.md, INGEST.md ↔ FORMAT.md, …)
//! and a rename silently strands those links; this test turns a
//! stranded link into a red build. External (`http://`, `https://`,
//! `mailto:`) and intra-page (`#…`) links are out of scope — the CI
//! box is offline and anchors are renderer-specific.

use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    // CARGO_MANIFEST_DIR = <repo>/crates/bench
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("bench crate lives two levels below the repo root")
        .to_path_buf()
}

/// Markdown files under the documentation contract.
fn doc_files(root: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = ["README.md", "DESIGN.md", "EXPERIMENTS.md", "CHANGES.md"]
        .iter()
        .map(|f| root.join(f))
        .filter(|p| p.exists())
        .collect();
    let docs = root.join("docs");
    if let Ok(entries) = std::fs::read_dir(&docs) {
        let mut extra: Vec<PathBuf> = entries
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "md"))
            .collect();
        extra.sort();
        files.extend(extra);
    }
    files
}

/// Strip fenced code blocks and inline code spans, where `](` is
/// ordinary text (shell output, rustdoc snippets), not a link.
fn prose_lines(text: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let mut in_fence = false;
    for (ix, line) in text.lines().enumerate() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let mut cleaned = String::with_capacity(line.len());
        let mut in_code = false;
        for ch in line.chars() {
            match ch {
                '`' => in_code = !in_code,
                _ if in_code => {}
                _ => cleaned.push(ch),
            }
        }
        out.push((ix + 1, cleaned));
    }
    out
}

/// Every `](target)` occurrence on a prose line.
fn link_targets(line: &str) -> Vec<&str> {
    let mut targets = Vec::new();
    let mut rest = line;
    while let Some(pos) = rest.find("](") {
        let after = &rest[pos + 2..];
        match after.find(')') {
            Some(end) => {
                targets.push(&after[..end]);
                rest = &after[end + 1..];
            }
            None => break,
        }
    }
    targets
}

#[test]
fn relative_links_in_docs_resolve() {
    let root = repo_root();
    let files = doc_files(&root);
    assert!(
        files.iter().any(|f| f.ends_with("README.md")),
        "doc set must include README.md (looked under {})",
        root.display()
    );

    let mut broken = Vec::new();
    let mut checked = 0usize;
    for file in &files {
        let text = std::fs::read_to_string(file).unwrap();
        let base = file.parent().unwrap();
        for (line_no, line) in prose_lines(&text) {
            for target in link_targets(&line) {
                let target = target.split_whitespace().next().unwrap_or("");
                if target.is_empty()
                    || target.starts_with("http://")
                    || target.starts_with("https://")
                    || target.starts_with("mailto:")
                    || target.starts_with('#')
                {
                    continue;
                }
                let path_part = target.split('#').next().unwrap();
                checked += 1;
                if !base.join(path_part).exists() {
                    broken.push(format!(
                        "{}:{}: broken link -> {}",
                        file.strip_prefix(&root).unwrap_or(file).display(),
                        line_no,
                        target
                    ));
                }
            }
        }
    }
    assert!(
        broken.is_empty(),
        "broken doc links:\n{}",
        broken.join("\n")
    );
    // The docs genuinely cross-reference each other; an empty scan
    // means the extractor broke, not that the docs are link-free.
    assert!(
        checked >= 5,
        "expected at least 5 relative links across the doc set, found {checked}"
    );
}
