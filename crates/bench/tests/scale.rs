//! Scale smoke test at the paper's reported application size ("several
//! hundred concepts … several thousand individuals", §4): all the
//! cross-cutting invariants must survive a database three orders of
//! magnitude beyond the unit-test fixtures.

use classic_bench::workload::software::{build, SoftwareConfig};

#[test]
fn invariants_hold_at_several_thousand_individuals() {
    let cfg = SoftwareConfig {
        modules: 40,
        functions: 1_500,
        ladder: 8,
        ..SoftwareConfig::default()
    };
    let mut sw = build(&cfg);
    assert!(sw.kb.ind_count() > 1_500);

    // 1. Classified retrieval agrees with the naive scan on every query,
    //    with fewer candidate tests.
    for (label, q) in sw.queries() {
        let a = classic_query::Query::concept(q.clone())
            .run(&mut sw.kb)
            .expect("query")
            .into_known()
            .expect("known mode");
        let b = classic_query::retrieve_naive(&mut sw.kb, &q).expect("query");
        let mut x = a.known.clone();
        let mut y = b.known.clone();
        x.sort();
        y.sort();
        assert_eq!(x, y, "disagreement on {label}");
        assert!(a.stats.tested <= b.stats.tested);
    }

    // 2. Extension index consistency over the whole database.
    for id in sw.kb.ind_ids() {
        for &node in &sw.kb.ind(id).instance_nodes {
            assert!(
                sw.kb.instances_of_node(node).contains(&id),
                "extension index missing an instance"
            );
        }
    }

    // 3. No committed individual is incoherent.
    for id in sw.kb.ind_ids() {
        assert!(!sw.kb.ind(id).derived.is_incoherent());
    }

    // 4. The whole database persists and replays identically.
    let rebuilt = classic_store::roundtrip(&sw.kb, |_| {}).expect("replay");
    assert!(classic_store::same_state(&sw.kb, &rebuilt));

    // 5. The relational export is consistent with the KB's known facts.
    let db = classic_rel::export_kb(&sw.kb);
    let functions = sw
        .kb
        .schema()
        .symbols
        .find_concept("FUNCTION")
        .expect("defined");
    let classic_count = sw.kb.instances_of(functions).expect("defined").len();
    let rel_count = db.relation("concept:FUNCTION").expect("exported").len();
    assert_eq!(classic_count, rel_count);
}
