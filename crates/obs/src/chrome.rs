//! Chrome trace-event JSON export: renders [`Trace`]s as the
//! `traceEvents` array format understood by Perfetto and
//! `chrome://tracing`.
//!
//! One complete event (`"ph":"X"`) per span, with `ts`/`dur` in
//! microseconds (fractional, exact to the nanosecond). Each trace gets
//! its own `tid` — span timestamps are relative to their trace's start,
//! so putting two traces on one track would interleave them — plus a
//! metadata event naming the track after the request's trace id. The
//! output is strict JSON: it round-trips through [`crate::Json`], which
//! the tests and the `json-check` bin enforce.

use crate::expo::json_string;
use crate::flight::Trace;
use std::sync::Arc;

/// Exact nanoseconds → fractional microseconds, e.g. `12345` → `12.345`.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn push_span_args(out: &mut String, t: &Trace, span_ix: usize) {
    let s = &t.spans[span_ix];
    out.push_str(",\"args\":{");
    let mut first = true;
    if span_ix == 0 {
        if let Some(c) = &t.ctx {
            out.push_str(&format!(
                "\"trace_id\":{},\"tenant\":{},\"session\":{},\"kind\":{}",
                json_string(&c.trace_id.to_string()),
                json_string(&c.tenant),
                c.session,
                json_string(c.kind)
            ));
            first = false;
        }
    }
    // Events summed by name so args keys stay unique.
    let mut summed: Vec<(&'static str, u64)> = Vec::new();
    for e in &s.events {
        match summed.iter_mut().find(|(n, _)| *n == e.name) {
            Some((_, v)) => *v += e.value,
            None => summed.push((e.name, e.value)),
        }
    }
    for (n, v) in summed {
        if !first {
            out.push(',');
        }
        out.push_str(&format!("{}:{}", json_string(n), v));
        first = false;
    }
    out.push('}');
}

/// Render `traces` as one Chrome trace-event JSON document.
pub fn render_chrome_trace(traces: &[Arc<Trace>]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for (tix, t) in traces.iter().enumerate() {
        let tid = tix + 1;
        let track_name = match &t.ctx {
            Some(c) => format!("{} {} ({})", c.trace_id, t.root, c.tenant),
            None => format!("{} (local)", t.root),
        };
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":{}}}}}",
            tid,
            json_string(&track_name)
        ));
        for (six, s) in t.spans.iter().enumerate() {
            out.push_str(&format!(
                ",{{\"name\":{},\"cat\":\"classic\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}",
                json_string(s.target),
                us(s.start_ns),
                us(s.dur_ns),
                tid
            ));
            push_span_args(&mut out, t, six);
            out.push('}');
        }
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{RequestCtx, TraceId};
    use crate::flight::{SpanRecord, TraceEvent};
    use crate::Json;

    fn sample_trace() -> Arc<Trace> {
        Arc::new(Trace {
            root: "server.request",
            total_ns: 9_500,
            spans: vec![
                SpanRecord {
                    id: 0,
                    parent: None,
                    target: "server.request",
                    start_ns: 0,
                    dur_ns: 9_500,
                    events: vec![],
                },
                SpanRecord {
                    id: 1,
                    parent: Some(0),
                    target: "kb.assert",
                    start_ns: 1_200,
                    dur_ns: 7_000,
                    events: vec![
                        TraceEvent {
                            name: "rule_fired",
                            value: 2,
                        },
                        TraceEvent {
                            name: "rule_fired",
                            value: 1,
                        },
                    ],
                },
            ],
            ctx: Some(RequestCtx {
                trace_id: TraceId::parse("deadbeef").unwrap(),
                tenant: "t0".to_string(),
                session: 4,
                kind: "assert-ind",
            }),
        })
    }

    #[test]
    fn chrome_dump_is_strict_json_with_nested_ts_dur() {
        let text = render_chrome_trace(&[sample_trace()]);
        let v = Json::parse(&text).expect("chrome dump parses strictly");
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        // One metadata + two span events.
        assert_eq!(events.len(), 3);
        let root = &events[1];
        let child = &events[2];
        assert_eq!(root.get("ph").unwrap().as_str(), Some("X"));
        let (rts, rdur) = (
            root.get("ts").unwrap().as_num().unwrap(),
            root.get("dur").unwrap().as_num().unwrap(),
        );
        let (cts, cdur) = (
            child.get("ts").unwrap().as_num().unwrap(),
            child.get("dur").unwrap().as_num().unwrap(),
        );
        assert!(cts >= rts, "child opens inside the root window");
        assert!(cts + cdur <= rts + rdur, "child closes inside the root");
        assert_eq!(rts, 0.0);
        assert_eq!(cts, 1.2);
        assert_eq!(cdur, 7.0);
        // Root args carry the request identity; child args sum events.
        let args = root.get("args").unwrap();
        assert_eq!(
            args.get("trace_id").unwrap().as_str(),
            Some("000000000000000000000000deadbeef")
        );
        assert_eq!(args.get("tenant").unwrap().as_str(), Some("t0"));
        assert_eq!(args.get("kind").unwrap().as_str(), Some("assert-ind"));
        assert_eq!(
            child
                .get("args")
                .unwrap()
                .get("rule_fired")
                .unwrap()
                .as_num(),
            Some(3.0)
        );
    }

    #[test]
    fn traces_get_distinct_tids() {
        let text = render_chrome_trace(&[sample_trace(), sample_trace()]);
        let v = Json::parse(&text).unwrap();
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        let tids: std::collections::BTreeSet<u64> = events
            .iter()
            .map(|e| e.get("tid").unwrap().as_num().unwrap() as u64)
            .collect();
        assert_eq!(tids.len(), 2);
    }

    #[test]
    fn empty_dump_is_still_valid() {
        let text = render_chrome_trace(&[]);
        Json::parse(&text).expect("empty dump parses");
        assert!(text.contains("\"traceEvents\":[]"));
    }
}
