//! The global observability level: one relaxed atomic load on every hot
//! path decides whether instrumentation runs at all.

use std::sync::atomic::{AtomicU8, Ordering};

/// How much observability work the process performs.
///
/// The level is *global* (one `AtomicU8`), not per-registry: the whole
/// point is that a disabled probe costs exactly one relaxed load, and a
/// per-object level would make every instrumentation site chase a
/// pointer first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum ObsLevel {
    /// All instrumentation suppressed — counters do not count, spans do
    /// not open, the flight recorder stays empty. Each probe site costs
    /// one relaxed atomic load.
    Off = 0,
    /// Counters, gauges, and value histograms update (relaxed atomic
    /// adds); spans and duration timings stay off. This is the default
    /// and corresponds to what the pre-observability `KbStats` always
    /// did.
    Counters = 1,
    /// Everything: spans open (monotonic nanosecond clocks), duration
    /// histograms fill, and completed operation traces land in the
    /// flight recorder.
    Full = 2,
}

impl ObsLevel {
    /// Parse a level name as used by CLI flags and the REPL.
    pub fn parse(s: &str) -> Option<ObsLevel> {
        match s {
            "off" => Some(ObsLevel::Off),
            "counters" => Some(ObsLevel::Counters),
            "full" => Some(ObsLevel::Full),
            _ => None,
        }
    }

    /// The flag/REPL spelling of this level.
    pub fn name(self) -> &'static str {
        match self {
            ObsLevel::Off => "off",
            ObsLevel::Counters => "counters",
            ObsLevel::Full => "full",
        }
    }
}

impl std::fmt::Display for ObsLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

static LEVEL: AtomicU8 = AtomicU8::new(ObsLevel::Counters as u8);

/// The current global level.
pub fn level() -> ObsLevel {
    match LEVEL.load(Ordering::Relaxed) {
        0 => ObsLevel::Off,
        1 => ObsLevel::Counters,
        _ => ObsLevel::Full,
    }
}

/// Set the global level, returning the previous one (so callers like
/// experiment E13 can restore it).
pub fn set_level(l: ObsLevel) -> ObsLevel {
    match LEVEL.swap(l as u8, Ordering::Relaxed) {
        0 => ObsLevel::Off,
        1 => ObsLevel::Counters,
        _ => ObsLevel::Full,
    }
}

/// Do counters/gauges/value-histograms update? (`Counters` and above.)
#[inline(always)]
pub fn counters_enabled() -> bool {
    LEVEL.load(Ordering::Relaxed) >= ObsLevel::Counters as u8
}

/// Do spans, duration timings, and the flight recorder run? (`Full`.)
#[inline(always)]
pub fn tracing_enabled() -> bool {
    LEVEL.load(Ordering::Relaxed) >= ObsLevel::Full as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        for l in [ObsLevel::Off, ObsLevel::Counters, ObsLevel::Full] {
            assert_eq!(ObsLevel::parse(l.name()), Some(l));
        }
        assert_eq!(ObsLevel::parse("verbose"), None);
    }
}
