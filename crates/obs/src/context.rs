//! Request-scoped trace context: trace ids minted (or adopted) at the
//! wire front, carried on the trace a root span builds, and used by the
//! head-sampler to decide whether a request records spans at all.
//!
//! A [`TraceId`] is 128 bits rendered as 32 lowercase hex digits. Ids
//! minted in-process mix a per-process seed with a monotone counter so
//! they are unique within and (with high probability) across processes.
//! Client-supplied ids are parsed strictly: 1–32 hex digits, nonzero;
//! anything else is rejected with a positioned [`TraceIdError`] so the
//! wire layer can refuse the id instead of silently minting a fresh one.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Maximum accepted length, in bytes, of a client-supplied trace id.
pub const MAX_TRACE_ID_LEN: usize = 32;

/// A 128-bit request trace id, rendered as 32 lowercase hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(u128);

/// What was wrong with a client-supplied trace id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceIdErrorKind {
    /// The id is the empty string.
    Empty,
    /// A character outside `[0-9a-fA-F]` (the offending char).
    InvalidChar(char),
    /// The id is longer than [`MAX_TRACE_ID_LEN`] bytes (the length).
    Oversize(usize),
    /// The id is all zeroes, which is reserved as "no id".
    Zero,
}

/// A rejected client-supplied trace id, with the byte position of the
/// offending character (0 for `Empty`/`Zero`, [`MAX_TRACE_ID_LEN`] for
/// `Oversize` — the first byte past the limit).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceIdError {
    /// The id as submitted, truncated to 64 bytes for display.
    pub input: String,
    /// Byte offset of the character that failed validation.
    pub position: usize,
    /// What was wrong.
    pub kind: TraceIdErrorKind,
}

impl std::fmt::Display for TraceIdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            TraceIdErrorKind::Empty => write!(f, "trace id may not be empty"),
            TraceIdErrorKind::InvalidChar(c) => write!(
                f,
                "invalid trace id {:?}: char {:?} at byte {} (allowed: [0-9a-f], max {} digits)",
                self.input, c, self.position, MAX_TRACE_ID_LEN
            ),
            TraceIdErrorKind::Oversize(len) => write!(
                f,
                "oversize trace id: {} bytes at byte {} (max {} hex digits)",
                len, self.position, MAX_TRACE_ID_LEN
            ),
            TraceIdErrorKind::Zero => {
                write!(f, "trace id may not be zero (reserved as \"no id\")")
            }
        }
    }
}

impl std::error::Error for TraceIdError {}

/// splitmix64 finalizer: a cheap, well-mixed 64-bit permutation.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn process_seed() -> u64 {
    static SEED: OnceLock<u64> = OnceLock::new();
    *SEED.get_or_init(|| {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let pid = std::process::id() as u64;
        mix64(t ^ pid.rotate_left(32)) | 1
    })
}

static MINT_COUNTER: AtomicU64 = AtomicU64::new(1);
static SESSION_COUNTER: AtomicU64 = AtomicU64::new(1);

impl TraceId {
    /// Mint a fresh id: the process seed mixed with a monotone counter.
    /// Never returns the zero id.
    pub fn mint() -> TraceId {
        let n = MINT_COUNTER.fetch_add(1, Ordering::Relaxed);
        let seed = process_seed();
        let hi = mix64(seed ^ n);
        let lo = mix64(n.wrapping_mul(0xa24b_aed4_963e_e407).wrapping_add(seed));
        let v = ((hi as u128) << 64) | lo as u128;
        TraceId(if v == 0 { 1 } else { v })
    }

    /// Parse a client-supplied id: 1–32 hex digits (either case),
    /// nonzero. Shorter ids are zero-extended on the left.
    pub fn parse(s: &str) -> Result<TraceId, TraceIdError> {
        let err = |position, kind| TraceIdError {
            input: s.chars().take(64).collect(),
            position,
            kind,
        };
        if s.is_empty() {
            return Err(err(0, TraceIdErrorKind::Empty));
        }
        if s.len() > MAX_TRACE_ID_LEN {
            return Err(err(MAX_TRACE_ID_LEN, TraceIdErrorKind::Oversize(s.len())));
        }
        let mut v: u128 = 0;
        for (pos, c) in s.char_indices() {
            let d = match c.to_digit(16) {
                Some(d) => d,
                None => return Err(err(pos, TraceIdErrorKind::InvalidChar(c))),
            };
            v = (v << 4) | d as u128;
        }
        if v == 0 {
            return Err(err(0, TraceIdErrorKind::Zero));
        }
        Ok(TraceId(v))
    }

    /// The raw 128-bit value (nonzero).
    pub fn as_u128(&self) -> u128 {
        self.0
    }
}

impl std::fmt::Display for TraceId {
    /// 32 lowercase hex digits, zero-padded.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// The identity a wire request carries into the span layer: attached to
/// the trace its root span builds, surfaced in the slowlog and both
/// export formats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestCtx {
    /// The request's trace id (minted at the front or client-adopted).
    pub trace_id: TraceId,
    /// Tenant the request resolved against.
    pub tenant: String,
    /// Server-assigned session (connection) number.
    pub session: u64,
    /// Command kind, e.g. `"assert-ind"`, `"retrieve"`, `"session"`,
    /// `"http.eval"`.
    pub kind: &'static str,
}

/// Allocate a process-unique session number for a new wire connection.
pub fn next_session_id() -> u64 {
    SESSION_COUNTER.fetch_add(1, Ordering::Relaxed)
}

// The head-sampling rate, stored as f64 bits. Default 1.0 (trace every
// request). Sampling applies only at ObsLevel::Full and only to span
// collection — request latency is always measured at the front.
static SAMPLE_BITS: AtomicU64 = AtomicU64::new(0x3FF0_0000_0000_0000); // 1.0f64

/// Set the head-sampling rate (clamped to `[0, 1]`), returning the
/// previous rate.
pub fn set_sample_rate(rate: f64) -> f64 {
    let clamped = if rate.is_nan() {
        1.0
    } else {
        rate.clamp(0.0, 1.0)
    };
    f64::from_bits(SAMPLE_BITS.swap(clamped.to_bits(), Ordering::Relaxed))
}

/// The current head-sampling rate in `[0, 1]`.
pub fn sample_rate() -> f64 {
    f64::from_bits(SAMPLE_BITS.load(Ordering::Relaxed))
}

/// Head-sampling decision for a trace id: deterministic per id, so
/// retries of the same id sample the same way and distributed parties
/// agree. `true` means "collect spans".
pub fn sampled(id: TraceId) -> bool {
    let rate = sample_rate();
    if rate >= 1.0 {
        return true;
    }
    if rate <= 0.0 {
        return false;
    }
    // Hash the id down to 53 uniform bits and compare against the rate.
    let h = mix64(id.0 as u64 ^ mix64((id.0 >> 64) as u64));
    ((h >> 11) as f64 / (1u64 << 53) as f64) < rate
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minted_ids_are_unique_and_nonzero() {
        let a = TraceId::mint();
        let b = TraceId::mint();
        assert_ne!(a, b);
        assert_ne!(a.as_u128(), 0);
        assert_eq!(a.to_string().len(), 32);
    }

    #[test]
    fn parse_round_trips_render() {
        let id = TraceId::mint();
        assert_eq!(TraceId::parse(&id.to_string()).unwrap(), id);
        // Short ids zero-extend; case-insensitive.
        assert_eq!(
            TraceId::parse("DEADBEEF").unwrap(),
            TraceId::parse("000000000000000000000000deadbeef").unwrap()
        );
    }

    #[test]
    fn parse_rejects_with_positions() {
        let e = TraceId::parse("").unwrap_err();
        assert_eq!(e.kind, TraceIdErrorKind::Empty);
        let e = TraceId::parse("12g4").unwrap_err();
        assert_eq!(e.kind, TraceIdErrorKind::InvalidChar('g'));
        assert_eq!(e.position, 2);
        let long = "a".repeat(33);
        let e = TraceId::parse(&long).unwrap_err();
        assert_eq!(e.kind, TraceIdErrorKind::Oversize(33));
        assert_eq!(e.position, MAX_TRACE_ID_LEN);
        let e = TraceId::parse("0000").unwrap_err();
        assert_eq!(e.kind, TraceIdErrorKind::Zero);
        assert!(e.to_string().contains("zero"));
    }

    #[test]
    fn sampling_is_deterministic_and_respects_extremes() {
        let id = TraceId::parse("abc123").unwrap();
        let prev = set_sample_rate(1.0);
        assert!(sampled(id));
        set_sample_rate(0.0);
        assert!(!sampled(id));
        set_sample_rate(0.5);
        let first = sampled(id);
        for _ in 0..10 {
            assert_eq!(sampled(id), first, "decision must be deterministic per id");
        }
        set_sample_rate(prev);
    }

    #[test]
    fn sample_rate_clamps() {
        let prev = set_sample_rate(7.5);
        assert_eq!(sample_rate(), 1.0);
        set_sample_rate(-3.0);
        assert_eq!(sample_rate(), 0.0);
        set_sample_rate(prev);
    }

    #[test]
    fn half_rate_samples_roughly_half() {
        let prev = set_sample_rate(0.5);
        let n = 2000;
        let hits = (0..n).filter(|_| sampled(TraceId::mint())).count();
        set_sample_rate(prev);
        assert!(
            hits > n / 4 && hits < 3 * n / 4,
            "rate 0.5 sampled {hits}/{n}"
        );
    }
}
