//! The metrics registry: named atomic counters, gauges, and
//! log2-bucketed histograms, validated at registration and rendered by
//! [`crate::expo`].

use crate::level::{counters_enabled, tracing_enabled};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Why a metric registration was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObsErrorKind {
    /// The name is the empty string.
    Empty,
    /// A character outside `[a-z0-9_]` (the offending char).
    InvalidChar(char),
    /// A series with this name already exists in the registry.
    Duplicate,
}

/// A rejected metric registration, carrying the name and the byte
/// position of the offending character (0 for [`ObsErrorKind::Empty`] and
/// [`ObsErrorKind::Duplicate`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsError {
    /// The name as submitted.
    pub name: String,
    /// Byte offset of the character that failed validation.
    pub position: usize,
    /// What was wrong.
    pub kind: ObsErrorKind,
}

impl std::fmt::Display for ObsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            ObsErrorKind::Empty => write!(f, "metric name may not be empty"),
            ObsErrorKind::InvalidChar(c) => write!(
                f,
                "invalid metric name {:?}: char {:?} at byte {} (allowed: [a-z0-9_])",
                self.name, c, self.position
            ),
            ObsErrorKind::Duplicate => {
                write!(f, "metric {:?} is already registered", self.name)
            }
        }
    }
}

impl std::error::Error for ObsError {}

/// Validate a series name: nonempty, every char in `[a-z0-9_]`. Rejecting
/// anything else at registration means exposition can never emit a series
/// that needs escaping — or two series whose escaped forms collide.
pub fn validate_name(name: &str) -> Result<(), ObsError> {
    if name.is_empty() {
        return Err(ObsError {
            name: String::new(),
            position: 0,
            kind: ObsErrorKind::Empty,
        });
    }
    for (pos, c) in name.char_indices() {
        if !(c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_') {
            return Err(ObsError {
                name: name.to_owned(),
                position: pos,
                kind: ObsErrorKind::InvalidChar(c),
            });
        }
    }
    Ok(())
}

#[derive(Debug)]
struct SeriesCore {
    name: String,
    help: String,
    value: AtomicU64,
}

/// A monotonically increasing counter. Cheap to clone (an `Arc`); bumps
/// are relaxed atomic adds, suppressed below [`crate::ObsLevel::Counters`].
#[derive(Debug, Clone)]
pub struct Counter(Arc<SeriesCore>);

impl Counter {
    /// A counter not attached to any registry (for tests and defaults).
    pub fn detached(name: &str) -> Counter {
        Counter(Arc::new(SeriesCore {
            name: name.to_owned(),
            help: String::new(),
            value: AtomicU64::new(0),
        }))
    }

    /// Increment by one.
    #[inline]
    pub fn bump(&self) {
        self.add(1);
    }

    /// Increment by `n`. One relaxed load when the level is `Off`.
    #[inline]
    pub fn add(&self, n: u64) {
        if counters_enabled() {
            self.0.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.value.load(Ordering::Relaxed)
    }

    /// The registered series name.
    pub fn name(&self) -> &str {
        &self.0.name
    }

    fn reset(&self) {
        self.0.value.store(0, Ordering::Relaxed);
    }
}

/// A gauge: a value that can be set to arbitrary (unsigned) levels.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<SeriesCore>);

impl Gauge {
    /// A gauge not attached to any registry (for tests and defaults).
    pub fn detached(name: &str) -> Gauge {
        Gauge(Arc::new(SeriesCore {
            name: name.to_owned(),
            help: String::new(),
            value: AtomicU64::new(0),
        }))
    }

    /// Set the gauge.
    #[inline]
    pub fn set(&self, v: u64) {
        if counters_enabled() {
            self.0.value.store(v, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.value.load(Ordering::Relaxed)
    }

    /// The registered series name.
    pub fn name(&self) -> &str {
        &self.0.name
    }

    fn reset(&self) {
        self.0.value.store(0, Ordering::Relaxed);
    }
}

/// Number of log2 buckets: values are bucketed by bit length, so bucket
/// `b` holds `v` with `v == 0 → b == 0`, else `b == 64 - v.leading_zeros()`
/// (upper bound `2^b - 1`). 65 buckets cover the full `u64` range.
pub const HISTOGRAM_BUCKETS: usize = 65;

#[derive(Debug)]
struct HistogramCore {
    name: String,
    help: String,
    /// Whether this histogram records *durations*: duration histograms
    /// only fill at `ObsLevel::Full` (the caller must run a clock to
    /// feed them), value histograms fill from `Counters` up.
    duration: bool,
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

/// A log2-bucketed histogram (bit-length buckets, power-of-two upper
/// bounds). `record` is three relaxed atomic adds.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

/// A point-in-time copy of one histogram, used by exposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket (non-cumulative) observation counts, indexed by bit
    /// length of the observed value.
    pub buckets: Vec<u64>,
    /// Sum of all observed values.
    pub sum: u64,
    /// Number of observations.
    pub count: u64,
}

impl HistogramSnapshot {
    /// Merge another snapshot into this one (for cross-registry roll-up).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.sum += other.sum;
        self.count += other.count;
    }
}

/// The log2 bucket index for a value: its bit length.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

impl Histogram {
    /// A histogram not attached to any registry (for tests and
    /// defaults). `duration` selects the fill level as in
    /// [`Registry::duration_histogram`].
    pub fn detached(name: &str, duration: bool) -> Histogram {
        Histogram(Arc::new(HistogramCore {
            name: name.to_owned(),
            help: String::new(),
            duration,
            buckets: (0..HISTOGRAM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }))
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        let on = if self.0.duration {
            tracing_enabled()
        } else {
            counters_enabled()
        };
        if on {
            self.0.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
            self.0.sum.fetch_add(v, Ordering::Relaxed);
            self.0.count.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of observed values so far.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// The registered series name.
    pub fn name(&self) -> &str {
        &self.0.name
    }

    /// Copy out the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .0
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum(),
            count: self.count(),
        }
    }

    fn reset(&self) {
        for b in &self.0.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.0.sum.store(0, Ordering::Relaxed);
        self.0.count.store(0, Ordering::Relaxed);
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: Vec<Counter>,
    gauges: Vec<Gauge>,
    histograms: Vec<Histogram>,
}

impl RegistryInner {
    fn has(&self, name: &str) -> bool {
        self.counters.iter().any(|c| c.0.name == name)
            || self.gauges.iter().any(|g| g.0.name == name)
            || self.histograms.iter().any(|h| h.0.name == name)
    }
}

/// A point-in-time copy of a whole registry (or several merged), the
/// input to both exposition formats.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// name → (help, value)
    pub counters: BTreeMap<String, (String, u64)>,
    /// name → (help, value)
    pub gauges: BTreeMap<String, (String, u64)>,
    /// name → (help, state)
    pub histograms: BTreeMap<String, (String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Merge another snapshot into this one, summing same-named series.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, (help, v)) in &other.counters {
            let e = self
                .counters
                .entry(name.clone())
                .or_insert_with(|| (help.clone(), 0));
            e.1 += v;
        }
        for (name, (help, v)) in &other.gauges {
            let e = self
                .gauges
                .entry(name.clone())
                .or_insert_with(|| (help.clone(), 0));
            e.1 += v;
        }
        for (name, (help, h)) in &other.histograms {
            match self.histograms.get_mut(name) {
                Some((_, mine)) => mine.merge(h),
                None => {
                    self.histograms
                        .insert(name.clone(), (help.clone(), h.clone()));
                }
            }
        }
    }

    /// True if no series carries a nonzero value or observation.
    pub fn is_all_zero(&self) -> bool {
        self.counters.values().all(|(_, v)| *v == 0)
            && self.gauges.values().all(|(_, v)| *v == 0)
            && self.histograms.values().all(|(_, h)| h.count == 0)
    }
}

/// A set of named metric series. Instantiable — every [`Kb`]-like owner
/// gets its own registry so tests and parallel sessions never share
/// counts — and enrolled in a process-global list so CLI tools can dump
/// an aggregated snapshot of everything the process did
/// ([`crate::expo::snapshot_all`]).
///
/// [`Kb`]: https://docs.rs/classic-kb
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

impl Drop for Registry {
    fn drop(&mut self) {
        // Preserve the final state in the process-global roll-up: CLI
        // `--metrics` dumps run after the KBs they measured are gone.
        crate::expo::bury(&self.snapshot());
    }
}

impl Registry {
    /// Create a registry and enroll it in the process-global roll-up
    /// list.
    pub fn new() -> Arc<Registry> {
        let r = Arc::new(Registry {
            inner: Mutex::new(RegistryInner::default()),
        });
        crate::expo::enroll(&r);
        r
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RegistryInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn check_name(&self, name: &str) -> Result<(), ObsError> {
        validate_name(name)?;
        if self.lock().has(name) {
            return Err(ObsError {
                name: name.to_owned(),
                position: 0,
                kind: ObsErrorKind::Duplicate,
            });
        }
        Ok(())
    }

    /// Register a counter. Rejects duplicate and invalid names.
    pub fn counter(&self, name: &str, help: &str) -> Result<Counter, ObsError> {
        self.check_name(name)?;
        let c = Counter(Arc::new(SeriesCore {
            name: name.to_owned(),
            help: help.to_owned(),
            value: AtomicU64::new(0),
        }));
        self.lock().counters.push(c.clone());
        Ok(c)
    }

    /// Register a gauge. Rejects duplicate and invalid names.
    pub fn gauge(&self, name: &str, help: &str) -> Result<Gauge, ObsError> {
        self.check_name(name)?;
        let g = Gauge(Arc::new(SeriesCore {
            name: name.to_owned(),
            help: help.to_owned(),
            value: AtomicU64::new(0),
        }));
        self.lock().gauges.push(g.clone());
        Ok(g)
    }

    /// Register a *value* histogram (fills from `ObsLevel::Counters` up).
    pub fn histogram(&self, name: &str, help: &str) -> Result<Histogram, ObsError> {
        self.histogram_impl(name, help, false)
    }

    /// Register a *duration* histogram (nanoseconds; fills only at
    /// `ObsLevel::Full`, because feeding it requires running a clock).
    pub fn duration_histogram(&self, name: &str, help: &str) -> Result<Histogram, ObsError> {
        self.histogram_impl(name, help, true)
    }

    fn histogram_impl(
        &self,
        name: &str,
        help: &str,
        duration: bool,
    ) -> Result<Histogram, ObsError> {
        self.check_name(name)?;
        let h = Histogram(Arc::new(HistogramCore {
            name: name.to_owned(),
            help: help.to_owned(),
            duration,
            buckets: (0..HISTOGRAM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }));
        self.lock().histograms.push(h.clone());
        Ok(h)
    }

    /// Fetch the counter named `name`, registering it if absent. Lets a
    /// layer that does not own the registry (query, store) attach its
    /// series idempotently. Errors if the name is invalid or already
    /// names a series of another kind.
    pub fn get_or_counter(&self, name: &str, help: &str) -> Result<Counter, ObsError> {
        validate_name(name)?;
        let mut inner = self.lock();
        if let Some(c) = inner.counters.iter().find(|c| c.0.name == name) {
            return Ok(c.clone());
        }
        if inner.has(name) {
            return Err(ObsError {
                name: name.to_owned(),
                position: 0,
                kind: ObsErrorKind::Duplicate,
            });
        }
        let c = Counter(Arc::new(SeriesCore {
            name: name.to_owned(),
            help: help.to_owned(),
            value: AtomicU64::new(0),
        }));
        inner.counters.push(c.clone());
        Ok(c)
    }

    /// Fetch the gauge named `name`, registering it if absent (see
    /// [`Registry::get_or_counter`]).
    pub fn get_or_gauge(&self, name: &str, help: &str) -> Result<Gauge, ObsError> {
        validate_name(name)?;
        let mut inner = self.lock();
        if let Some(g) = inner.gauges.iter().find(|g| g.0.name == name) {
            return Ok(g.clone());
        }
        if inner.has(name) {
            return Err(ObsError {
                name: name.to_owned(),
                position: 0,
                kind: ObsErrorKind::Duplicate,
            });
        }
        let g = Gauge(Arc::new(SeriesCore {
            name: name.to_owned(),
            help: help.to_owned(),
            value: AtomicU64::new(0),
        }));
        inner.gauges.push(g.clone());
        Ok(g)
    }

    /// Fetch the *value* histogram named `name`, registering it if absent
    /// (see [`Registry::get_or_counter`]). A same-named histogram with the
    /// other duration flavor counts as a different kind.
    pub fn get_or_histogram(&self, name: &str, help: &str) -> Result<Histogram, ObsError> {
        self.get_or_histogram_impl(name, help, false)
    }

    /// Fetch the *duration* histogram named `name`, registering it if
    /// absent (see [`Registry::get_or_counter`]).
    pub fn get_or_duration_histogram(&self, name: &str, help: &str) -> Result<Histogram, ObsError> {
        self.get_or_histogram_impl(name, help, true)
    }

    fn get_or_histogram_impl(
        &self,
        name: &str,
        help: &str,
        duration: bool,
    ) -> Result<Histogram, ObsError> {
        validate_name(name)?;
        let mut inner = self.lock();
        if let Some(h) = inner
            .histograms
            .iter()
            .find(|h| h.0.name == name && h.0.duration == duration)
        {
            return Ok(h.clone());
        }
        if inner.has(name) {
            return Err(ObsError {
                name: name.to_owned(),
                position: 0,
                kind: ObsErrorKind::Duplicate,
            });
        }
        let h = Histogram(Arc::new(HistogramCore {
            name: name.to_owned(),
            help: help.to_owned(),
            duration,
            buckets: (0..HISTOGRAM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }));
        inner.histograms.push(h.clone());
        Ok(h)
    }

    /// Copy out every series.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.lock();
        let mut s = MetricsSnapshot::default();
        for c in &inner.counters {
            s.counters
                .insert(c.0.name.clone(), (c.0.help.clone(), c.get()));
        }
        for g in &inner.gauges {
            s.gauges
                .insert(g.0.name.clone(), (g.0.help.clone(), g.get()));
        }
        for h in &inner.histograms {
            s.histograms
                .insert(h.0.name.clone(), (h.0.help.clone(), h.snapshot()));
        }
        s
    }

    /// Zero every series (handles stay valid).
    pub fn reset(&self) {
        let inner = self.lock();
        for c in &inner.counters {
            c.reset();
        }
        for g in &inner.gauges {
            g.reset();
        }
        for h in &inner.histograms {
            h.reset();
        }
    }

    /// Render this registry alone in Prometheus text format.
    pub fn render_prometheus(&self) -> String {
        crate::expo::render_prometheus(&self.snapshot())
    }

    /// Render this registry alone as JSON.
    pub fn render_json(&self) -> String {
        crate::expo::render_json(&self.snapshot())
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.lock();
        f.debug_struct("Registry")
            .field("counters", &inner.counters.len())
            .field("gauges", &inner.gauges.len())
            .field("histograms", &inner.histograms.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_validated_with_positions() {
        let r = Registry::new();
        let e = r.counter("bad-name", "").unwrap_err();
        assert_eq!(e.kind, ObsErrorKind::InvalidChar('-'));
        assert_eq!(e.position, 3);
        let e = r.counter("Upper", "").unwrap_err();
        assert_eq!(e.kind, ObsErrorKind::InvalidChar('U'));
        assert_eq!(e.position, 0);
        let e = r.counter("", "").unwrap_err();
        assert_eq!(e.kind, ObsErrorKind::Empty);
    }

    #[test]
    fn duplicates_are_rejected_across_kinds() {
        let r = Registry::new();
        r.counter("x_total", "").unwrap();
        assert_eq!(
            r.gauge("x_total", "").unwrap_err().kind,
            ObsErrorKind::Duplicate
        );
        assert_eq!(
            r.histogram("x_total", "").unwrap_err().kind,
            ObsErrorKind::Duplicate
        );
    }

    #[test]
    fn get_or_returns_the_same_series_and_rejects_kind_clashes() {
        let r = Registry::new();
        let a = r.get_or_counter("q_total", "first").unwrap();
        let b = r.get_or_counter("q_total", "ignored").unwrap();
        a.bump();
        assert_eq!(b.get(), 1, "both handles name the same atomic");
        assert_eq!(
            r.get_or_gauge("q_total", "").unwrap_err().kind,
            ObsErrorKind::Duplicate
        );
        // Duration flavor is part of the histogram's identity.
        r.get_or_histogram("h_vals", "").unwrap();
        assert_eq!(
            r.get_or_duration_histogram("h_vals", "").unwrap_err().kind,
            ObsErrorKind::Duplicate
        );
    }

    #[test]
    fn log2_buckets_are_bit_lengths() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn counters_and_histograms_count_at_default_level() {
        let r = Registry::new();
        let c = r.counter("c_total", "").unwrap();
        let h = r.histogram("h_vals", "").unwrap();
        c.bump();
        c.add(2);
        h.record(5);
        assert_eq!(c.get(), 3);
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 5);
        r.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
    }
}
