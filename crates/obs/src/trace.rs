//! The span layer: RAII guards over a thread-local trace builder. A root
//! span opening starts a trace; the root closing hands the finished
//! trace to the operation's [`FlightRecorder`].
//!
//! Spans cost nothing below [`crate::ObsLevel::Full`]: `span()` does one
//! relaxed atomic load and returns an inert guard.

use crate::context::RequestCtx;
use crate::flight::{FlightRecorder, SpanRecord, Trace, TraceEvent};
use crate::level::tracing_enabled;
use crate::metrics::Histogram;
use std::cell::{Cell, RefCell};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Where a request root span deposits its finished trace: the request
/// layer reads it back after the guard drops (reading the recorder would
/// race with other workers on the same tenant).
type TraceSlot = Arc<Mutex<Option<Arc<Trace>>>>;

struct TraceBuilder {
    clock: Instant,
    recorder: Arc<FlightRecorder>,
    spans: Vec<SpanRecord>,
    /// Open span ids, innermost last; parallel vec of open Instants.
    open: Vec<u32>,
    open_at: Vec<u64>,
    /// Request identity, when the root is a [`request_span`].
    ctx: Option<RequestCtx>,
    /// Receives the finished trace on root close, when requested.
    slot: Option<TraceSlot>,
}

thread_local! {
    static ACTIVE: RefCell<Option<TraceBuilder>> = const { RefCell::new(None) };
    /// Head-sampling suppression: while `true`, `span()` returns inert
    /// guards so an unsampled request records nothing at all.
    static SUPPRESS: Cell<bool> = const { Cell::new(false) };
}

/// RAII span handle: records duration and (for a root) ships the trace on
/// drop. Inert when tracing is off. Not `Send` — spans belong to the
/// thread that opened them; a worker thread opens its own root span.
pub struct SpanGuard {
    active: bool,
    histogram: Option<Histogram>,
    // Thread-local machinery: keep the guard !Send so drops stay on the
    // opening thread.
    _not_send: std::marker::PhantomData<*const ()>,
}

/// Open a span named `target` under the current trace, or start a new
/// trace rooted at `target` if none is active on this thread. The trace
/// lands in `recorder` when the root closes.
pub fn span(recorder: &Arc<FlightRecorder>, target: &'static str) -> SpanGuard {
    if !tracing_enabled() || SUPPRESS.with(|s| s.get()) {
        return SpanGuard {
            active: false,
            histogram: None,
            _not_send: std::marker::PhantomData,
        };
    }
    ACTIVE.with(|a| {
        let mut slot = a.borrow_mut();
        let b = slot.get_or_insert_with(|| TraceBuilder {
            clock: Instant::now(),
            recorder: recorder.clone(),
            spans: Vec::new(),
            open: Vec::new(),
            open_at: Vec::new(),
            ctx: None,
            slot: None,
        });
        let id = b.spans.len() as u32;
        let parent = b.open.last().copied();
        let start_ns = b.clock.elapsed().as_nanos() as u64;
        b.spans.push(SpanRecord {
            id,
            parent,
            target,
            start_ns,
            dur_ns: 0,
            events: Vec::new(),
        });
        b.open.push(id);
        b.open_at.push(start_ns);
    });
    SpanGuard {
        active: true,
        histogram: None,
        _not_send: std::marker::PhantomData,
    }
}

/// Like [`span`], additionally recording the span's duration into
/// `histogram` when it closes.
pub fn span_timed(
    recorder: &Arc<FlightRecorder>,
    target: &'static str,
    histogram: &Histogram,
) -> SpanGuard {
    let mut g = span(recorder, target);
    if g.active {
        g.histogram = Some(histogram.clone());
    }
    g
}

/// Attach a point event to the innermost open span on this thread.
/// No-op when tracing is off or no span is open.
#[inline]
pub fn event(name: &'static str, value: u64) {
    if !tracing_enabled() {
        return;
    }
    ACTIVE.with(|a| {
        let mut slot = a.borrow_mut();
        if let Some(b) = slot.as_mut() {
            if let Some(&open) = b.open.last() {
                b.spans[open as usize]
                    .events
                    .push(TraceEvent { name, value });
            }
        }
    });
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let finished: Option<(Arc<FlightRecorder>, Trace, Option<TraceSlot>)> = ACTIVE.with(|a| {
            let mut slot = a.borrow_mut();
            let b = slot.as_mut()?;
            let id = b.open.pop()?;
            let opened = b.open_at.pop().unwrap_or(0);
            let dur = b.clock.elapsed().as_nanos() as u64 - opened;
            b.spans[id as usize].dur_ns = dur;
            if let Some(h) = &self.histogram {
                h.record(dur);
            }
            if b.open.is_empty() {
                let b = slot.take().expect("builder present");
                let root = b.spans[0].target;
                let total_ns = b.spans[0].dur_ns;
                Some((
                    b.recorder,
                    Trace {
                        root,
                        total_ns,
                        spans: b.spans,
                        ctx: b.ctx,
                    },
                    b.slot,
                ))
            } else {
                None
            }
        });
        if let Some((recorder, trace, capture)) = finished {
            let t = Arc::new(trace);
            recorder.record_arc(t.clone());
            if let Some(c) = capture {
                *c.lock().unwrap_or_else(|e| e.into_inner()) = Some(t);
            }
        }
    }
}

/// RAII handle for a wire-request root span. Wraps a root [`SpanGuard`]
/// carrying a [`RequestCtx`] — or, when the request lost the
/// head-sampling draw, suppresses span collection on this thread for the
/// request's duration. [`RequestGuard::finish`] returns the finished
/// trace (if one was collected) for slowlog admission.
pub struct RequestGuard {
    guard: Option<SpanGuard>,
    slot: Option<TraceSlot>,
    suppressing: bool,
    _not_send: std::marker::PhantomData<*const ()>,
}

impl RequestGuard {
    /// Close the root span and return the finished trace, if spans were
    /// collected (tracing on, request sampled, and this guard opened the
    /// root rather than nesting under an existing trace).
    pub fn finish(mut self) -> Option<Arc<Trace>> {
        drop(self.guard.take());
        let slot = self.slot.take();
        drop(self); // clears suppression
        slot.and_then(|s| s.lock().unwrap_or_else(|e| e.into_inner()).take())
    }
}

impl Drop for RequestGuard {
    fn drop(&mut self) {
        drop(self.guard.take());
        if self.suppressing {
            SUPPRESS.with(|s| s.set(false));
            self.suppressing = false;
        }
    }
}

/// Open the root span for a wire request, attaching `ctx` to the trace
/// it builds. Head-sampling happens here: an unsampled request gets an
/// inert guard that also suppresses nested spans, so it records nothing.
/// The request's latency is still measured by the caller regardless.
///
/// If a trace is somehow already active on this thread, the span nests
/// under it and no context is attached (the outer request owns the
/// trace).
pub fn request_span(
    recorder: &Arc<FlightRecorder>,
    target: &'static str,
    ctx: RequestCtx,
) -> RequestGuard {
    let inert = |suppressing| RequestGuard {
        guard: None,
        slot: None,
        suppressing,
        _not_send: std::marker::PhantomData,
    };
    if !tracing_enabled() || SUPPRESS.with(|s| s.get()) {
        return inert(false);
    }
    if !crate::context::sampled(ctx.trace_id) {
        SUPPRESS.with(|s| s.set(true));
        return inert(true);
    }
    let g = span(recorder, target);
    let capture: TraceSlot = Arc::new(Mutex::new(None));
    let is_root = ACTIVE.with(|a| {
        let mut slot = a.borrow_mut();
        match slot.as_mut() {
            Some(b) if b.spans.len() == 1 && b.ctx.is_none() => {
                b.ctx = Some(ctx);
                b.slot = Some(capture.clone());
                true
            }
            _ => false,
        }
    });
    RequestGuard {
        guard: Some(g),
        slot: if is_root { Some(capture) } else { None },
        suppressing: false,
        _not_send: std::marker::PhantomData,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level::{set_level, ObsLevel};
    use std::sync::Mutex;

    /// Tests that flip the global level serialize on this.
    static LEVEL_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn nested_spans_build_one_trace_with_parents() {
        let _l = LEVEL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let prev = set_level(ObsLevel::Full);
        let fr = Arc::new(FlightRecorder::new());
        {
            let _root = span(&fr, "outer");
            event("top", 1);
            {
                let _child = span(&fr, "inner");
                event("deep", 2);
            }
        }
        set_level(prev);
        let traces = fr.recent();
        assert_eq!(traces.len(), 1);
        let t = &traces[0];
        assert_eq!(t.root, "outer");
        assert_eq!(t.spans.len(), 2);
        assert_eq!(t.spans[1].parent, Some(0));
        assert_eq!(
            t.spans[0].events,
            vec![TraceEvent {
                name: "top",
                value: 1
            }]
        );
        assert_eq!(
            t.spans[1].events,
            vec![TraceEvent {
                name: "deep",
                value: 2
            }]
        );
        assert!(t.total_ns >= t.spans[1].dur_ns);
    }

    #[test]
    fn spans_are_inert_when_off() {
        let _l = LEVEL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let prev = set_level(ObsLevel::Counters);
        let fr = Arc::new(FlightRecorder::new());
        {
            let _g = span(&fr, "op");
            event("never", 1);
        }
        set_level(prev);
        assert!(fr.is_empty());
    }

    fn ctx(kind: &'static str) -> RequestCtx {
        RequestCtx {
            trace_id: crate::context::TraceId::mint(),
            tenant: "t0".to_string(),
            session: 7,
            kind,
        }
    }

    #[test]
    fn request_span_attaches_ctx_and_captures_the_trace() {
        let _l = LEVEL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let prev = set_level(ObsLevel::Full);
        let fr = Arc::new(FlightRecorder::new());
        let c = ctx("assert-ind");
        let g = request_span(&fr, "server.request", c.clone());
        {
            let _child = span(&fr, "kb.assert");
        }
        let t = g.finish().expect("sampled request captures its trace");
        set_level(prev);
        assert_eq!(t.root, "server.request");
        assert_eq!(t.ctx.as_ref(), Some(&c));
        assert_eq!(t.spans.len(), 2);
        assert_eq!(t.spans[1].target, "kb.assert");
        assert_eq!(t.spans[1].parent, Some(0));
        // The recorder got the same trace.
        let recorded = fr.recent();
        assert_eq!(recorded.len(), 1);
        assert!(Arc::ptr_eq(&recorded[0], &t));
    }

    #[test]
    fn unsampled_request_suppresses_all_spans() {
        let _l = LEVEL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let prev = set_level(ObsLevel::Full);
        let prev_rate = crate::context::set_sample_rate(0.0);
        let fr = Arc::new(FlightRecorder::new());
        let g = request_span(&fr, "server.request", ctx("retrieve"));
        {
            let _child = span(&fr, "query.retrieve");
        }
        assert!(g.finish().is_none());
        crate::context::set_sample_rate(prev_rate);
        // Suppression must be cleared once the guard is gone.
        {
            let _g = span(&fr, "after");
        }
        set_level(prev);
        assert_eq!(fr.len(), 1, "only the post-request span recorded");
        assert_eq!(fr.recent()[0].root, "after");
    }

    #[test]
    fn span_timed_feeds_the_histogram_at_full() {
        let _l = LEVEL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let prev = set_level(ObsLevel::Full);
        let r = crate::Registry::new();
        let h = r.duration_histogram("span_test_ns", "").unwrap();
        let fr = Arc::new(FlightRecorder::new());
        {
            let _g = span_timed(&fr, "op", &h);
        }
        set_level(prev);
        assert_eq!(h.count(), 1);
    }
}
