//! The span layer: RAII guards over a thread-local trace builder. A root
//! span opening starts a trace; the root closing hands the finished
//! trace to the operation's [`FlightRecorder`].
//!
//! Spans cost nothing below [`crate::ObsLevel::Full`]: `span()` does one
//! relaxed atomic load and returns an inert guard.

use crate::flight::{FlightRecorder, SpanRecord, Trace, TraceEvent};
use crate::level::tracing_enabled;
use crate::metrics::Histogram;
use std::cell::RefCell;
use std::sync::Arc;
use std::time::Instant;

struct TraceBuilder {
    clock: Instant,
    recorder: Arc<FlightRecorder>,
    spans: Vec<SpanRecord>,
    /// Open span ids, innermost last; parallel vec of open Instants.
    open: Vec<u32>,
    open_at: Vec<u64>,
}

thread_local! {
    static ACTIVE: RefCell<Option<TraceBuilder>> = const { RefCell::new(None) };
}

/// RAII span handle: records duration and (for a root) ships the trace on
/// drop. Inert when tracing is off. Not `Send` — spans belong to the
/// thread that opened them; a worker thread opens its own root span.
pub struct SpanGuard {
    active: bool,
    histogram: Option<Histogram>,
    // Thread-local machinery: keep the guard !Send so drops stay on the
    // opening thread.
    _not_send: std::marker::PhantomData<*const ()>,
}

/// Open a span named `target` under the current trace, or start a new
/// trace rooted at `target` if none is active on this thread. The trace
/// lands in `recorder` when the root closes.
pub fn span(recorder: &Arc<FlightRecorder>, target: &'static str) -> SpanGuard {
    if !tracing_enabled() {
        return SpanGuard {
            active: false,
            histogram: None,
            _not_send: std::marker::PhantomData,
        };
    }
    ACTIVE.with(|a| {
        let mut slot = a.borrow_mut();
        let b = slot.get_or_insert_with(|| TraceBuilder {
            clock: Instant::now(),
            recorder: recorder.clone(),
            spans: Vec::new(),
            open: Vec::new(),
            open_at: Vec::new(),
        });
        let id = b.spans.len() as u32;
        let parent = b.open.last().copied();
        let start_ns = b.clock.elapsed().as_nanos() as u64;
        b.spans.push(SpanRecord {
            id,
            parent,
            target,
            start_ns,
            dur_ns: 0,
            events: Vec::new(),
        });
        b.open.push(id);
        b.open_at.push(start_ns);
    });
    SpanGuard {
        active: true,
        histogram: None,
        _not_send: std::marker::PhantomData,
    }
}

/// Like [`span`], additionally recording the span's duration into
/// `histogram` when it closes.
pub fn span_timed(
    recorder: &Arc<FlightRecorder>,
    target: &'static str,
    histogram: &Histogram,
) -> SpanGuard {
    let mut g = span(recorder, target);
    if g.active {
        g.histogram = Some(histogram.clone());
    }
    g
}

/// Attach a point event to the innermost open span on this thread.
/// No-op when tracing is off or no span is open.
#[inline]
pub fn event(name: &'static str, value: u64) {
    if !tracing_enabled() {
        return;
    }
    ACTIVE.with(|a| {
        let mut slot = a.borrow_mut();
        if let Some(b) = slot.as_mut() {
            if let Some(&open) = b.open.last() {
                b.spans[open as usize]
                    .events
                    .push(TraceEvent { name, value });
            }
        }
    });
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let finished: Option<(Arc<FlightRecorder>, Trace)> = ACTIVE.with(|a| {
            let mut slot = a.borrow_mut();
            let b = slot.as_mut()?;
            let id = b.open.pop()?;
            let opened = b.open_at.pop().unwrap_or(0);
            let dur = b.clock.elapsed().as_nanos() as u64 - opened;
            b.spans[id as usize].dur_ns = dur;
            if let Some(h) = &self.histogram {
                h.record(dur);
            }
            if b.open.is_empty() {
                let b = slot.take().expect("builder present");
                let root = b.spans[0].target;
                let total_ns = b.spans[0].dur_ns;
                Some((
                    b.recorder,
                    Trace {
                        root,
                        total_ns,
                        spans: b.spans,
                    },
                ))
            } else {
                None
            }
        });
        if let Some((recorder, trace)) = finished {
            recorder.record(trace);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level::{set_level, ObsLevel};
    use std::sync::Mutex;

    /// Tests that flip the global level serialize on this.
    static LEVEL_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn nested_spans_build_one_trace_with_parents() {
        let _l = LEVEL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let prev = set_level(ObsLevel::Full);
        let fr = Arc::new(FlightRecorder::new());
        {
            let _root = span(&fr, "outer");
            event("top", 1);
            {
                let _child = span(&fr, "inner");
                event("deep", 2);
            }
        }
        set_level(prev);
        let traces = fr.recent();
        assert_eq!(traces.len(), 1);
        let t = &traces[0];
        assert_eq!(t.root, "outer");
        assert_eq!(t.spans.len(), 2);
        assert_eq!(t.spans[1].parent, Some(0));
        assert_eq!(
            t.spans[0].events,
            vec![TraceEvent {
                name: "top",
                value: 1
            }]
        );
        assert_eq!(
            t.spans[1].events,
            vec![TraceEvent {
                name: "deep",
                value: 2
            }]
        );
        assert!(t.total_ns >= t.spans[1].dur_ns);
    }

    #[test]
    fn spans_are_inert_when_off() {
        let _l = LEVEL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let prev = set_level(ObsLevel::Counters);
        let fr = Arc::new(FlightRecorder::new());
        {
            let _g = span(&fr, "op");
            event("never", 1);
        }
        set_level(prev);
        assert!(fr.is_empty());
    }

    #[test]
    fn span_timed_feeds_the_histogram_at_full() {
        let _l = LEVEL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let prev = set_level(ObsLevel::Full);
        let r = crate::Registry::new();
        let h = r.duration_histogram("span_test_ns", "").unwrap();
        let fr = Arc::new(FlightRecorder::new());
        {
            let _g = span_timed(&fr, "op", &h);
        }
        set_level(prev);
        assert_eq!(h.count(), 1);
    }
}
