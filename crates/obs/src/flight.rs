//! The flight recorder: a fixed-capacity ring buffer of completed
//! operation traces, retaining the N most recent plus the K slowest.
//!
//! Recorders created with [`FlightRecorder::new_shared`] are enrolled in
//! a process-global roll-up (mirroring the metrics registry roll-up) so
//! `--trace-out` dumps can collect every trace in the process.

use crate::context::RequestCtx;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex, Weak};

/// A point event attached to a span (e.g. `rule_fired`, with the rule id
/// as the value).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Static event name.
    pub name: &'static str,
    /// Event payload (a count, an id — whatever the site records).
    pub value: u64,
}

/// One completed span inside a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Id unique within the trace (root is 0).
    pub id: u32,
    /// Parent span id, `None` for the root.
    pub parent: Option<u32>,
    /// Static target, e.g. `"kb.assert"` or `"propagate.round"`.
    pub target: &'static str,
    /// Nanoseconds from trace start to span open (monotonic clock).
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
    /// Events recorded while this span was the innermost open one.
    pub events: Vec<TraceEvent>,
}

/// One completed top-level operation: the root span and everything that
/// nested under it on the same thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// The root span's target — the operation name `(obs-trace <op>)`
    /// matches against.
    pub root: &'static str,
    /// Total duration of the root span, nanoseconds.
    pub total_ns: u64,
    /// All spans, in completion order; span 0 is the root.
    pub spans: Vec<SpanRecord>,
    /// The wire-request identity this trace roots at, when the root span
    /// was opened by the server front ([`crate::trace::request_span`]);
    /// `None` for traces rooted inside the process (CLI, worker shards).
    pub ctx: Option<RequestCtx>,
}

impl Trace {
    /// Render the trace as an indented tree, one line per span, with
    /// microsecond timings and inline events.
    pub fn render(&self) -> String {
        let mut out = String::new();
        // Children of each span, preserving open order (start_ns).
        let mut order: Vec<usize> = (0..self.spans.len()).collect();
        order.sort_by_key(|&i| (self.spans[i].start_ns, self.spans[i].id));
        fn walk(t: &Trace, order: &[usize], parent: Option<u32>, depth: usize, out: &mut String) {
            for &i in order {
                let s = &t.spans[i];
                if s.parent != parent {
                    continue;
                }
                out.push_str(&"  ".repeat(depth));
                out.push_str(&format!(
                    "{} +{:.1}µs [{:.1}µs]",
                    s.target,
                    s.start_ns as f64 / 1_000.0,
                    s.dur_ns as f64 / 1_000.0
                ));
                for e in &s.events {
                    out.push_str(&format!(" {}={}", e.name, e.value));
                }
                out.push('\n');
                walk(t, order, Some(s.id), depth + 1, out);
            }
        }
        walk(self, &order, None, 0, &mut out);
        out
    }
}

struct FlightInner {
    recent: VecDeque<Arc<Trace>>,
    /// Kept sorted slowest-first, truncated to `slow_cap`.
    slowest: Vec<Arc<Trace>>,
}

/// Fixed-capacity recorder of completed traces. Thread-safe; a recording
/// is one short mutex hold, and nothing is recorded below
/// [`crate::ObsLevel::Full`] (the span layer never builds a trace then).
pub struct FlightRecorder {
    recent_cap: usize,
    slow_cap: usize,
    /// Enrolled recorders move their retained traces to the process
    /// graveyard when dropped, so `--trace-out` survives KB teardown.
    bury_on_drop: bool,
    inner: Mutex<FlightInner>,
}

/// Default capacity of the most-recent ring.
pub const DEFAULT_RECENT_CAP: usize = 64;
/// Default capacity of the slowest-traces list.
pub const DEFAULT_SLOW_CAP: usize = 16;

/// Every live recorder created via [`FlightRecorder::new_shared`].
static RECORDERS: Mutex<Vec<Weak<FlightRecorder>>> = Mutex::new(Vec::new());

/// Bound on traces retained from dropped shared recorders.
const GRAVEYARD_CAP: usize = 256;

/// Final traces of dropped shared recorders, oldest evicted first.
/// Without this, a `--trace-out` dump taken after the knowledge bases
/// it profiled were dropped would be empty (mirrors the metrics
/// registry's graveyard in [`crate::expo`]).
fn graveyard() -> &'static Mutex<VecDeque<Arc<Trace>>> {
    static G: std::sync::OnceLock<Mutex<VecDeque<Arc<Trace>>>> = std::sync::OnceLock::new();
    G.get_or_init(|| Mutex::new(VecDeque::new()))
}

/// Every trace currently retained by any enrolled recorder (recent +
/// slowest, deduplicated) plus the buried traces of dropped shared
/// recorders, in no particular order.
pub fn all_traces() -> Vec<Arc<Trace>> {
    let mut recorders = RECORDERS.lock().unwrap_or_else(|e| e.into_inner());
    recorders.retain(|w| w.strong_count() > 0);
    let live: Vec<Arc<FlightRecorder>> = recorders.iter().filter_map(Weak::upgrade).collect();
    drop(recorders);
    let mut out: Vec<Arc<Trace>> = Vec::new();
    for r in live {
        let inner = r.lock();
        for t in inner.recent.iter().chain(inner.slowest.iter()) {
            if !out.iter().any(|o| Arc::ptr_eq(o, t)) {
                out.push(t.clone());
            }
        }
    }
    let buried = graveyard().lock().unwrap_or_else(|e| e.into_inner());
    for t in buried.iter() {
        if !out.iter().any(|o| Arc::ptr_eq(o, t)) {
            out.push(t.clone());
        }
    }
    out
}

/// Find a retained trace by its request trace id (any enrolled
/// recorder; 32-digit lowercase hex as rendered by
/// [`crate::TraceId`]'s `Display`).
pub fn find_trace(id_hex: &str) -> Option<Arc<Trace>> {
    all_traces()
        .into_iter()
        .find(|t| matches!(&t.ctx, Some(c) if c.trace_id.to_string() == id_hex))
}

impl FlightRecorder {
    /// A recorder with the default capacities (64 recent, 16 slowest).
    pub fn new() -> FlightRecorder {
        FlightRecorder::with_capacity(DEFAULT_RECENT_CAP, DEFAULT_SLOW_CAP)
    }

    /// A default-capacity recorder enrolled in the process-global
    /// roll-up read by [`all_traces`]. Enrollment holds only a [`Weak`];
    /// dropping the last `Arc` unenrolls it and buries its retained
    /// traces in the graveyard [`all_traces`] also reads.
    pub fn new_shared() -> Arc<FlightRecorder> {
        let mut fr = FlightRecorder::new();
        fr.bury_on_drop = true;
        let r = Arc::new(fr);
        RECORDERS
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Arc::downgrade(&r));
        r
    }

    /// A recorder retaining the `recent_cap` most recent and `slow_cap`
    /// slowest traces.
    pub fn with_capacity(recent_cap: usize, slow_cap: usize) -> FlightRecorder {
        FlightRecorder {
            recent_cap: recent_cap.max(1),
            slow_cap,
            bury_on_drop: false,
            inner: Mutex::new(FlightInner {
                recent: VecDeque::new(),
                slowest: Vec::new(),
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FlightInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Record a completed trace (called by the span layer when a root
    /// span closes).
    pub fn record(&self, trace: Trace) {
        self.record_arc(Arc::new(trace));
    }

    /// Like [`FlightRecorder::record`] for a trace the caller also keeps
    /// a handle to (the request layer shares the `Arc` with the slowlog).
    pub fn record_arc(&self, t: Arc<Trace>) {
        let mut inner = self.lock();
        if inner.recent.len() == self.recent_cap {
            inner.recent.pop_front();
        }
        inner.recent.push_back(t.clone());
        if self.slow_cap > 0 {
            let pos = inner.slowest.partition_point(|s| s.total_ns >= t.total_ns);
            if pos < self.slow_cap {
                inner.slowest.insert(pos, t);
                inner.slowest.truncate(self.slow_cap);
            }
        }
    }

    /// The most recent traces, oldest first.
    pub fn recent(&self) -> Vec<Arc<Trace>> {
        self.lock().recent.iter().cloned().collect()
    }

    /// The slowest traces seen since the last clear, slowest first.
    pub fn slowest(&self) -> Vec<Arc<Trace>> {
        self.lock().slowest.clone()
    }

    /// Every trace currently retained (recent + slowest, deduplicated),
    /// slowest first — what `GET /trace?tenant=…` exports.
    pub fn traces(&self) -> Vec<Arc<Trace>> {
        let inner = self.lock();
        let mut out: Vec<Arc<Trace>> = Vec::new();
        for t in inner.slowest.iter().chain(inner.recent.iter()) {
            if !out.iter().any(|o| Arc::ptr_eq(o, t)) {
                out.push(t.clone());
            }
        }
        drop(inner);
        out.sort_by_key(|t| std::cmp::Reverse(t.total_ns));
        out
    }

    /// Traces (recent + slowest, deduplicated) whose root target equals
    /// `op`, slowest first.
    pub fn traces_for(&self, op: &str) -> Vec<Arc<Trace>> {
        let inner = self.lock();
        let mut out: Vec<Arc<Trace>> = Vec::new();
        for t in inner.slowest.iter().chain(inner.recent.iter()) {
            if t.root == op && !out.iter().any(|o| Arc::ptr_eq(o, t)) {
                out.push(t.clone());
            }
        }
        drop(inner);
        out.sort_by_key(|t| std::cmp::Reverse(t.total_ns));
        out
    }

    /// Every distinct root target currently held, with trace counts.
    pub fn ops(&self) -> Vec<(&'static str, usize)> {
        let inner = self.lock();
        let mut out: Vec<(&'static str, usize)> = Vec::new();
        let mut seen: Vec<*const Trace> = Vec::new();
        for t in inner.recent.iter().chain(inner.slowest.iter()) {
            let p = Arc::as_ptr(t);
            if seen.contains(&p) {
                continue;
            }
            seen.push(p);
            match out.iter_mut().find(|(op, _)| *op == t.root) {
                Some((_, n)) => *n += 1,
                None => out.push((t.root, 1)),
            }
        }
        out.sort_by_key(|&(op, _)| op);
        out
    }

    /// Number of traces in the recent ring.
    pub fn len(&self) -> usize {
        self.lock().recent.len()
    }

    /// True when nothing has been recorded since the last clear.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every retained trace.
    pub fn clear(&self) {
        let mut inner = self.lock();
        inner.recent.clear();
        inner.slowest.clear();
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new()
    }
}

impl Drop for FlightRecorder {
    fn drop(&mut self) {
        if !self.bury_on_drop {
            return;
        }
        let inner = self.inner.get_mut().unwrap_or_else(|e| e.into_inner());
        let mut g = graveyard().lock().unwrap_or_else(|e| e.into_inner());
        for t in inner.slowest.drain(..).chain(inner.recent.drain(..)) {
            if !g.iter().any(|o| Arc::ptr_eq(o, &t)) {
                g.push_back(t);
            }
        }
        while g.len() > GRAVEYARD_CAP {
            g.pop_front();
        }
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.lock();
        f.debug_struct("FlightRecorder")
            .field("recent", &inner.recent.len())
            .field("slowest", &inner.slowest.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(root: &'static str, total_ns: u64) -> Trace {
        Trace {
            root,
            total_ns,
            spans: vec![SpanRecord {
                id: 0,
                parent: None,
                target: root,
                start_ns: 0,
                dur_ns: total_ns,
                events: Vec::new(),
            }],
            ctx: None,
        }
    }

    #[test]
    fn ring_evicts_oldest_but_keeps_slowest() {
        let fr = FlightRecorder::with_capacity(2, 2);
        fr.record(trace("op", 1_000_000)); // slow, will fall out of recent
        fr.record(trace("op", 10));
        fr.record(trace("op", 20));
        assert_eq!(fr.len(), 2);
        assert_eq!(fr.recent()[0].total_ns, 10);
        assert_eq!(fr.slowest()[0].total_ns, 1_000_000);
        let for_op = fr.traces_for("op");
        assert_eq!(for_op.len(), 3, "slow trace retained past ring eviction");
    }

    #[test]
    fn shared_recorder_traces_survive_its_drop() {
        let fr = FlightRecorder::new_shared();
        fr.record(trace("graveyard.probe", 42));
        drop(fr);
        let buried = all_traces()
            .into_iter()
            .find(|t| t.root == "graveyard.probe")
            .expect("trace buried on recorder drop");
        assert_eq!(buried.total_ns, 42);
    }

    #[test]
    fn render_is_an_indented_tree() {
        let t = Trace {
            root: "kb.assert",
            total_ns: 5_000,
            spans: vec![
                SpanRecord {
                    id: 0,
                    parent: None,
                    target: "kb.assert",
                    start_ns: 0,
                    dur_ns: 5_000,
                    events: vec![],
                },
                SpanRecord {
                    id: 1,
                    parent: Some(0),
                    target: "propagate.round",
                    start_ns: 1_000,
                    dur_ns: 2_000,
                    events: vec![TraceEvent {
                        name: "rule_fired",
                        value: 3,
                    }],
                },
            ],
            ctx: None,
        };
        let text = t.render();
        assert!(text.starts_with("kb.assert"));
        assert!(text.contains("  propagate.round"));
        assert!(text.contains("rule_fired=3"));
    }
}
