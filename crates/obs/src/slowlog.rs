//! The server-wide slow-op log: a bounded ring of the K slowest wire
//! requests seen since startup (or the last clear), each retaining its
//! request identity, duration, and — when the request was sampled — the
//! full span tree.
//!
//! Process-global (like the metrics roll-up in [`crate::expo`]) so the
//! server's `GET /slowlog` and the REPL's `(obs-slowlog [n])` read the
//! same structure. Admission is *always-keep-slowest*: even a request
//! that lost the head-sampling draw enters on duration alone (with
//! `trace: None`), so sampling never hides a latency outlier.

use crate::context::RequestCtx;
use crate::expo::json_string;
use crate::flight::Trace;
use std::sync::{Arc, Mutex, OnceLock};

/// Default number of slowest requests retained.
pub const DEFAULT_SLOWLOG_CAP: usize = 32;

/// One slow request: identity, measured wall time, and the span tree if
/// the request was sampled.
#[derive(Debug, Clone)]
pub struct SlowOp {
    /// The request's wire identity.
    pub ctx: RequestCtx,
    /// Wall time measured at the server front, nanoseconds. (For sampled
    /// requests this can differ slightly from `trace.total_ns`, which
    /// times only the root span.)
    pub dur_ns: u64,
    /// The full span tree; `None` when the request lost the sampling
    /// draw or tracing was below [`crate::ObsLevel::Full`].
    pub trace: Option<Arc<Trace>>,
}

impl SlowOp {
    /// The largest `dirty_cone` event recorded anywhere in the span
    /// tree — the size of the analysis cone a mutation dirtied — or
    /// `None` for reads and untraced requests.
    pub fn dirty_cone(&self) -> Option<u64> {
        let t = self.trace.as_ref()?;
        t.spans
            .iter()
            .flat_map(|s| s.events.iter())
            .filter(|e| e.name == "dirty_cone")
            .map(|e| e.value)
            .max()
    }

    /// Every event in the span tree, summed by name, sorted by name.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        let mut out: Vec<(&'static str, u64)> = Vec::new();
        if let Some(t) = &self.trace {
            for e in t.spans.iter().flat_map(|s| s.events.iter()) {
                match out.iter_mut().find(|(n, _)| *n == e.name) {
                    Some((_, v)) => *v += e.value,
                    None => out.push((e.name, e.value)),
                }
            }
        }
        out.sort_by_key(|&(n, _)| n);
        out
    }

    /// One strict-JSON object for this entry.
    pub fn render_json(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "{{\"trace_id\":{},\"tenant\":{},\"session\":{},\"kind\":{},\"dur_ns\":{},\"sampled\":{}",
            json_string(&self.ctx.trace_id.to_string()),
            json_string(&self.ctx.tenant),
            self.ctx.session,
            json_string(self.ctx.kind),
            self.dur_ns,
            self.trace.is_some(),
        ));
        match self.dirty_cone() {
            Some(n) => s.push_str(&format!(",\"dirty_cone\":{n}")),
            None => s.push_str(",\"dirty_cone\":null"),
        }
        s.push_str(",\"counters\":{");
        for (i, (n, v)) in self.counters().iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("{}:{}", json_string(n), v));
        }
        s.push('}');
        match &self.trace {
            Some(t) => {
                s.push_str(&format!(
                    ",\"root\":{},\"spans\":{},\"tree\":{}",
                    json_string(t.root),
                    t.spans.len(),
                    json_string(&t.render())
                ));
            }
            None => s.push_str(",\"root\":null,\"spans\":0,\"tree\":null"),
        }
        s.push('}');
        s
    }
}

/// A bounded, duration-sorted ring of [`SlowOp`]s. Thread-safe;
/// admission is one short mutex hold.
pub struct SlowLog {
    cap: usize,
    inner: Mutex<Vec<SlowOp>>,
}

impl SlowLog {
    /// A slowlog retaining the `cap` slowest requests.
    pub fn with_capacity(cap: usize) -> SlowLog {
        SlowLog {
            cap: cap.max(1),
            inner: Mutex::new(Vec::new()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<SlowOp>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Admit a completed request. Kept only if it ranks among the `cap`
    /// slowest seen so far.
    pub fn record(&self, ctx: RequestCtx, dur_ns: u64, trace: Option<Arc<Trace>>) {
        let mut inner = self.lock();
        let pos = inner.partition_point(|s| s.dur_ns >= dur_ns);
        if pos < self.cap {
            inner.insert(pos, SlowOp { ctx, dur_ns, trace });
            inner.truncate(self.cap);
        }
    }

    /// The up-to-`n` slowest entries, slowest first.
    pub fn entries(&self, n: usize) -> Vec<SlowOp> {
        let inner = self.lock();
        inner.iter().take(n).cloned().collect()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// True when no request has been admitted since the last clear.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every retained entry.
    pub fn clear(&self) {
        self.lock().clear();
    }

    /// The up-to-`n` slowest entries as one strict-JSON document:
    /// `{"slowlog":[…]}`, slowest first.
    pub fn render_json(&self, n: usize) -> String {
        let entries = self.entries(n);
        let mut s = String::from("{\"slowlog\":[");
        for (i, e) in entries.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&e.render_json());
        }
        s.push_str("]}");
        s
    }

    /// The up-to-`n` slowest entries as indented text for the REPL.
    pub fn render_text(&self, n: usize) -> String {
        let entries = self.entries(n);
        if entries.is_empty() {
            return "slowlog: empty (no wire requests recorded)\n".to_string();
        }
        let mut s = String::new();
        for (i, e) in entries.iter().enumerate() {
            s.push_str(&format!(
                "{}. {:.1}µs {} tenant={} session={} trace={}{}",
                i + 1,
                e.dur_ns as f64 / 1_000.0,
                e.ctx.kind,
                e.ctx.tenant,
                e.ctx.session,
                e.ctx.trace_id,
                if e.trace.is_some() {
                    ""
                } else {
                    " (unsampled)"
                },
            ));
            if let Some(cone) = e.dirty_cone() {
                s.push_str(&format!(" dirty_cone={cone}"));
            }
            s.push('\n');
            if let Some(t) = &e.trace {
                for line in t.render().lines() {
                    s.push_str("   ");
                    s.push_str(line);
                    s.push('\n');
                }
            }
        }
        s
    }
}

/// The process-global slowlog ([`DEFAULT_SLOWLOG_CAP`] entries) shared
/// by the server endpoints and the REPL.
pub fn global_slowlog() -> &'static SlowLog {
    static GLOBAL: OnceLock<SlowLog> = OnceLock::new();
    GLOBAL.get_or_init(|| SlowLog::with_capacity(DEFAULT_SLOWLOG_CAP))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::TraceId;
    use crate::flight::{SpanRecord, TraceEvent};

    fn ctx(kind: &'static str, tenant: &str) -> RequestCtx {
        RequestCtx {
            trace_id: TraceId::mint(),
            tenant: tenant.to_string(),
            session: 1,
            kind,
        }
    }

    fn traced(ctx: &RequestCtx, dur: u64, cone: Option<u64>) -> Arc<Trace> {
        let mut events = Vec::new();
        if let Some(c) = cone {
            events.push(TraceEvent {
                name: "dirty_cone",
                value: c,
            });
        }
        Arc::new(Trace {
            root: "server.request",
            total_ns: dur,
            spans: vec![SpanRecord {
                id: 0,
                parent: None,
                target: "server.request",
                start_ns: 0,
                dur_ns: dur,
                events,
            }],
            ctx: Some(ctx.clone()),
        })
    }

    #[test]
    fn keeps_only_the_slowest_sorted() {
        let log = SlowLog::with_capacity(2);
        for (kind, dur) in [("a", 10u64), ("b", 30), ("c", 20)] {
            let c = ctx(Box::leak(kind.to_string().into_boxed_str()), "t");
            log.record(c, dur, None);
        }
        let e = log.entries(10);
        assert_eq!(e.len(), 2);
        assert_eq!(e[0].dur_ns, 30);
        assert_eq!(e[1].dur_ns, 20);
    }

    #[test]
    fn unsampled_entries_still_admitted() {
        let log = SlowLog::with_capacity(4);
        log.record(ctx("retrieve", "t0"), 99, None);
        let json = log.render_json(4);
        assert!(json.contains("\"sampled\":false"));
        assert!(json.contains("\"tree\":null"));
        // Strict-JSON parseable.
        crate::Json::parse(&json).expect("slowlog JSON is strict-valid");
    }

    #[test]
    fn dirty_cone_and_counters_extracted_from_events() {
        let log = SlowLog::with_capacity(4);
        let c = ctx("assert-ind", "t1");
        let t = traced(&c, 500, Some(7));
        log.record(c, 500, Some(t));
        let e = &log.entries(1)[0];
        assert_eq!(e.dirty_cone(), Some(7));
        assert_eq!(e.counters(), vec![("dirty_cone", 7)]);
        let json = log.render_json(1);
        assert!(json.contains("\"dirty_cone\":7"));
        assert!(json.contains("\"root\":\"server.request\""));
        crate::Json::parse(&json).expect("slowlog JSON is strict-valid");
        let text = log.render_text(1);
        assert!(text.contains("tenant=t1"));
        assert!(text.contains("dirty_cone=7"));
    }
}
