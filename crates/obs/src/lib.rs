//! classic-obs: the observability core of the CLASSIC reproduction.
//!
//! Zero external dependencies, by design: this crate sits *below*
//! `classic-core` in the dependency graph so every layer — subsumption
//! kernel, knowledge base, query answering, durable store — can
//! instrument itself, and the workspace still builds offline.
//!
//! Three cooperating pieces:
//!
//! - **[`ObsLevel`]** — one global `AtomicU8`. Every probe site checks it
//!   with a single relaxed load; at [`ObsLevel::Off`] that load is the
//!   *entire* cost of the instrumentation (experiment E13 pins this at
//!   ≤ 3% on the E9 classification workload).
//! - **[`Registry`]** — named counters, gauges, and log2-bucketed
//!   histograms. Instantiable (each `Kb` owns one, so tests never share
//!   counts) and enrolled in a process-global roll-up for `--metrics`
//!   dumps. Names are validated at registration ([`validate_name`]):
//!   duplicates and anything outside `[a-z0-9_]` are rejected with a
//!   positioned [`ObsError`], so exposition can never emit colliding
//!   series. Rendered as Prometheus text or JSON ([`expo`]).
//! - **[`span`] / [`event`] / [`FlightRecorder`]** — RAII spans with
//!   parent/child ids and monotonic nanosecond timings, assembled into
//!   per-operation traces; a fixed-capacity ring buffer retains the most
//!   recent and the slowest traces for `(obs-trace <op>)`-style
//!   postmortems.
//!
//! ```
//! use classic_obs::{Registry, FlightRecorder, ObsLevel};
//! use std::sync::Arc;
//!
//! let registry = Registry::new();
//! let tests = registry.counter("demo_subsumption_tests_total",
//!                              "structural subsumption tests run").unwrap();
//! tests.bump(); // relaxed add at the default level (Counters)
//! assert_eq!(tests.get(), 1);
//! assert!(registry.render_prometheus().contains("demo_subsumption_tests_total 1"));
//! ```

#![deny(missing_docs)]

pub mod chrome;
pub mod context;
pub mod expo;
pub mod flight;
pub mod json;
pub mod level;
pub mod metrics;
pub mod slowlog;
pub mod trace;

pub use chrome::render_chrome_trace;
pub use context::{
    next_session_id, sample_rate, sampled, set_sample_rate, RequestCtx, TraceId, TraceIdError,
    TraceIdErrorKind, MAX_TRACE_ID_LEN,
};
pub use expo::{
    json_string, render_all_json, render_all_prometheus, render_all_prometheus_exemplars,
    render_json, render_prometheus, render_prometheus_exemplars, render_prometheus_labeled,
    snapshot_all, Exemplar, ExemplarStore,
};
pub use flight::{all_traces, find_trace, FlightRecorder, SpanRecord, Trace, TraceEvent};
pub use json::{Json, JsonError};
pub use level::{counters_enabled, level, set_level, tracing_enabled, ObsLevel};
pub use metrics::{
    bucket_of, validate_name, Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot,
    ObsError, ObsErrorKind, Registry, HISTOGRAM_BUCKETS,
};
pub use slowlog::{global_slowlog, SlowLog, SlowOp, DEFAULT_SLOWLOG_CAP};
pub use trace::{event, request_span, span, span_timed, RequestGuard, SpanGuard};
