//! A minimal JSON value and recursive-descent parser.
//!
//! The workspace is dependency-free by policy, and JSON appears on both
//! sides of it: the server's wire replies and metrics dumps on the
//! *writing* side (`Outcome::render_json`, [`crate::render_json`]), and
//! bulk-ingest input files plus protocol round-trip tests on the
//! *reading* side. It lives here, at the bottom of the dependency
//! graph, so `classic-ingest` and `classic-server` share one parser.
//! This is a strict subset parser: UTF-8 text, no comments, no trailing
//! commas, numbers as `f64` (every number the server emits is a count
//! that fits exactly).
//!
//! Panic-safety audit: this module contains no `unwrap`/`expect`
//! reachable from wire input — every parse failure is an `Err` with an
//! offset, invalid `\u` escapes degrade to U+FFFD, and the remaining
//! unwraps live under `#[cfg(test)]`.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; `BTreeMap` for deterministic iteration.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parse one JSON document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut p = P { bytes, ix: 0 };
        p.ws();
        let v = p.value()?;
        p.ws();
        if p.ix != bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    /// Object field access: `v.get("type")`.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// A positioned JSON parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

struct P<'a> {
    bytes: &'a [u8],
    ix: usize,
}

impl P<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            at: self.ix,
            message: msg.to_owned(),
        }
    }

    fn ws(&mut self) {
        while matches!(self.bytes.get(self.ix), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.ix += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.bytes.get(self.ix) == Some(&b) {
            self.ix += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.ix..].starts_with(word.as_bytes()) {
            self.ix += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.bytes.get(self.ix) {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut out = Vec::new();
        self.ws();
        if self.bytes.get(self.ix) == Some(&b']') {
            self.ix += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            self.ws();
            out.push(self.value()?);
            self.ws();
            match self.bytes.get(self.ix) {
                Some(b',') => self.ix += 1,
                Some(b']') => {
                    self.ix += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut out = BTreeMap::new();
        self.ws();
        if self.bytes.get(self.ix) == Some(&b'}') {
            self.ix += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            let val = self.value()?;
            out.insert(key, val);
            self.ws();
            match self.bytes.get(self.ix) {
                Some(b',') => self.ix += 1,
                Some(b'}') => {
                    self.ix += 1;
                    return Ok(Json::Obj(out));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.ix) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.ix += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.ix += 1;
                    match self.bytes.get(self.ix) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.ix + 1..self.ix + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ASCII \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are not emitted by our writers;
                            // map unpaired ones to the replacement char.
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            self.ix += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.ix += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.ix..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(c);
                    self.ix += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.ix;
        if self.bytes.get(self.ix) == Some(&b'-') {
            self.ix += 1;
        }
        while matches!(
            self.bytes.get(self.ix),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.ix += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.ix])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_outcome_shapes() {
        let v = Json::parse(r#"{"type":"asserted","steps":3,"fills":0}"#).unwrap();
        assert_eq!(v.get("type").unwrap().as_str(), Some("asserted"));
        assert_eq!(v.get("steps").unwrap().as_num(), Some(3.0));
    }

    #[test]
    fn strings_unescape() {
        let v = Json::parse(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn arrays_and_nesting() {
        let v = Json::parse(r#"{"names":["a","b"],"inner":{"x":[1,2,3]}}"#).unwrap();
        assert_eq!(v.get("names").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(
            v.get("inner").unwrap().get("x").unwrap().as_arr().unwrap()[2].as_num(),
            Some(3.0)
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} extra").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn round_trips_obs_escaper() {
        let nasty = "line\nbreak \"quoted\" back\\slash \t tab";
        let rendered = crate::json_string(nasty);
        assert_eq!(Json::parse(&rendered).unwrap().as_str(), Some(nasty));
    }
}
