//! Exposition: Prometheus text format and JSON, over one registry or the
//! process-global roll-up of every registry created so far. Also the
//! OpenMetrics exemplar store ([`ExemplarStore`]) that attaches recent
//! trace ids to histogram buckets, and the labeled renderer the server
//! uses for per-tenant sections of `/metrics`.

use crate::metrics::{HistogramSnapshot, MetricsSnapshot, Registry, HISTOGRAM_BUCKETS};
use std::sync::{Arc, Mutex, OnceLock, Weak};

fn global() -> &'static Mutex<Vec<Weak<Registry>>> {
    static G: OnceLock<Mutex<Vec<Weak<Registry>>>> = OnceLock::new();
    G.get_or_init(|| Mutex::new(Vec::new()))
}

/// Enroll a registry in the process-global roll-up (called by
/// [`Registry::new`]). Holds only a `Weak`, so dropped registries fall
/// out of the live list (their final state moves to the graveyard).
pub(crate) fn enroll(r: &Arc<Registry>) {
    let mut g = global().lock().unwrap_or_else(|e| e.into_inner());
    g.retain(|w| w.strong_count() > 0);
    g.push(Arc::downgrade(r));
}

/// Final snapshots of dropped registries, merged. Without this, a CLI
/// `--metrics` dump taken after the knowledge bases it measured were
/// dropped would read all zeros.
fn graveyard() -> &'static Mutex<MetricsSnapshot> {
    static G: OnceLock<Mutex<MetricsSnapshot>> = OnceLock::new();
    G.get_or_init(|| Mutex::new(MetricsSnapshot::default()))
}

/// Fold a dropped registry's final state into the roll-up (called by
/// `Registry`'s `Drop`).
pub(crate) fn bury(final_state: &MetricsSnapshot) {
    graveyard()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .merge(final_state);
}

/// A merged snapshot of every registry the process has created — the
/// live ones plus the final state of every dropped one — with
/// same-named series summed. This is what `--metrics <path>` dumps: an
/// experiment or CLI run may create (and drop) many knowledge bases,
/// and the operator wants the totals.
pub fn snapshot_all() -> MetricsSnapshot {
    let regs: Vec<Arc<Registry>> = {
        let g = global().lock().unwrap_or_else(|e| e.into_inner());
        g.iter().filter_map(|w| w.upgrade()).collect()
    };
    let mut merged = graveyard()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone();
    for r in regs {
        merged.merge(&r.snapshot());
    }
    merged
}

/// Render the process-global roll-up in Prometheus text format.
pub fn render_all_prometheus() -> String {
    render_prometheus(&snapshot_all())
}

/// Render the process-global roll-up with OpenMetrics exemplars attached
/// to the named histograms' bucket lines (the server uses this to tag
/// `classic_server_request_ns` with recent trace ids).
pub fn render_all_prometheus_exemplars(exemplars: &[(&str, Vec<Option<Exemplar>>)]) -> String {
    render_prometheus_exemplars(&snapshot_all(), exemplars)
}

/// Render the process-global roll-up as JSON.
pub fn render_all_json() -> String {
    render_json(&snapshot_all())
}

/// The upper bound (inclusive) of log2 bucket `b` as a Prometheus `le`
/// label value.
fn le_of(bucket: usize) -> String {
    if bucket >= 64 {
        "+Inf".to_owned()
    } else {
        // Bucket b holds values of bit length b: upper bound 2^b - 1.
        ((1u64 << bucket) - 1).to_string()
    }
}

/// Render a snapshot in the Prometheus text exposition format
/// (`# HELP` / `# TYPE` comments, one sample per line; histograms emit
/// cumulative `_bucket{le=...}` samples plus `_sum` and `_count`).
pub fn render_prometheus(s: &MetricsSnapshot) -> String {
    render_prometheus_exemplars(s, &[])
}

/// One OpenMetrics exemplar: the trace id of a recent observation that
/// landed in a histogram bucket, with the observed value and a unix
/// timestamp (milliseconds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Exemplar {
    /// Trace id label value (hex, as rendered by [`crate::TraceId`]).
    pub trace_id: String,
    /// The observed value (same unit as the histogram).
    pub value: u64,
    /// Observation wall time, unix milliseconds.
    pub ts_ms: u64,
}

impl Exemplar {
    /// Render per the OpenMetrics exemplar grammar:
    /// `# {trace_id="…"} <value> <unix-seconds>`.
    pub fn render(&self) -> String {
        format!(
            "# {{trace_id=\"{}\"}} {} {}.{:03}",
            self.trace_id,
            self.value,
            self.ts_ms / 1_000,
            self.ts_ms % 1_000
        )
    }
}

/// Per-bucket exemplar slots for one histogram: each observation
/// overwrites its bucket's slot, so scrapes always see a *recent*
/// representative trace id per latency band. One short mutex hold per
/// observe; the server only feeds this at the request front, not on hot
/// kernel paths.
pub struct ExemplarStore {
    slots: Mutex<Vec<Option<Exemplar>>>,
}

impl ExemplarStore {
    /// An empty store with one slot per histogram bucket.
    pub fn new() -> ExemplarStore {
        ExemplarStore {
            slots: Mutex::new(vec![None; HISTOGRAM_BUCKETS]),
        }
    }

    /// Record `value` (observed under `trace_id`) into its bucket slot.
    pub fn observe(&self, value: u64, trace_id: &str) {
        let ts_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let b = crate::metrics::bucket_of(value).min(HISTOGRAM_BUCKETS - 1);
        let mut slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        slots[b] = Some(Exemplar {
            trace_id: trace_id.to_string(),
            value,
            ts_ms,
        });
    }

    /// Current per-bucket exemplars (index = bucket).
    pub fn snapshot(&self) -> Vec<Option<Exemplar>> {
        self.slots.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }
}

impl Default for ExemplarStore {
    fn default() -> Self {
        ExemplarStore::new()
    }
}

fn render_histogram_lines(
    out: &mut String,
    name: &str,
    label_prefix: &str,
    h: &HistogramSnapshot,
    exemplars: Option<&[Option<Exemplar>]>,
) {
    // Emit buckets up to the highest nonempty one, then +Inf; cumulative
    // counts stay exact and the output stays short.
    let top = h
        .buckets
        .iter()
        .rposition(|&c| c > 0)
        .map(|p| p.min(63))
        .unwrap_or(0);
    let mut cum = 0u64;
    for b in 0..=top {
        cum += h.buckets[b];
        out.push_str(&format!(
            "{name}_bucket{{{label_prefix}le=\"{}\"}} {cum}",
            le_of(b)
        ));
        if let Some(ex) = exemplars.and_then(|e| e.get(b)).and_then(|e| e.as_ref()) {
            out.push(' ');
            out.push_str(&ex.render());
        }
        out.push('\n');
    }
    out.push_str(&format!(
        "{name}_bucket{{{label_prefix}le=\"+Inf\"}} {}",
        h.count
    ));
    // An exemplar above the last rendered bucket attaches to +Inf.
    if let Some(ex) = exemplars
        .into_iter()
        .flatten()
        .skip(top + 1)
        .flatten()
        .next()
    {
        out.push(' ');
        out.push_str(&ex.render());
    }
    out.push('\n');
    if label_prefix.is_empty() {
        out.push_str(&format!("{name}_sum {}\n", h.sum));
        out.push_str(&format!("{name}_count {}\n", h.count));
    } else {
        let labels = label_prefix.trim_end_matches(',');
        out.push_str(&format!("{name}_sum{{{labels}}} {}\n", h.sum));
        out.push_str(&format!("{name}_count{{{labels}}} {}\n", h.count));
    }
}

/// Render a snapshot like [`render_prometheus`], attaching OpenMetrics
/// exemplars to the bucket lines of the named histograms. `exemplars`
/// maps a histogram name to its per-bucket exemplar snapshot.
pub fn render_prometheus_exemplars(
    s: &MetricsSnapshot,
    exemplars: &[(&str, Vec<Option<Exemplar>>)],
) -> String {
    let mut out = String::new();
    for (name, (help, v)) in &s.counters {
        if !help.is_empty() {
            out.push_str(&format!("# HELP {name} {help}\n"));
        }
        out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
    }
    for (name, (help, v)) in &s.gauges {
        if !help.is_empty() {
            out.push_str(&format!("# HELP {name} {help}\n"));
        }
        out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
    }
    for (name, (help, h)) in &s.histograms {
        if !help.is_empty() {
            out.push_str(&format!("# HELP {name} {help}\n"));
        }
        out.push_str(&format!("# TYPE {name} histogram\n"));
        let ex = exemplars
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, e)| e.as_slice());
        render_histogram_lines(&mut out, name, "", h, ex);
    }
    out
}

/// Render a snapshot with an extra label set on every series, e.g.
/// `[("tenant", "acme")]` → `name{tenant="acme"} v`. Emits *no*
/// `# HELP`/`# TYPE` lines: callers append these sections after an
/// unlabeled roll-up render that already carries the metadata for the
/// same series names (repeating `# TYPE` would be invalid exposition).
/// Label values are escaped per the Prometheus text format.
pub fn render_prometheus_labeled(s: &MetricsSnapshot, labels: &[(&str, &str)]) -> String {
    let escape = |v: &str| {
        v.replace('\\', "\\\\")
            .replace('"', "\\\"")
            .replace('\n', "\\n")
    };
    let mut prefix = String::new();
    for (k, v) in labels {
        prefix.push_str(&format!("{k}=\"{}\",", escape(v)));
    }
    let bare = prefix.trim_end_matches(',').to_string();
    let mut out = String::new();
    for (name, (_, v)) in &s.counters {
        out.push_str(&format!("{name}{{{bare}}} {v}\n"));
    }
    for (name, (_, v)) in &s.gauges {
        out.push_str(&format!("{name}{{{bare}}} {v}\n"));
    }
    for (name, (_, h)) in &s.histograms {
        render_histogram_lines(&mut out, name, &prefix, h, None);
    }
    out
}

/// Render `s` as a JSON string literal (quoted, escaped). Public so the
/// other hand-rolled JSON emitters in the workspace (`Outcome::render_json`,
/// the server's `/stats` endpoint) share one escaper.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_histogram(h: &HistogramSnapshot) -> String {
    let mut buckets = String::from("[");
    let mut first = true;
    for (b, &c) in h.buckets.iter().enumerate() {
        if c == 0 {
            continue;
        }
        if !first {
            buckets.push(',');
        }
        first = false;
        let le = if b >= 64 {
            json_string("+Inf")
        } else {
            ((1u64 << b) - 1).to_string()
        };
        buckets.push_str(&format!("{{\"le\":{le},\"count\":{c}}}"));
    }
    buckets.push(']');
    format!(
        "{{\"count\":{},\"sum\":{},\"buckets\":{buckets}}}",
        h.count, h.sum
    )
}

/// Render a snapshot as a single JSON object:
/// `{"counters":{...},"gauges":{...},"histograms":{...}}`.
pub fn render_json(s: &MetricsSnapshot) -> String {
    let mut out = String::from("{\"counters\":{");
    let mut first = true;
    for (name, (_, v)) in &s.counters {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("{}:{v}", json_string(name)));
    }
    out.push_str("},\"gauges\":{");
    first = true;
    for (name, (_, v)) in &s.gauges {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("{}:{v}", json_string(name)));
    }
    out.push_str("},\"histograms\":{");
    first = true;
    for (name, (_, h)) in &s.histograms {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("{}:{}", json_string(name), json_histogram(h)));
    }
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prometheus_text_has_type_lines_and_samples() {
        let r = Registry::new();
        let c = r.counter("demo_total", "a demo counter").unwrap();
        c.add(7);
        let h = r.histogram("demo_vals", "a demo histogram").unwrap();
        h.record(3);
        h.record(300);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE demo_total counter"));
        assert!(text.contains("demo_total 7"));
        assert!(text.contains("# TYPE demo_vals histogram"));
        assert!(text.contains("demo_vals_count 2"));
        assert!(text.contains("demo_vals_sum 303"));
        assert!(text.contains("demo_vals_bucket{le=\"+Inf\"} 2"));
    }

    #[test]
    fn json_is_structurally_sound() {
        let r = Registry::new();
        r.counter("j_total", "").unwrap().add(1);
        r.gauge("j_gauge", "").unwrap().set(9);
        let json = r.render_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"j_total\":1"));
        assert!(json.contains("\"j_gauge\":9"));
    }

    #[test]
    fn roll_up_sums_same_named_series() {
        let a = Registry::new();
        let b = Registry::new();
        a.counter("rollup_demo_total", "").unwrap().add(2);
        b.counter("rollup_demo_total", "").unwrap().add(3);
        let merged = snapshot_all();
        assert!(merged.counters["rollup_demo_total"].1 >= 5);
    }
}
