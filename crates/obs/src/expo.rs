//! Exposition: Prometheus text format and JSON, over one registry or the
//! process-global roll-up of every registry created so far.

use crate::metrics::{HistogramSnapshot, MetricsSnapshot, Registry};
use std::sync::{Arc, Mutex, OnceLock, Weak};

fn global() -> &'static Mutex<Vec<Weak<Registry>>> {
    static G: OnceLock<Mutex<Vec<Weak<Registry>>>> = OnceLock::new();
    G.get_or_init(|| Mutex::new(Vec::new()))
}

/// Enroll a registry in the process-global roll-up (called by
/// [`Registry::new`]). Holds only a `Weak`, so dropped registries fall
/// out of the live list (their final state moves to the graveyard).
pub(crate) fn enroll(r: &Arc<Registry>) {
    let mut g = global().lock().unwrap_or_else(|e| e.into_inner());
    g.retain(|w| w.strong_count() > 0);
    g.push(Arc::downgrade(r));
}

/// Final snapshots of dropped registries, merged. Without this, a CLI
/// `--metrics` dump taken after the knowledge bases it measured were
/// dropped would read all zeros.
fn graveyard() -> &'static Mutex<MetricsSnapshot> {
    static G: OnceLock<Mutex<MetricsSnapshot>> = OnceLock::new();
    G.get_or_init(|| Mutex::new(MetricsSnapshot::default()))
}

/// Fold a dropped registry's final state into the roll-up (called by
/// `Registry`'s `Drop`).
pub(crate) fn bury(final_state: &MetricsSnapshot) {
    graveyard()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .merge(final_state);
}

/// A merged snapshot of every registry the process has created — the
/// live ones plus the final state of every dropped one — with
/// same-named series summed. This is what `--metrics <path>` dumps: an
/// experiment or CLI run may create (and drop) many knowledge bases,
/// and the operator wants the totals.
pub fn snapshot_all() -> MetricsSnapshot {
    let regs: Vec<Arc<Registry>> = {
        let g = global().lock().unwrap_or_else(|e| e.into_inner());
        g.iter().filter_map(|w| w.upgrade()).collect()
    };
    let mut merged = graveyard()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone();
    for r in regs {
        merged.merge(&r.snapshot());
    }
    merged
}

/// Render the process-global roll-up in Prometheus text format.
pub fn render_all_prometheus() -> String {
    render_prometheus(&snapshot_all())
}

/// Render the process-global roll-up as JSON.
pub fn render_all_json() -> String {
    render_json(&snapshot_all())
}

/// The upper bound (inclusive) of log2 bucket `b` as a Prometheus `le`
/// label value.
fn le_of(bucket: usize) -> String {
    if bucket >= 64 {
        "+Inf".to_owned()
    } else {
        // Bucket b holds values of bit length b: upper bound 2^b - 1.
        ((1u64 << bucket) - 1).to_string()
    }
}

/// Render a snapshot in the Prometheus text exposition format
/// (`# HELP` / `# TYPE` comments, one sample per line; histograms emit
/// cumulative `_bucket{le=...}` samples plus `_sum` and `_count`).
pub fn render_prometheus(s: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, (help, v)) in &s.counters {
        if !help.is_empty() {
            out.push_str(&format!("# HELP {name} {help}\n"));
        }
        out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
    }
    for (name, (help, v)) in &s.gauges {
        if !help.is_empty() {
            out.push_str(&format!("# HELP {name} {help}\n"));
        }
        out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
    }
    for (name, (help, h)) in &s.histograms {
        if !help.is_empty() {
            out.push_str(&format!("# HELP {name} {help}\n"));
        }
        out.push_str(&format!("# TYPE {name} histogram\n"));
        // Emit buckets up to the highest nonempty one, then +Inf;
        // cumulative counts stay exact and the output stays short.
        let top = h
            .buckets
            .iter()
            .rposition(|&c| c > 0)
            .map(|p| p.min(63))
            .unwrap_or(0);
        let mut cum = 0u64;
        for b in 0..=top {
            cum += h.buckets[b];
            out.push_str(&format!("{name}_bucket{{le=\"{}\"}} {cum}\n", le_of(b)));
        }
        out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
        out.push_str(&format!("{name}_sum {}\n", h.sum));
        out.push_str(&format!("{name}_count {}\n", h.count));
    }
    out
}

/// Render `s` as a JSON string literal (quoted, escaped). Public so the
/// other hand-rolled JSON emitters in the workspace (`Outcome::render_json`,
/// the server's `/stats` endpoint) share one escaper.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_histogram(h: &HistogramSnapshot) -> String {
    let mut buckets = String::from("[");
    let mut first = true;
    for (b, &c) in h.buckets.iter().enumerate() {
        if c == 0 {
            continue;
        }
        if !first {
            buckets.push(',');
        }
        first = false;
        let le = if b >= 64 {
            json_string("+Inf")
        } else {
            ((1u64 << b) - 1).to_string()
        };
        buckets.push_str(&format!("{{\"le\":{le},\"count\":{c}}}"));
    }
    buckets.push(']');
    format!(
        "{{\"count\":{},\"sum\":{},\"buckets\":{buckets}}}",
        h.count, h.sum
    )
}

/// Render a snapshot as a single JSON object:
/// `{"counters":{...},"gauges":{...},"histograms":{...}}`.
pub fn render_json(s: &MetricsSnapshot) -> String {
    let mut out = String::from("{\"counters\":{");
    let mut first = true;
    for (name, (_, v)) in &s.counters {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("{}:{v}", json_string(name)));
    }
    out.push_str("},\"gauges\":{");
    first = true;
    for (name, (_, v)) in &s.gauges {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("{}:{v}", json_string(name)));
    }
    out.push_str("},\"histograms\":{");
    first = true;
    for (name, (_, h)) in &s.histograms {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("{}:{}", json_string(name), json_histogram(h)));
    }
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prometheus_text_has_type_lines_and_samples() {
        let r = Registry::new();
        let c = r.counter("demo_total", "a demo counter").unwrap();
        c.add(7);
        let h = r.histogram("demo_vals", "a demo histogram").unwrap();
        h.record(3);
        h.record(300);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE demo_total counter"));
        assert!(text.contains("demo_total 7"));
        assert!(text.contains("# TYPE demo_vals histogram"));
        assert!(text.contains("demo_vals_count 2"));
        assert!(text.contains("demo_vals_sum 303"));
        assert!(text.contains("demo_vals_bucket{le=\"+Inf\"} 2"));
    }

    #[test]
    fn json_is_structurally_sound() {
        let r = Registry::new();
        r.counter("j_total", "").unwrap().add(1);
        r.gauge("j_gauge", "").unwrap().set(9);
        let json = r.render_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"j_total\":1"));
        assert!(json.contains("\"j_gauge\":9"));
    }

    #[test]
    fn roll_up_sums_same_named_series() {
        let a = Registry::new();
        let b = Registry::new();
        a.counter("rollup_demo_total", "").unwrap().add(2);
        b.counter("rollup_demo_total", "").unwrap().add(3);
        let merged = snapshot_all();
        assert!(merged.counters["rollup_demo_total"].1 >= 5);
    }
}
