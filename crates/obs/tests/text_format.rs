//! A tiny Prometheus text-format checker, used two ways: as a test
//! oracle here, and mirrored by the CI `--metrics` job (which fails the
//! build when an experiment's exposition output is empty or
//! unparseable).

use classic_obs::Registry;

/// Validate one exposition document. Returns the number of sample lines,
/// or an error naming the first offending line.
fn check_prometheus_text(text: &str) -> Result<usize, String> {
    let mut samples = 0usize;
    let mut typed: Vec<String> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let err = |msg: &str| Err(format!("line {}: {msg}: {line:?}", lineno + 1));
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            if let Some(rest) = rest.strip_prefix("TYPE ") {
                let mut parts = rest.split_whitespace();
                let (Some(name), Some(kind)) = (parts.next(), parts.next()) else {
                    return err("malformed TYPE comment");
                };
                if !matches!(kind, "counter" | "gauge" | "histogram") {
                    return err("unknown metric type");
                }
                if typed.contains(&name.to_owned()) {
                    return err("duplicate TYPE for series");
                }
                typed.push(name.to_owned());
            } else if !rest.starts_with("HELP ") {
                return err("unknown comment form");
            }
            continue;
        }
        // Sample: `name value` or `name_bucket{le="N"} value`.
        let Some((sample, value)) = line.rsplit_once(' ') else {
            return err("sample line without value");
        };
        if value.parse::<f64>().is_err() && value != "+Inf" {
            return err("unparseable sample value");
        }
        let name = match sample.split_once('{') {
            Some((name, labels)) => {
                if !labels.ends_with('}') || !labels.starts_with("le=\"") {
                    return err("malformed label set");
                }
                name
            }
            None => sample,
        };
        let base = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .unwrap_or(name);
        if classic_obs::validate_name(base).is_err() && classic_obs::validate_name(name).is_err() {
            return err("sample name fails registration-time validation");
        }
        samples += 1;
    }
    if samples == 0 {
        return Err("no samples in exposition output".to_owned());
    }
    Ok(samples)
}

#[test]
fn rendered_registry_passes_the_checker() {
    let r = Registry::new();
    r.counter("fmt_ops_total", "operations").unwrap().add(41);
    r.gauge("fmt_generation", "store generation")
        .unwrap()
        .set(3);
    let h = r
        .histogram("fmt_candidates", "candidates per retrieve")
        .unwrap();
    h.record(0);
    h.record(7);
    h.record(4096);
    let text = r.render_prometheus();
    let n = check_prometheus_text(&text).expect("valid exposition");
    assert!(n >= 3, "counter + gauge + histogram samples, got {n}");
}

#[test]
fn histogram_buckets_are_cumulative_and_end_at_inf() {
    let r = Registry::new();
    let h = r.histogram("fmt_cumulative", "").unwrap();
    for v in [1u64, 1, 2, 900, 3] {
        h.record(v);
    }
    let text = r.render_prometheus();
    let mut last = 0u64;
    let mut saw_inf = false;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("fmt_cumulative_bucket{le=\"") {
            let (le, count) = rest.split_once("\"} ").expect("bucket sample");
            let count: u64 = count.parse().expect("bucket count");
            assert!(count >= last, "cumulative counts must not decrease");
            last = count;
            if le == "+Inf" {
                saw_inf = true;
                assert_eq!(count, 5, "+Inf bucket holds every observation");
            }
        }
    }
    assert!(saw_inf, "histogram must end with a +Inf bucket");
    assert!(text.contains("fmt_cumulative_count 5"));
    assert!(text.contains("fmt_cumulative_sum 907"));
}

#[test]
fn empty_or_garbage_documents_are_rejected() {
    assert!(check_prometheus_text("").is_err());
    assert!(check_prometheus_text("\n\n").is_err());
    assert!(check_prometheus_text("not a metric line at all, no value").is_err());
    assert!(check_prometheus_text("name notanumber").is_err());
    assert!(check_prometheus_text("# TYPE x summary\nx 1").is_err());
    assert!(check_prometheus_text("Bad-Name 3").is_err());
}

#[test]
fn json_exposition_of_same_registry_matches_counts() {
    let r = Registry::new();
    r.counter("fmt_json_total", "").unwrap().add(5);
    let json = r.render_json();
    assert!(json.contains("\"fmt_json_total\":5"));
    // Structural sanity: braces balance.
    let depth = json.chars().fold(0i32, |d, c| match c {
        '{' => d + 1,
        '}' => d - 1,
        _ => d,
    });
    assert_eq!(depth, 0);
}
