//! A tiny Prometheus text-format checker, used two ways: as a test
//! oracle here, and mirrored by the CI `--metrics` job (which fails the
//! build when an experiment's exposition output is empty or
//! unparseable).

use classic_obs::{ExemplarStore, Registry};

/// Validate a label set body (the text between `{` and `}`):
/// comma-separated `key="value"` pairs with `\"`-escaped values.
fn check_label_set(body: &str) -> Result<(), String> {
    let mut rest = body;
    loop {
        let Some(eq) = rest.find("=\"") else {
            return Err(format!("label without =\" in {body:?}"));
        };
        let key = &rest[..eq];
        if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(format!("bad label name {key:?}"));
        }
        // Find the closing unescaped quote.
        let mut ix = eq + 2;
        let bytes = rest.as_bytes();
        loop {
            match bytes.get(ix) {
                None => return Err(format!("unterminated label value in {body:?}")),
                Some(b'\\') => ix += 2,
                Some(b'"') => break,
                Some(_) => ix += 1,
            }
        }
        rest = &rest[ix + 1..];
        match rest.strip_prefix(',') {
            Some(r) => rest = r,
            None if rest.is_empty() => return Ok(()),
            None => return Err(format!("junk after label value in {body:?}")),
        }
    }
}

/// Validate an OpenMetrics exemplar suffix (everything after `# ` on a
/// `_bucket` line): `{trace_id="…"} <value> [<timestamp>]`.
fn check_exemplar(suffix: &str) -> Result<(), String> {
    let Some(rest) = suffix.strip_prefix('{') else {
        return Err(format!("exemplar must start with a label set: {suffix:?}"));
    };
    let Some((labels, rest)) = rest.split_once('}') else {
        return Err(format!("unterminated exemplar label set: {suffix:?}"));
    };
    check_label_set(labels)?;
    if !labels.starts_with("trace_id=\"") {
        return Err(format!("exemplar must carry trace_id: {suffix:?}"));
    }
    let mut parts = rest.trim_start().split(' ');
    let Some(value) = parts.next() else {
        return Err(format!("exemplar without value: {suffix:?}"));
    };
    if value.parse::<f64>().is_err() {
        return Err(format!("unparseable exemplar value {value:?}"));
    }
    if let Some(ts) = parts.next() {
        if ts.parse::<f64>().is_err() {
            return Err(format!("unparseable exemplar timestamp {ts:?}"));
        }
    }
    if parts.next().is_some() {
        return Err(format!("junk after exemplar timestamp: {suffix:?}"));
    }
    Ok(())
}

/// Validate one exposition document. Returns the number of sample lines,
/// or an error naming the first offending line.
fn check_prometheus_text(text: &str) -> Result<usize, String> {
    let mut samples = 0usize;
    let mut typed: Vec<String> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let err = |msg: &str| Err(format!("line {}: {msg}: {line:?}", lineno + 1));
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            if let Some(rest) = rest.strip_prefix("TYPE ") {
                let mut parts = rest.split_whitespace();
                let (Some(name), Some(kind)) = (parts.next(), parts.next()) else {
                    return err("malformed TYPE comment");
                };
                if !matches!(kind, "counter" | "gauge" | "histogram") {
                    return err("unknown metric type");
                }
                if typed.contains(&name.to_owned()) {
                    return err("duplicate TYPE for series");
                }
                typed.push(name.to_owned());
            } else if !rest.starts_with("HELP ") {
                return err("unknown comment form");
            }
            continue;
        }
        // Sample: `name value`, `name{labels} value`, optionally followed
        // by an OpenMetrics exemplar: ` # {trace_id="…"} value ts`.
        let line = match line.split_once(" # ") {
            Some((sample_part, exemplar)) => {
                if !sample_part.contains("_bucket") {
                    return err("exemplar on a non-bucket line");
                }
                if let Err(e) = check_exemplar(exemplar) {
                    return err(&e);
                }
                sample_part
            }
            None => line,
        };
        let Some((sample, value)) = line.rsplit_once(' ') else {
            return err("sample line without value");
        };
        if value.parse::<f64>().is_err() && value != "+Inf" {
            return err("unparseable sample value");
        }
        let name = match sample.split_once('{') {
            Some((name, labels)) => {
                let Some(labels) = labels.strip_suffix('}') else {
                    return err("malformed label set");
                };
                if let Err(e) = check_label_set(labels) {
                    return err(&e);
                }
                name
            }
            None => sample,
        };
        let base = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .unwrap_or(name);
        if classic_obs::validate_name(base).is_err() && classic_obs::validate_name(name).is_err() {
            return err("sample name fails registration-time validation");
        }
        samples += 1;
    }
    if samples == 0 {
        return Err("no samples in exposition output".to_owned());
    }
    Ok(samples)
}

#[test]
fn rendered_registry_passes_the_checker() {
    let r = Registry::new();
    r.counter("fmt_ops_total", "operations").unwrap().add(41);
    r.gauge("fmt_generation", "store generation")
        .unwrap()
        .set(3);
    let h = r
        .histogram("fmt_candidates", "candidates per retrieve")
        .unwrap();
    h.record(0);
    h.record(7);
    h.record(4096);
    let text = r.render_prometheus();
    let n = check_prometheus_text(&text).expect("valid exposition");
    assert!(n >= 3, "counter + gauge + histogram samples, got {n}");
}

#[test]
fn histogram_buckets_are_cumulative_and_end_at_inf() {
    let r = Registry::new();
    let h = r.histogram("fmt_cumulative", "").unwrap();
    for v in [1u64, 1, 2, 900, 3] {
        h.record(v);
    }
    let text = r.render_prometheus();
    let mut last = 0u64;
    let mut saw_inf = false;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("fmt_cumulative_bucket{le=\"") {
            let (le, count) = rest.split_once("\"} ").expect("bucket sample");
            let count: u64 = count.parse().expect("bucket count");
            assert!(count >= last, "cumulative counts must not decrease");
            last = count;
            if le == "+Inf" {
                saw_inf = true;
                assert_eq!(count, 5, "+Inf bucket holds every observation");
            }
        }
    }
    assert!(saw_inf, "histogram must end with a +Inf bucket");
    assert!(text.contains("fmt_cumulative_count 5"));
    assert!(text.contains("fmt_cumulative_sum 907"));
}

#[test]
fn empty_or_garbage_documents_are_rejected() {
    assert!(check_prometheus_text("").is_err());
    assert!(check_prometheus_text("\n\n").is_err());
    assert!(check_prometheus_text("not a metric line at all, no value").is_err());
    assert!(check_prometheus_text("name notanumber").is_err());
    assert!(check_prometheus_text("# TYPE x summary\nx 1").is_err());
    assert!(check_prometheus_text("Bad-Name 3").is_err());
}

#[test]
fn exemplar_grammar_is_pinned() {
    // The exact OpenMetrics exemplar shape the server emits on
    // /metrics: `bucket_sample # {trace_id="…"} value unix_seconds`.
    let ex = classic_obs::Exemplar {
        trace_id: "000000000000000000000000deadbeef".to_string(),
        value: 212,
        ts_ms: 1_690_000_000_123,
    };
    assert_eq!(
        ex.render(),
        "# {trace_id=\"000000000000000000000000deadbeef\"} 212 1690000000.123"
    );

    let r = Registry::new();
    let h = r.histogram("fmt_exemplar_ns", "request latency").unwrap();
    h.record(212);
    h.record(90_000);
    let store = ExemplarStore::new();
    store.observe(212, "000000000000000000000000deadbeef");
    store.observe(90_000, "00000000000000000000000000000abc");
    let text = classic_obs::render_prometheus_exemplars(
        &r.snapshot(),
        &[("fmt_exemplar_ns", store.snapshot())],
    );
    let n = check_prometheus_text(&text).expect("exemplar exposition is valid");
    assert!(n >= 3);
    // Each observed bucket line carries its exemplar.
    let with_ex: Vec<&str> = text
        .lines()
        .filter(|l| l.contains(" # {trace_id="))
        .collect();
    assert_eq!(with_ex.len(), 2, "one exemplar per observed bucket: {text}");
    assert!(with_ex
        .iter()
        .any(|l| l.contains("trace_id=\"000000000000000000000000deadbeef\"} 212 ")));

    // Malformed exemplars are rejected by the checker.
    assert!(check_prometheus_text("x_bucket{le=\"+Inf\"} 1 # trace 1").is_err());
    assert!(check_prometheus_text("x_bucket{le=\"+Inf\"} 1 # {le=\"3\"} 1").is_err());
    assert!(check_prometheus_text("x_total 1 # {trace_id=\"a\"} 1").is_err());
}

#[test]
fn tenant_labeled_rendering_passes_the_checker() {
    let r = Registry::new();
    r.counter("fmt_tenant_requests_total", "").unwrap().add(9);
    let h = r.histogram("fmt_tenant_vals", "").unwrap();
    h.record(5);
    // Labeled sections carry no TYPE lines; prepend an unlabeled render
    // (as the server does) so every series is typed exactly once.
    let text = format!(
        "{}{}",
        r.render_prometheus(),
        classic_obs::render_prometheus_labeled(&r.snapshot(), &[("tenant", "acme-1")])
    );
    check_prometheus_text(&text).expect("labeled exposition is valid");
    assert!(text.contains("fmt_tenant_requests_total{tenant=\"acme-1\"} 9"));
    assert!(text.contains("fmt_tenant_vals_bucket{tenant=\"acme-1\",le=\"7\"} 1"));
    assert!(text.contains("fmt_tenant_vals_count{tenant=\"acme-1\"} 1"));
    // Escaping: a hostile label value cannot break the line grammar.
    let hostile =
        classic_obs::render_prometheus_labeled(&r.snapshot(), &[("tenant", "a\"b\\c\nd")]);
    check_prometheus_text(&format!("{}{hostile}", r.render_prometheus()))
        .expect("escaped label value stays parseable");
}

#[test]
fn json_exposition_of_same_registry_matches_counts() {
    let r = Registry::new();
    r.counter("fmt_json_total", "").unwrap().add(5);
    let json = r.render_json();
    assert!(json.contains("\"fmt_json_total\":5"));
    // Structural sanity: braces balance.
    let depth = json.chars().fold(0i32, |d, c| match c {
        '{' => d + 1,
        '}' => d - 1,
        _ => d,
    });
    assert_eq!(depth, 0);
}
