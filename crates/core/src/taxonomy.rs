//! Classification: maintaining the induced IS-A hierarchy.
//!
//! "The subsumption relationship induces an acyclic directed graph over the
//! space of named concepts — the (in)famous IS-A hierarchy" (paper §3.5.1,
//! including its footnote: for non-primitive concepts the hierarchy "is
//! induced by the definitions, and is not an independent structure under
//! control of the user"). The [`Taxonomy`] maintains the Hasse diagram of
//! that order: each node's `parents`/`children` are its *immediate*
//! subsumers/subsumees.
//!
//! "Classification is the operation by which all known subsuming and
//! subsumed concepts are found" (§5 footnote 6). Insertion uses the
//! classical two-phase traversal: a top-down search for the most specific
//! subsumers (pruned — a node's children are only examined if the node
//! itself subsumes the candidate), then a bottom-up search for the most
//! general subsumees among the common descendants. The same traversal
//! classifies *query* concepts without inserting them, which is what makes
//! query answering cheap (§5; experiments E2/E3).
//!
//! Two indexes accelerate the traversal beyond the seed algorithm:
//!
//! * a memoized subsumption [`Kernel`] — node forms
//!   are hash-consed to [`NfId`]s and `subsumes` results cached per id
//!   pair, so repeated classifications of related queries skip the
//!   structural walks entirely;
//! * a transitive-closure bitset index — each node keeps its full ancestor
//!   and descendant sets as bit rows, making reachability `O(words)`
//!   instead of a DAG walk. The index is maintained incrementally on
//!   insert (Hasse-edge rewiring never changes reachability, so updates
//!   are add-only) and re-laid-out only when capacity grows, which the
//!   kernel counts as a `closure_rebuild`.
//!
//! The seed path survives as [`Taxonomy::classify_unmemoized`] (the
//! ablation baseline for experiment E9) and [`Taxonomy::classify_brute`]
//! stays a pure edge-walking oracle for the property tests.

use crate::intern::{Kernel, KernelObs, KernelStats, NfId};
use crate::normal::NormalForm;
use crate::subsume::subsumes;
use crate::symbol::ConceptName;
use classic_obs::{Counter, FlightRecorder, Histogram, Registry};
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::{Arc, Mutex};

/// Index of a node in the taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// The node for `THING` (top of the hierarchy).
    pub const TOP: NodeId = NodeId(0);
    /// The node for the empty concept (bottom).
    pub const BOTTOM: NodeId = NodeId(1);

    /// Raw index into the taxonomy's node arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One node of the IS-A DAG: a concept meaning plus every name bound to it.
#[derive(Debug, Clone)]
pub struct Node {
    /// The normal form this node stands for.
    pub nf: NormalForm,
    /// All schema names classified as equivalent to this meaning.
    /// ("Two concepts are equivalent if and only if they subsume each
    /// other", §3.5.1 — equivalent definitions share a node.)
    pub names: Vec<ConceptName>,
    /// Immediate subsumers.
    pub parents: BTreeSet<NodeId>,
    /// Immediate subsumees.
    pub children: BTreeSet<NodeId>,
}

/// Result of classifying a concept against the taxonomy.
#[derive(Debug, Clone)]
pub struct Classification {
    /// Most specific subsumers ("immediate parents").
    pub parents: Vec<NodeId>,
    /// Most general subsumees ("immediate children").
    pub children: Vec<NodeId>,
    /// A node with the same meaning, if one exists.
    pub equivalent: Option<NodeId>,
    /// Number of subsumption tests performed (experiment E2's cost metric;
    /// on the kernel path a memo hit still counts as one test).
    pub tests: usize,
}

/// Flattened ancestor/descendant bitsets, one row of `words` u64s per node.
///
/// Rows store *strict* reachability (a node is never in its own row).
/// Updates are add-only: inserting a node unions its parents' ancestor
/// rows (plus the parent bits) and its children's descendant rows (plus
/// the child bits), then ORs its own bit into every ancestor's descendant
/// row and every descendant's ancestor row. Removing the Hasse edges the
/// new node mediates does not change reachability, so nothing is cleared.
#[derive(Debug, Clone)]
struct Closure {
    /// u64 words per row.
    words: usize,
    /// Number of rows (== taxonomy nodes).
    len: usize,
    /// Strict-ancestor rows, row-major `[len][words]`.
    anc: Vec<u64>,
    /// Strict-descendant rows, row-major `[len][words]`.
    desc: Vec<u64>,
}

/// Iterate the set bit positions of a row.
fn iter_bits(row: &[u64]) -> impl Iterator<Item = usize> + '_ {
    row.iter().enumerate().flat_map(|(w, &word)| {
        let base = w * 64;
        std::iter::successors(if word == 0 { None } else { Some(word) }, |&rest| {
            let rest = rest & (rest - 1);
            if rest == 0 {
                None
            } else {
                Some(rest)
            }
        })
        .map(move |bits| base + bits.trailing_zeros() as usize)
    })
}

impl Closure {
    fn new() -> Closure {
        Closure {
            words: 1,
            len: 0,
            anc: Vec::new(),
            desc: Vec::new(),
        }
    }

    fn bit(id: usize) -> (usize, u64) {
        (id / 64, 1u64 << (id % 64))
    }

    fn anc_row(&self, id: usize) -> &[u64] {
        &self.anc[id * self.words..(id + 1) * self.words]
    }

    fn desc_row(&self, id: usize) -> &[u64] {
        &self.desc[id * self.words..(id + 1) * self.words]
    }

    /// Is `anc` a strict ancestor of `id`?
    fn has_ancestor(&self, id: usize, anc: usize) -> bool {
        let (w, b) = Self::bit(anc);
        self.anc_row(id)[w] & b != 0
    }

    /// Is `desc` a strict descendant of `id`?
    fn has_descendant(&self, id: usize, desc: usize) -> bool {
        let (w, b) = Self::bit(desc);
        self.desc_row(id)[w] & b != 0
    }

    /// Append a row for node `self.len` with the given immediate
    /// neighbors, updating every affected row. Returns `true` if the
    /// index was re-laid-out to grow capacity (a "closure rebuild").
    fn push(&mut self, parents: &BTreeSet<NodeId>, children: &BTreeSet<NodeId>) -> bool {
        let id = self.len;
        let rebuilt = id >= self.words * 64;
        if rebuilt {
            self.grow();
        }
        self.len += 1;
        self.anc.resize(self.len * self.words, 0);
        self.desc.resize(self.len * self.words, 0);
        for &p in parents {
            let pi = p.index();
            for w in 0..self.words {
                let v = self.anc[pi * self.words + w];
                self.anc[id * self.words + w] |= v;
            }
            let (w, b) = Self::bit(pi);
            self.anc[id * self.words + w] |= b;
        }
        for &c in children {
            let ci = c.index();
            for w in 0..self.words {
                let v = self.desc[ci * self.words + w];
                self.desc[id * self.words + w] |= v;
            }
            let (w, b) = Self::bit(ci);
            self.desc[id * self.words + w] |= b;
        }
        let (nw, nb) = Self::bit(id);
        let anc_row = self.anc_row(id).to_vec();
        for a in iter_bits(&anc_row) {
            self.desc[a * self.words + nw] |= nb;
        }
        let desc_row = self.desc_row(id).to_vec();
        for d in iter_bits(&desc_row) {
            self.anc[d * self.words + nw] |= nb;
        }
        rebuilt
    }

    /// Double the row stride, copying existing rows into the new layout.
    /// Reachability content is unchanged — only the memory layout moves.
    fn grow(&mut self) {
        let new_words = self.words * 2;
        let relayout = |old: &[u64], words: usize, len: usize| {
            let mut out = vec![0u64; len * new_words];
            for i in 0..len {
                out[i * new_words..i * new_words + words]
                    .copy_from_slice(&old[i * words..(i + 1) * words]);
            }
            out
        };
        self.anc = relayout(&self.anc, self.words, self.len);
        self.desc = relayout(&self.desc, self.words, self.len);
        self.words = new_words;
    }
}

/// The IS-A hierarchy over named (and transiently, query) concepts.
#[derive(Debug)]
pub struct Taxonomy {
    nodes: Vec<Node>,
    by_name: HashMap<ConceptName, NodeId>,
    /// Cumulative subsumption-test counter across all operations.
    tests_total: u64,
    /// Hash-consed node forms + memoized subsumption (see [`crate::intern`]).
    /// Behind a mutex so `classify(&self)` can consult and extend it.
    kernel: Mutex<Kernel>,
    /// Interned id of each node's normal form, parallel to `nodes`.
    nf_ids: Vec<NfId>,
    /// Transitive-closure reachability index, parallel to `nodes`.
    closure: Closure,
    /// Where classification spans land (shared with the owning `Kb`'s
    /// flight recorder when built via [`Taxonomy::with_obs`]).
    recorder: Arc<FlightRecorder>,
    /// Classifications performed (registry counter).
    classify_total: Counter,
    /// Classification latency, nanoseconds (fills at `ObsLevel::Full`).
    classify_ns: Histogram,
}

impl Default for Taxonomy {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for Taxonomy {
    fn clone(&self) -> Self {
        Taxonomy {
            nodes: self.nodes.clone(),
            by_name: self.by_name.clone(),
            tests_total: self.tests_total,
            kernel: Mutex::new(self.kernel.lock().expect("kernel lock").clone()),
            nf_ids: self.nf_ids.clone(),
            closure: self.closure.clone(),
            recorder: Arc::clone(&self.recorder),
            classify_total: self.classify_total.clone(),
            classify_ns: self.classify_ns.clone(),
        }
    }
}

impl Taxonomy {
    /// A taxonomy containing only `THING` and the empty concept, with
    /// detached (registry-less) instrumentation.
    pub fn new() -> Self {
        Self::build(
            Kernel::new(),
            Arc::new(FlightRecorder::new()),
            Counter::detached("classic_classify_total"),
            Histogram::detached("classic_classify_ns", true),
        )
    }

    /// A taxonomy whose kernel and classification metrics are registered
    /// in `registry`, and whose classification spans land in `recorder`.
    /// The owning `Kb` calls this so `KernelStats` and the metrics
    /// exposition read the same atomics.
    pub fn with_obs(registry: &Registry, recorder: Arc<FlightRecorder>) -> Self {
        Self::build(
            Kernel::with_obs(KernelObs::register(registry)),
            recorder,
            registry
                .counter(
                    "classic_classify_total",
                    "taxonomy classifications performed",
                )
                .expect("taxonomy metric registration"),
            registry
                .duration_histogram("classic_classify_ns", "classification latency, nanoseconds")
                .expect("taxonomy metric registration"),
        )
    }

    fn build(
        mut kernel: Kernel,
        recorder: Arc<FlightRecorder>,
        classify_total: Counter,
        classify_ns: Histogram,
    ) -> Self {
        let top = Node {
            nf: NormalForm::top(),
            names: Vec::new(),
            parents: BTreeSet::new(),
            children: BTreeSet::from([NodeId::BOTTOM]),
        };
        let bottom = Node {
            nf: NormalForm::bottom(crate::error::Clash::Incoherent),
            names: Vec::new(),
            parents: BTreeSet::from([NodeId::TOP]),
            children: BTreeSet::new(),
        };
        let nf_ids = vec![kernel.intern(&top.nf), kernel.intern(&bottom.nf)];
        let mut closure = Closure::new();
        closure.push(&BTreeSet::new(), &BTreeSet::new());
        closure.push(&BTreeSet::from([NodeId::TOP]), &BTreeSet::new());
        Taxonomy {
            nodes: vec![top, bottom],
            by_name: HashMap::new(),
            tests_total: 0,
            kernel: Mutex::new(kernel),
            nf_ids,
            closure,
            recorder,
            classify_total,
            classify_ns,
        }
    }

    /// The node stored at `id`.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Total nodes, including `TOP` and `BOTTOM`.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Never empty: `TOP` and `BOTTOM` are always present.
    pub fn is_empty(&self) -> bool {
        false // TOP and BOTTOM are always present
    }

    /// The node a schema name was classified into, if any.
    pub fn node_of(&self, name: ConceptName) -> Option<NodeId> {
        self.by_name.get(&name).copied()
    }

    /// Total subsumption tests performed so far (E2 instrumentation).
    pub fn tests_total(&self) -> u64 {
        self.tests_total
    }

    /// Snapshot of the subsumption kernel's counters (interning, memo
    /// hit/miss, closure rebuilds).
    pub fn kernel_stats(&self) -> KernelStats {
        self.kernel.lock().expect("kernel lock").stats()
    }

    /// All node ids except TOP/BOTTOM, in insertion order.
    pub fn interior_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (2..self.nodes.len()).map(|i| NodeId(i as u32))
    }

    /// Classify `nf` against the current taxonomy without inserting it.
    ///
    /// Runs on the kernel path: the query form is interned once and every
    /// subsumption test goes through the memo; frontier minimality and
    /// subsumee candidate generation use the closure bitsets.
    pub fn classify(&self, nf: &NormalForm) -> Classification {
        let _span = classic_obs::span_timed(&self.recorder, "taxonomy.classify", &self.classify_ns);
        self.classify_total.bump();
        let mut tests = 0usize;
        if nf.is_incoherent() {
            return Classification {
                parents: self.node(NodeId::BOTTOM).parents.iter().copied().collect(),
                children: Vec::new(),
                equivalent: Some(NodeId::BOTTOM),
                tests,
            };
        }
        let mut kernel = self.kernel.lock().expect("kernel lock");
        let q = kernel.intern(nf);
        let parents = self.most_specific_subsumers_kernel(&mut kernel, q, &mut tests);
        // Equivalence: a parent that is also subsumed by nf.
        let mut equivalent = None;
        for &p in &parents {
            tests += 1;
            if kernel.subsumes_ids(q, self.nf_ids[p.index()]) {
                equivalent = Some(p);
                break;
            }
        }
        let children = if equivalent.is_some() {
            Vec::new()
        } else {
            self.most_general_subsumees_kernel(&mut kernel, q, &parents, &mut tests)
        };
        classic_obs::event("subsume_tests", tests as u64);
        Classification {
            parents,
            children,
            equivalent,
            tests,
        }
    }

    /// Insert a named concept, wiring it into the Hasse diagram.
    /// Returns the node it lives at (an existing node if the meaning is
    /// already present) plus the classification report.
    pub fn insert(&mut self, name: ConceptName, nf: NormalForm) -> (NodeId, Classification) {
        let report = self.classify(&nf);
        self.tests_total += report.tests as u64;
        if let Some(eq) = report.equivalent {
            self.nodes[eq.index()].names.push(name);
            self.by_name.insert(name, eq);
            return (eq, report);
        }
        let id = NodeId(self.nodes.len() as u32);
        let parents: BTreeSet<NodeId> = report.parents.iter().copied().collect();
        let children: BTreeSet<NodeId> = if report.children.is_empty() {
            BTreeSet::from([NodeId::BOTTOM])
        } else {
            report.children.iter().copied().collect()
        };
        // Remove direct parent→child edges now mediated by the new node.
        // (Reachability is unchanged, so the closure index needs no
        // clearing — only the new node's add-only update below.)
        for &p in &parents {
            for &c in &children {
                self.nodes[p.index()].children.remove(&c);
                self.nodes[c.index()].parents.remove(&p);
            }
        }
        for &p in &parents {
            self.nodes[p.index()].children.insert(id);
        }
        for &c in &children {
            self.nodes[c.index()].parents.insert(id);
        }
        let kernel = self.kernel.get_mut().expect("kernel lock");
        self.nf_ids.push(kernel.intern(&nf));
        if self.closure.push(&parents, &children) {
            kernel.obs().closure_rebuilds.bump();
        }
        self.nodes.push(Node {
            nf,
            names: vec![name],
            parents,
            children,
        });
        self.by_name.insert(name, id);
        (id, report)
    }

    /// Top-down search for the most specific subsumers of `nf`, on the
    /// kernel path. A node's children are examined only when the node
    /// itself subsumes the query; the node joins the frontier when none of
    /// its children do.
    fn most_specific_subsumers_kernel(
        &self,
        kernel: &mut Kernel,
        q: NfId,
        tests: &mut usize,
    ) -> Vec<NodeId> {
        let mut cache: HashMap<NodeId, bool> = HashMap::new();
        cache.insert(NodeId::TOP, true);
        let mut frontier = Vec::new();
        let mut visited: BTreeSet<NodeId> = BTreeSet::new();
        let mut queue = VecDeque::from([NodeId::TOP]);
        while let Some(n) = queue.pop_front() {
            if !visited.insert(n) {
                continue;
            }
            let mut has_subsuming_child = false;
            for &c in &self.node(n).children {
                if c == NodeId::BOTTOM {
                    continue;
                }
                let v = match cache.get(&c) {
                    Some(&v) => v,
                    None => {
                        *tests += 1;
                        let v = kernel.subsumes_ids(self.nf_ids[c.index()], q);
                        cache.insert(c, v);
                        v
                    }
                };
                if v {
                    has_subsuming_child = true;
                    queue.push_back(c);
                }
            }
            if !has_subsuming_child {
                frontier.push(n);
            }
        }
        // The frontier may contain non-minimal nodes reached along
        // different paths; keep only nodes with no *other* frontier node
        // strictly below them (an O(words) bitset probe each).
        let set: BTreeSet<NodeId> = frontier.iter().copied().collect();
        frontier.retain(|&n| {
            !set.iter()
                .any(|&d| d != n && self.closure.has_descendant(n.index(), d.index()))
        });
        frontier.sort();
        frontier.dedup();
        frontier
    }

    /// Bottom-up search for the most general subsumees, on the kernel
    /// path: candidates come from intersecting the parents' descendant
    /// bit rows instead of walking the DAG.
    fn most_general_subsumees_kernel(
        &self,
        kernel: &mut Kernel,
        q: NfId,
        parents: &[NodeId],
        tests: &mut usize,
    ) -> Vec<NodeId> {
        let words = self.closure.words;
        let mut common = vec![u64::MAX; words];
        for &p in parents {
            for (w, slot) in common.iter_mut().enumerate() {
                *slot &= self.closure.desc_row(p.index())[w];
            }
        }
        if parents.is_empty() {
            common.fill(0);
        }
        let mut selected: BTreeSet<NodeId> = BTreeSet::new();
        for m in iter_bits(&common) {
            if m == NodeId::BOTTOM.index() {
                continue;
            }
            *tests += 1;
            if kernel.subsumes_ids(q, self.nf_ids[m]) {
                selected.insert(NodeId(m as u32));
            }
        }
        // Keep maximal elements only.
        selected
            .iter()
            .copied()
            .filter(|&m| {
                !selected
                    .iter()
                    .any(|&a| a != m && self.closure.has_ancestor(m.index(), a.index()))
            })
            .collect()
    }

    /// Classify `nf` with the seed algorithm: plain (uncached) subsumption
    /// tests and DAG-walking reachability. Kept as the ablation baseline
    /// for experiment E9; produces the same answer as [`Taxonomy::classify`].
    pub fn classify_unmemoized(&self, nf: &NormalForm) -> Classification {
        let mut tests = 0usize;
        if nf.is_incoherent() {
            return Classification {
                parents: self.node(NodeId::BOTTOM).parents.iter().copied().collect(),
                children: Vec::new(),
                equivalent: Some(NodeId::BOTTOM),
                tests,
            };
        }
        let parents = self.most_specific_subsumers_walk(nf, &mut tests);
        let mut equivalent = None;
        for &p in &parents {
            tests += 1;
            if subsumes(nf, &self.node(p).nf) {
                equivalent = Some(p);
                break;
            }
        }
        let children = if equivalent.is_some() {
            Vec::new()
        } else {
            self.most_general_subsumees_walk(nf, &parents, &mut tests)
        };
        Classification {
            parents,
            children,
            equivalent,
            tests,
        }
    }

    /// Seed-path top-down search (uncached subsumption, walk-based
    /// minimality filter).
    fn most_specific_subsumers_walk(&self, nf: &NormalForm, tests: &mut usize) -> Vec<NodeId> {
        let mut cache: HashMap<NodeId, bool> = HashMap::new();
        cache.insert(NodeId::TOP, true);
        let mut subsumes_nf = |taxo: &Taxonomy, id: NodeId, tests: &mut usize| -> bool {
            if let Some(&v) = cache.get(&id) {
                return v;
            }
            *tests += 1;
            let v = subsumes(&taxo.node(id).nf, nf);
            cache.insert(id, v);
            v
        };
        let mut frontier = Vec::new();
        let mut visited: BTreeSet<NodeId> = BTreeSet::new();
        let mut queue = VecDeque::from([NodeId::TOP]);
        while let Some(n) = queue.pop_front() {
            if !visited.insert(n) {
                continue;
            }
            let mut has_subsuming_child = false;
            for &c in &self.node(n).children {
                if c == NodeId::BOTTOM {
                    continue;
                }
                if subsumes_nf(self, c, tests) {
                    has_subsuming_child = true;
                    queue.push_back(c);
                }
            }
            if !has_subsuming_child {
                frontier.push(n);
            }
        }
        let set: BTreeSet<NodeId> = frontier.iter().copied().collect();
        frontier.retain(|&n| {
            !self
                .reachable_walk(n, false)
                .iter()
                .any(|d| set.contains(d) && *d != n)
        });
        frontier.sort();
        frontier.dedup();
        frontier
    }

    /// Seed-path bottom-up search over the common walked descendants.
    fn most_general_subsumees_walk(
        &self,
        nf: &NormalForm,
        parents: &[NodeId],
        tests: &mut usize,
    ) -> Vec<NodeId> {
        // Candidates: nodes below every most-specific subsumer (any
        // subsumee of nf must be).
        let mut common: Option<BTreeSet<NodeId>> = None;
        for &p in parents {
            let d = self.reachable_walk(p, false);
            common = Some(match common {
                None => d,
                Some(c) => c.intersection(&d).copied().collect(),
            });
        }
        let candidates = common.unwrap_or_default();
        let mut selected: BTreeSet<NodeId> = BTreeSet::new();
        for &m in &candidates {
            if m == NodeId::BOTTOM {
                continue;
            }
            *tests += 1;
            if subsumes(nf, &self.node(m).nf) {
                selected.insert(m);
            }
        }
        // Keep maximal elements only.
        let mut result: Vec<NodeId> = selected
            .iter()
            .copied()
            .filter(|&m| {
                !self
                    .reachable_walk(m, true)
                    .iter()
                    .any(|a| selected.contains(a))
            })
            .collect();
        result.sort();
        result
    }

    /// All nodes strictly below `id` (descendants, excluding `id`).
    /// Served from the closure bitset index in `O(words + |result|)`.
    pub fn strict_descendants(&self, id: NodeId) -> BTreeSet<NodeId> {
        iter_bits(self.closure.desc_row(id.index()))
            .map(|i| NodeId(i as u32))
            .collect()
    }

    /// All nodes strictly above `id` (ancestors, excluding `id`).
    /// Served from the closure bitset index in `O(words + |result|)`.
    pub fn strict_ancestors(&self, id: NodeId) -> BTreeSet<NodeId> {
        iter_bits(self.closure.anc_row(id.index()))
            .map(|i| NodeId(i as u32))
            .collect()
    }

    /// Is `anc` strictly above `id`? `O(1)` closure probe.
    pub fn is_strict_ancestor(&self, anc: NodeId, id: NodeId) -> bool {
        self.closure.has_ancestor(id.index(), anc.index())
    }

    /// Edge-walking reachability, independent of the closure index. Used
    /// by the seed classification path and [`Taxonomy::classify_brute`] so
    /// the oracle cannot share a bug with the bitsets it checks.
    fn reachable_walk(&self, id: NodeId, up: bool) -> BTreeSet<NodeId> {
        let mut out = BTreeSet::new();
        let mut queue = VecDeque::from([id]);
        while let Some(n) = queue.pop_front() {
            let next = if up {
                &self.node(n).parents
            } else {
                &self.node(n).children
            };
            for &m in next {
                if out.insert(m) {
                    queue.push_back(m);
                }
            }
        }
        out.remove(&id);
        out
    }

    /// Brute-force classification: compare against every node in both
    /// directions, using only plain subsumption and edge walks. The naive
    /// baseline for experiment E2's ablation and the oracle for the
    /// kernel-path property tests.
    pub fn classify_brute(&self, nf: &NormalForm) -> Classification {
        let mut tests = 0usize;
        if nf.is_incoherent() {
            return Classification {
                parents: self.node(NodeId::BOTTOM).parents.iter().copied().collect(),
                children: Vec::new(),
                equivalent: Some(NodeId::BOTTOM),
                tests,
            };
        }
        let mut above = Vec::new();
        let mut below = Vec::new();
        let mut equivalent = None;
        for i in 0..self.nodes.len() {
            let id = NodeId(i as u32);
            if id == NodeId::BOTTOM {
                continue;
            }
            tests += 2;
            let up = subsumes(&self.node(id).nf, nf);
            let down = subsumes(nf, &self.node(id).nf);
            if up && down {
                equivalent = Some(id);
            } else if up {
                above.push(id);
            } else if down {
                below.push(id);
            }
        }
        if let Some(eq) = equivalent {
            // Match `classify`'s representation: an equivalent node stands
            // in for the parent frontier.
            return Classification {
                parents: vec![eq],
                children: Vec::new(),
                equivalent,
                tests,
            };
        }
        let above_set: BTreeSet<NodeId> = above.iter().copied().collect();
        let below_set: BTreeSet<NodeId> = below.iter().copied().collect();
        let parents = above
            .iter()
            .copied()
            .filter(|&a| {
                !self
                    .reachable_walk(a, false)
                    .iter()
                    .any(|d| above_set.contains(d))
            })
            .collect();
        let children = below
            .iter()
            .copied()
            .filter(|&b| {
                !self
                    .reachable_walk(b, true)
                    .iter()
                    .any(|a| below_set.contains(a))
            })
            .collect();
        Classification {
            parents,
            children,
            equivalent,
            tests,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::desc::Concept;
    use crate::normal::normalize;
    use crate::schema::Schema;

    struct Fix {
        schema: Schema,
        taxo: Taxonomy,
    }

    fn fix() -> Fix {
        Fix {
            schema: Schema::new(),
            taxo: Taxonomy::new(),
        }
    }

    fn define(f: &mut Fix, name: &str, c: Concept) -> NodeId {
        let id = f.schema.define_concept(name, c).unwrap();
        let nf = f.schema.concept_nf(id).unwrap().clone();
        f.taxo.insert(id, nf).0
    }

    fn named(f: &mut Fix, n: &str) -> Concept {
        Concept::Name(f.schema.symbols.concept(n))
    }

    #[test]
    fn fresh_taxonomy_has_top_and_bottom() {
        let f = fix();
        assert_eq!(f.taxo.len(), 2);
        assert!(f.taxo.node(NodeId::TOP).children.contains(&NodeId::BOTTOM));
        assert!(f.taxo.node(NodeId::BOTTOM).parents.contains(&NodeId::TOP));
        assert!(f
            .taxo
            .strict_descendants(NodeId::TOP)
            .contains(&NodeId::BOTTOM));
        assert!(f
            .taxo
            .strict_ancestors(NodeId::BOTTOM)
            .contains(&NodeId::TOP));
    }

    #[test]
    fn primitive_chain_classifies_linearly() {
        let mut f = fix();
        let car = define(&mut f, "CAR", Concept::primitive(Concept::thing(), "car"));
        let sports_parent = named(&mut f, "CAR");
        let sports = define(
            &mut f,
            "SPORTS-CAR",
            Concept::primitive(sports_parent, "sports-car"),
        );
        assert!(f.taxo.node(sports).parents.contains(&car));
        assert!(f.taxo.node(car).children.contains(&sports));
        // CAR's direct link to BOTTOM is rerouted through SPORTS-CAR.
        assert!(!f.taxo.node(car).children.contains(&NodeId::BOTTOM));
        assert!(f.taxo.node(sports).children.contains(&NodeId::BOTTOM));
    }

    #[test]
    fn defined_concept_slots_between_parent_and_child() {
        let mut f = fix();
        let r = f.schema.define_role("thing-driven").unwrap();
        let person = define(
            &mut f,
            "PERSON",
            Concept::primitive(Concept::thing(), "person"),
        );
        let p = named(&mut f, "PERSON");
        let driver3 = define(
            &mut f,
            "TRIPLE-DRIVER",
            Concept::and([p.clone(), Concept::AtLeast(3, r)]),
        );
        // Now insert PERSON-with-at-least-2, which belongs between.
        let driver2 = define(
            &mut f,
            "DOUBLE-DRIVER",
            Concept::and([p, Concept::AtLeast(2, r)]),
        );
        assert!(f.taxo.node(driver2).parents.contains(&person));
        assert!(f.taxo.node(driver2).children.contains(&driver3));
        assert!(!f.taxo.node(person).children.contains(&driver3));
        assert!(f.taxo.node(driver3).parents.contains(&driver2));
    }

    #[test]
    fn equivalent_definitions_share_a_node() {
        let mut f = fix();
        let r = f.schema.define_role("r").unwrap();
        let a = define(
            &mut f,
            "A",
            Concept::and([Concept::AtLeast(1, r), Concept::AtMost(1, r)]),
        );
        let b = define(&mut f, "B", Concept::exactly(1, r));
        assert_eq!(a, b);
        assert_eq!(f.taxo.node(a).names.len(), 2);
        let a_name = f.schema.symbols.find_concept("A").unwrap();
        let b_name = f.schema.symbols.find_concept("B").unwrap();
        assert_eq!(f.taxo.node_of(a_name), f.taxo.node_of(b_name));
    }

    #[test]
    fn incoherent_definition_goes_to_bottom() {
        let mut f = fix();
        let r = f.schema.define_role("r").unwrap();
        let bot = define(
            &mut f,
            "IMPOSSIBLE",
            Concept::and([Concept::AtLeast(2, r), Concept::AtMost(1, r)]),
        );
        assert_eq!(bot, NodeId::BOTTOM);
    }

    #[test]
    fn multiple_parents() {
        let mut f = fix();
        define(&mut f, "CAR", Concept::primitive(Concept::thing(), "car"));
        define(
            &mut f,
            "EXPENSIVE-THING",
            Concept::primitive(Concept::thing(), "expensive"),
        );
        let car = named(&mut f, "CAR");
        let exp = named(&mut f, "EXPENSIVE-THING");
        // §2.1.1: SPORTS-CAR as a primitive below (AND CAR EXPENSIVE-THING).
        let sports = define(
            &mut f,
            "SPORTS-CAR",
            Concept::primitive(Concept::and([car, exp]), "sports-car"),
        );
        let parents = &f.taxo.node(sports).parents;
        assert_eq!(parents.len(), 2);
    }

    #[test]
    fn classify_transient_matches_insert() {
        let mut f = fix();
        let r = f.schema.define_role("r").unwrap();
        define(&mut f, "CAR", Concept::primitive(Concept::thing(), "car"));
        let car = named(&mut f, "CAR");
        let q = Concept::and([car, Concept::AtLeast(1, r)]);
        let nf = normalize(&q, &mut f.schema).unwrap();
        let c1 = f.taxo.classify(&nf);
        let c2 = f.taxo.classify_brute(&nf);
        assert_eq!(c1.parents, c2.parents);
        assert_eq!(c1.children, c2.children);
        assert_eq!(c1.equivalent, c2.equivalent);
    }

    #[test]
    fn brute_and_pruned_agree_on_a_small_random_schema() {
        let mut f = fix();
        let roles: Vec<_> = (0..4)
            .map(|i| f.schema.define_role(&format!("r{i}")).unwrap())
            .collect();
        // A small diamond-ish schema.
        define(&mut f, "P0", Concept::primitive(Concept::thing(), "p0"));
        let p0 = named(&mut f, "P0");
        for i in 0..8u32 {
            let c = Concept::and([
                p0.clone(),
                Concept::AtLeast(i % 3, roles[(i % 4) as usize]),
                Concept::AtMost(3 + (i % 2), roles[((i + 1) % 4) as usize]),
            ]);
            define(&mut f, &format!("C{i}"), c);
        }
        for i in 0..8u32 {
            let q = Concept::and([p0.clone(), Concept::AtLeast(i % 4, roles[(i % 4) as usize])]);
            let nf = normalize(&q, &mut f.schema).unwrap();
            let a = f.taxo.classify(&nf);
            let b = f.taxo.classify_brute(&nf);
            let u = f.taxo.classify_unmemoized(&nf);
            assert_eq!(a.parents, b.parents, "parents differ for i={i}");
            assert_eq!(a.children, b.children, "children differ for i={i}");
            assert_eq!(a.equivalent, b.equivalent, "equiv differs for i={i}");
            assert_eq!(u.parents, b.parents, "walk parents differ for i={i}");
            assert_eq!(u.children, b.children, "walk children differ for i={i}");
            assert_eq!(u.equivalent, b.equivalent, "walk equiv differs for i={i}");
            assert!(u.tests <= b.tests, "pruned search did more tests");
        }
    }

    #[test]
    fn ancestors_and_descendants() {
        let mut f = fix();
        let car = define(&mut f, "CAR", Concept::primitive(Concept::thing(), "car"));
        let c = named(&mut f, "CAR");
        let sports = define(&mut f, "SPORTS-CAR", Concept::primitive(c, "sc"));
        let anc = f.taxo.strict_ancestors(sports);
        assert!(anc.contains(&car));
        assert!(anc.contains(&NodeId::TOP));
        assert!(!anc.contains(&sports));
        let desc = f.taxo.strict_descendants(car);
        assert!(desc.contains(&sports));
        assert!(desc.contains(&NodeId::BOTTOM));
        assert!(f.taxo.is_strict_ancestor(car, sports));
        assert!(!f.taxo.is_strict_ancestor(sports, car));
    }

    #[test]
    fn closure_matches_edge_walks_after_many_inserts() {
        // Cross the 64-node word boundary so `grow()` is exercised, then
        // check every node's bitset rows against a fresh edge walk.
        let mut f = fix();
        let roles: Vec<_> = (0..3)
            .map(|i| f.schema.define_role(&format!("r{i}")).unwrap())
            .collect();
        define(&mut f, "P0", Concept::primitive(Concept::thing(), "p0"));
        let p0 = named(&mut f, "P0");
        for i in 0..80u32 {
            let c = Concept::and([
                p0.clone(),
                Concept::AtLeast(i % 7, roles[(i % 3) as usize]),
                Concept::AtMost(7 + (i % 5), roles[((i + 1) % 3) as usize]),
            ]);
            define(&mut f, &format!("C{i}"), c);
        }
        assert!(f.taxo.len() > 64, "must cross the word boundary");
        assert!(
            f.taxo.kernel_stats().closure_rebuilds >= 1,
            "growth should have been counted"
        );
        for i in 0..f.taxo.len() {
            let id = NodeId(i as u32);
            assert_eq!(
                f.taxo.strict_descendants(id),
                f.taxo.reachable_walk(id, false),
                "desc rows diverge at node {i}"
            );
            assert_eq!(
                f.taxo.strict_ancestors(id),
                f.taxo.reachable_walk(id, true),
                "anc rows diverge at node {i}"
            );
        }
    }

    #[test]
    fn kernel_memo_pays_off_on_repeat_classification() {
        let mut f = fix();
        let r = f.schema.define_role("r").unwrap();
        define(&mut f, "CAR", Concept::primitive(Concept::thing(), "car"));
        let car = named(&mut f, "CAR");
        let nf = normalize(&Concept::and([car, Concept::AtLeast(1, r)]), &mut f.schema).unwrap();
        let _ = f.taxo.classify(&nf);
        let misses_after_first = f.taxo.kernel_stats().memo_misses;
        let _ = f.taxo.classify(&nf);
        let stats = f.taxo.kernel_stats();
        assert_eq!(
            stats.memo_misses, misses_after_first,
            "second classification must be all memo hits"
        );
        assert!(stats.memo_hits > 0);
        assert!(stats.intern_hits > 0, "query form re-interned to same id");
    }

    #[test]
    fn clone_is_independent() {
        let mut f = fix();
        define(&mut f, "CAR", Concept::primitive(Concept::thing(), "car"));
        let snapshot = f.taxo.clone();
        let before = snapshot.len();
        let c = named(&mut f, "CAR");
        define(&mut f, "SPORTS-CAR", Concept::primitive(c, "sc"));
        assert_eq!(snapshot.len(), before);
        assert_eq!(f.taxo.len(), before + 1);
        // The clone's kernel still answers classifications.
        let nf = f
            .schema
            .concept_nf(f.schema.symbols.find_concept("CAR").unwrap());
        let nf = nf.unwrap().clone();
        let cls = snapshot.classify(&nf);
        assert!(cls.equivalent.is_some());
    }
}
