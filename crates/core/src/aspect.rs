//! Schema introspection: the paper's `concept-aspect` operator.
//!
//! "In lieu of a data dictionary, CLASSIC offers operators that allow
//! concepts to be inspected" (paper §3.1). `concept-aspect` "allows one to
//! look at these facets, by taking as arguments a concept, a constructor,
//! and possibly a role name" (§3.5.1):
//!
//! * `concept-aspect[c, ONE-OF]` — any enumeration in `c`'s definition;
//! * `concept-aspect[c, ALL, thing-driven]` — the type constraint on that
//!   role's fillers;
//! * `concept-aspect[c, AT-LEAST, thing-driven]` — the lower bound;
//! * dropping the role argument lists the roles restricted by that
//!   constructor.
//!
//! Aspects are read off the *normal form*, so they reflect everything the
//! definition entails, not just what was literally written (e.g. the
//! `AT-MOST 2` derived from an enumerated value restriction in §2.2).

use crate::desc::IndRef;
use crate::normal::NormalForm;
use crate::symbol::RoleId;

/// The constructor facet being inspected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AspectKind {
    /// The enumeration facet (`ONE-OF`).
    OneOf,
    /// The value restriction on a role (`ALL`).
    All,
    /// The lower cardinality bound on a role (`AT-LEAST`).
    AtLeast,
    /// The upper cardinality bound on a role (`AT-MOST`).
    AtMost,
    /// The known fillers of a role (`FILLS`).
    Fills,
    /// Whether a role is closed (`CLOSE`).
    Close,
}

/// The value of one facet of a concept.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Aspect {
    /// No restriction recorded for this facet.
    None,
    /// An enumeration (`ONE-OF`).
    Enumeration(Vec<IndRef>),
    /// A value restriction (`ALL`).
    ValueRestriction(NormalForm),
    /// A cardinality bound (`AT-LEAST`/`AT-MOST`).
    Bound(u32),
    /// Known fillers (`FILLS`).
    Fillers(Vec<IndRef>),
    /// Whether the role is closed (`CLOSE`).
    Closed(bool),
}

/// `concept-aspect[c, kind, role]` — inspect one facet of a concept.
///
/// `role` is required for the role-specific constructors and ignored for
/// `ONE-OF`; use [`roles_with_aspect`] for the role-less invocation that
/// lists restricted roles.
pub fn concept_aspect(nf: &NormalForm, kind: AspectKind, role: Option<RoleId>) -> Aspect {
    match kind {
        AspectKind::OneOf => match &nf.one_of {
            Some(s) => Aspect::Enumeration(s.iter().cloned().collect()),
            None => Aspect::None,
        },
        _ => {
            let Some(role) = role else {
                return Aspect::None;
            };
            let Some(rr) = nf.roles.get(&role) else {
                return match kind {
                    AspectKind::AtLeast => Aspect::Bound(0),
                    AspectKind::Close => Aspect::Closed(false),
                    _ => Aspect::None,
                };
            };
            match kind {
                AspectKind::OneOf => unreachable!("handled above"),
                AspectKind::All => match &rr.all {
                    Some(all) => Aspect::ValueRestriction((**all).clone()),
                    None => Aspect::None,
                },
                AspectKind::AtLeast => Aspect::Bound(rr.at_least),
                AspectKind::AtMost => match rr.at_most {
                    Some(m) => Aspect::Bound(m),
                    None => Aspect::None,
                },
                AspectKind::Fills => {
                    if rr.fillers.is_empty() {
                        Aspect::None
                    } else {
                        Aspect::Fillers(rr.fillers.iter().cloned().collect())
                    }
                }
                AspectKind::Close => Aspect::Closed(rr.closed),
            }
        }
    }
}

/// `concept-aspect[c, kind]` without a role: "we get the list of roles for
/// which there is a restriction present" (§3.5.1).
pub fn roles_with_aspect(nf: &NormalForm, kind: AspectKind) -> Vec<RoleId> {
    nf.roles
        .iter()
        .filter(|(_, rr)| match kind {
            AspectKind::OneOf => false,
            AspectKind::All => rr.all.is_some(),
            AspectKind::AtLeast => rr.at_least > 0,
            AspectKind::AtMost => rr.at_most.is_some(),
            AspectKind::Fills => !rr.fillers.is_empty(),
            AspectKind::Close => rr.closed,
        })
        .map(|(&r, _)| r)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::desc::Concept;
    use crate::normal::normalize;
    use crate::schema::Schema;

    #[test]
    fn aspects_read_off_the_definition() {
        let mut s = Schema::new();
        let r = s.define_role("thing-driven").unwrap();
        s.define_concept("SPORTS-CAR", Concept::primitive(Concept::thing(), "sc"))
            .unwrap();
        let sc = Concept::Name(s.symbols.find_concept("SPORTS-CAR").unwrap());
        let rich_kid = Concept::and([Concept::all(r, sc), Concept::AtLeast(2, r)]);
        let nf = normalize(&rich_kid, &mut s).unwrap();
        assert_eq!(
            concept_aspect(&nf, AspectKind::AtLeast, Some(r)),
            Aspect::Bound(2)
        );
        assert!(matches!(
            concept_aspect(&nf, AspectKind::All, Some(r)),
            Aspect::ValueRestriction(_)
        ));
        assert_eq!(
            concept_aspect(&nf, AspectKind::AtMost, Some(r)),
            Aspect::None
        );
        assert_eq!(roles_with_aspect(&nf, AspectKind::All), vec![r]);
        assert_eq!(roles_with_aspect(&nf, AspectKind::AtLeast), vec![r]);
        assert!(roles_with_aspect(&nf, AspectKind::Close).is_empty());
    }

    #[test]
    fn derived_aspects_are_visible() {
        // §2.2: an enumerated value restriction derives AT-MOST.
        let mut s = Schema::new();
        let r = s.define_role("r").unwrap();
        let a = IndRef::Classic(s.symbols.individual("A"));
        let b = IndRef::Classic(s.symbols.individual("B"));
        let c = Concept::all(r, Concept::one_of([a, b]));
        let nf = normalize(&c, &mut s).unwrap();
        assert_eq!(
            concept_aspect(&nf, AspectKind::AtMost, Some(r)),
            Aspect::Bound(2)
        );
    }

    #[test]
    fn one_of_aspect() {
        let mut s = Schema::new();
        let gm = IndRef::Classic(s.symbols.individual("GM"));
        let ford = IndRef::Classic(s.symbols.individual("Ford"));
        let c = Concept::one_of([gm.clone(), ford.clone()]);
        let nf = normalize(&c, &mut s).unwrap();
        match concept_aspect(&nf, AspectKind::OneOf, None) {
            Aspect::Enumeration(v) => {
                assert_eq!(v.len(), 2);
                assert!(v.contains(&gm) && v.contains(&ford));
            }
            other => panic!("expected enumeration, got {other:?}"),
        }
    }

    #[test]
    fn unrestricted_role_defaults() {
        let mut s = Schema::new();
        let r = s.define_role("r").unwrap();
        let nf = normalize(&Concept::thing(), &mut s).unwrap();
        assert_eq!(
            concept_aspect(&nf, AspectKind::AtLeast, Some(r)),
            Aspect::Bound(0)
        );
        assert_eq!(
            concept_aspect(&nf, AspectKind::Close, Some(r)),
            Aspect::Closed(false)
        );
        assert_eq!(concept_aspect(&nf, AspectKind::All, Some(r)), Aspect::None);
    }
}
