//! # classic-core
//!
//! The description language and terminological (schema-level) reasoning of
//! the CLASSIC structural data model, after:
//!
//! > A. Borgida, R. J. Brachman, D. L. McGuinness, L. A. Resnick.
//! > *CLASSIC: A Structural Data Model for Objects.* SIGMOD 1989.
//!
//! This crate provides:
//!
//! * the compositional language of structured descriptions
//!   ([`desc::Concept`], Appendix A of the paper);
//! * interning and symbol management ([`symbol::SymbolTable`]);
//! * the schema of named concepts, roles/attributes, primitive atoms with
//!   disjoint groupings, and registered `TEST` functions
//!   ([`schema::Schema`]);
//! * normalization to canonical structural normal forms
//!   ([`normal::normalize`], §2.2/§5);
//! * structural subsumption and equivalence ([`subsume`], §3.5.1), with a
//!   hash-consing interner and memoized subsumption kernel ([`intern`]);
//! * classification into the induced IS-A taxonomy ([`taxonomy`], §5);
//! * schema introspection, the paper's `concept-aspect` operator
//!   ([`aspect`], §3.5.1).
//!
//! Individuals, assertions and rules (the ABox) live in the companion
//! `classic-kb` crate; query processing in `classic-query`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aspect;
pub mod desc;
pub mod error;
pub mod host;
pub mod intern;
pub mod normal;
pub mod same_as;
pub mod schema;
pub mod subsume;
pub mod symbol;
pub mod taxonomy;

pub use desc::{Concept, IndRef, Path};
pub use error::{Clash, ClassicError, Result};
pub use host::{HostClass, HostValue, Layer, F64};
pub use intern::{Kernel, KernelStats, NfId};
pub use normal::{conjoin_expression, normalize, NormalForm, RoleRestriction};
pub use schema::{Schema, TestArg};
pub use subsume::{disjoint, equivalent, subsumes};
pub use symbol::{ConceptName, IndName, PrimId, RoleId, SymbolTable, TestId};
pub use taxonomy::{NodeId, Taxonomy};
