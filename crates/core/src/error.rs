//! Error types shared across the CLASSIC engine.
//!
//! CLASSIC updates are "either accepted or rejected because of constraint
//! violations" (paper §3.1); every rejection surfaces as a
//! [`ClassicError`] and leaves the database unchanged.
//!
//! Some failure modes one might expect have no variants because the
//! design makes them unreachable: host individuals cannot even be
//! addressed by role assertions (only named CLASSIC individuals are
//! assertable), `SAME-AS` imposes single-valuedness rather than requiring
//! a declaration, and asserting a `TEST` concept *tells* the database the
//! test holds — "TEST concepts act just like primitive ones" (§2.2) —
//! rather than running it as a gate.
//!
//! Definition cycles through *names* are mostly ruled out by construction
//! (references must already be defined and redefinition is rejected), but
//! a definition can still be recursive through co-reference: a `SAME-AS`
//! equating an attribute chain with an extension of itself demands an
//! infinitely regressing filler structure. The paper forbids recursive
//! definitions outright; such expressions are rejected with
//! [`ClassicError::RecursiveDefinition`].

use crate::desc::Path;
use crate::symbol::{ConceptName, IndName, PrimId, RoleId, TestId};
use std::fmt;

/// Any error the CLASSIC engine can report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClassicError {
    /// A role name was used without a prior `define-role`.
    ///
    /// `define-role` exists so the DBMS can "later detect errors such as
    /// typos" (§3.1 footnote 3).
    UndefinedRole(RoleId),
    /// A concept name was referenced but never defined.
    UndefinedConcept(ConceptName),
    /// A concept name was defined twice. Definitions "are not supposed to
    /// change meaning over time" (§2.2), so redefinition is rejected.
    ConceptRedefined(ConceptName),
    /// A primitive index was re-registered under an incompatible parent.
    PrimitiveReparented(PrimId),
    /// A `TEST` concept referenced an unregistered test function.
    UndefinedTest(TestId),
    /// `SAME-AS` was given an empty path.
    EmptySameAsPath,
    /// An individual name was used without a prior `create-ind`.
    UnknownIndividual(IndName),
    /// `create-ind` on a name that already exists.
    IndividualExists(IndName),
    /// An assertion would make an individual's description incoherent;
    /// the update is rejected and rolled back (§3.4).
    Inconsistent {
        /// The individual at which the clash was detected.
        individual: Option<IndName>,
        /// Human-readable clash description.
        reason: Clash,
    },
    /// A destructive update the engine does not support (retraction of
    /// *told* facts is supported; this remains for any other destructive
    /// surface a caller might request).
    DestructiveUpdate,
    /// `retract-ind` named a description that was never told of the
    /// individual — only told facts can be retracted, not derived ones.
    NotAsserted(IndName),
    /// `retract-rule` matched no live rule with that antecedent and
    /// consequent.
    NoSuchRule {
        /// The antecedent name as given by the caller.
        antecedent: String,
        /// A nearest-match hint, when one exists: either another
        /// antecedent with live rules at a small edit distance (likely a
        /// typo), or a note that the antecedent's live rules all have
        /// different consequents.
        suggestion: Option<String>,
    },
    /// A definition is recursive — a named concept referring to itself, or
    /// a `SAME-AS` equating an attribute chain with an extension of itself
    /// (directly or through congruence). The paper forbids recursive
    /// definitions (§2.2); without this check the normalizer's fixpoint
    /// would regress forever. The payload positions the cycle (the
    /// offending name or chain, rendered).
    RecursiveDefinition(String),
    /// A user-registered `TEST` recognizer panicked during retrieval; the
    /// payload is preserved so the caller can diagnose the host function.
    RecognizerPanicked(String),
    /// A rule was attached to something other than a defined named concept.
    RuleOnUndefinedConcept(ConceptName),
    /// A syntax or arity problem detected while building a description.
    Malformed(String),
    /// A paged store was asked for its full knowledge base while some
    /// individual segments were still parked on disk — a partial
    /// database must never masquerade as the whole one. The payload
    /// names the unhydrated arena range so the caller knows what to
    /// hydrate (or that `kb_hydrated`/`hydrate_all` is the right call).
    NotHydrated {
        /// First arena index still parked (inclusive).
        lo: usize,
        /// One past the last arena index still parked.
        hi: usize,
        /// Number of segments awaiting hydration.
        segments: usize,
    },
    /// A storage-layer failure (`classic-store`). Unlike [`Malformed`],
    /// the variant pins *which* on-disk file misbehaved and, when known,
    /// the compaction generation it belongs to — a store directory holds
    /// a manifest, several segments, and one or more logs, and an error
    /// that names none of them is undebuggable.
    ///
    /// [`Malformed`]: ClassicError::Malformed
    Storage {
        /// The offending file, as the path the store accessed it by.
        path: String,
        /// The compaction generation the file belongs to, when the store
        /// got far enough to learn it (`None` for e.g. an unreadable
        /// manifest whose generation header never parsed).
        generation: Option<u64>,
        /// What went wrong.
        detail: String,
    },
}

/// The specific contradiction that made a description incoherent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Clash {
    /// `AT-LEAST n` conflicts with an effective `AT-MOST m`, `n > m`.
    Cardinality {
        /// The role whose bounds crossed.
        role: RoleId,
        /// The effective lower bound.
        at_least: u32,
        /// The effective upper bound.
        at_most: u32,
    },
    /// Two distinct primitives from the same disjoint grouping.
    DisjointPrimitives(PrimId, PrimId),
    /// An enumeration became empty (e.g. intersecting disjoint `ONE-OF`s,
    /// or filtering by an incompatible layer).
    EmptyEnumeration,
    /// CLASSIC-THING conjoined with HOST-THING, or two distinct host
    /// classes.
    LayerClash,
    /// A known filler is provably not an instance of a value restriction.
    FillerViolation {
        /// The role whose filler violates the restriction.
        role: RoleId,
    },
    /// A closed role has fewer fillers than an `AT-LEAST` demands, or more
    /// fillers than an `AT-MOST` allows.
    ClosedRoleCardinality {
        /// The closed role.
        role: RoleId,
    },
    /// A `SAME-AS` constraint equated provably distinct individuals (under
    /// the unique-name assumption for named individuals).
    CoreferenceClash {
        /// The final role of the clashing chain.
        role: RoleId,
    },
    /// A `SAME-AS` equated an attribute chain with a proper extension of
    /// itself (possibly via congruence), demanding an infinitely
    /// regressing filler structure — a recursive definition, which the
    /// paper forbids. Carried as a clash so derived descriptions that
    /// *combine* into a cycle are rejected at the KB layer like any other
    /// inconsistency; [`crate::normalize`] converts it into
    /// [`ClassicError::RecursiveDefinition`] for told expressions.
    RecursiveCoreference {
        /// The chain equated with its own extension (empty when the cycle
        /// was caught only by the normalization convergence guard).
        path: Path,
    },
    /// The conjunction was already incoherent for a recorded reason that
    /// has been erased by normalization (kept as a catch-all so ⊥ can be
    /// conjoined without carrying provenance).
    Incoherent,
}

impl fmt::Display for ClassicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClassicError::UndefinedRole(r) => write!(f, "undefined role {r}"),
            ClassicError::UndefinedConcept(c) => {
                write!(f, "undefined concept #{}", c.index())
            }
            ClassicError::ConceptRedefined(c) => {
                write!(f, "concept #{} already defined", c.index())
            }
            ClassicError::PrimitiveReparented(p) => {
                write!(
                    f,
                    "primitive #{} re-registered with a different parent",
                    p.index()
                )
            }
            ClassicError::UndefinedTest(t) => write!(f, "undefined test #{}", t.index()),
            ClassicError::EmptySameAsPath => write!(f, "SAME-AS path is empty"),
            ClassicError::UnknownIndividual(i) => {
                write!(f, "unknown individual #{}", i.index())
            }
            ClassicError::IndividualExists(i) => {
                write!(f, "individual #{} already exists", i.index())
            }
            ClassicError::Inconsistent { individual, reason } => match individual {
                Some(i) => write!(
                    f,
                    "inconsistent update at individual #{}: {reason}",
                    i.index()
                ),
                None => write!(f, "inconsistent description: {reason}"),
            },
            ClassicError::DestructiveUpdate => {
                write!(
                    f,
                    "destructive updates are not supported (paper defers them)"
                )
            }
            ClassicError::NotAsserted(i) => {
                write!(
                    f,
                    "nothing to retract: the description was never told of individual #{}",
                    i.index()
                )
            }
            ClassicError::NoSuchRule {
                antecedent,
                suggestion,
            } => {
                write!(
                    f,
                    "unknown rule: no live rule with antecedent {antecedent:?} \
                     matches the given consequent"
                )?;
                if let Some(s) = suggestion {
                    write!(f, " ({s})")?;
                }
                Ok(())
            }
            ClassicError::RecursiveDefinition(pos) => {
                write!(f, "recursive definition: {pos}")
            }
            ClassicError::RecognizerPanicked(msg) => {
                write!(f, "a TEST recognizer panicked during retrieval: {msg}")
            }
            ClassicError::RuleOnUndefinedConcept(c) => {
                write!(f, "rule attached to undefined concept #{}", c.index())
            }
            ClassicError::Malformed(m) => write!(f, "malformed expression: {m}"),
            ClassicError::NotHydrated { lo, hi, segments } => {
                write!(
                    f,
                    "store is partially hydrated: {segments} segment(s) covering \
                     arena range {lo}..{hi} are not loaded; call hydrate_all() \
                     or use kb_hydrated()"
                )
            }
            ClassicError::Storage {
                path,
                generation,
                detail,
            } => {
                write!(f, "storage error at {path}")?;
                if let Some(g) = generation {
                    write!(f, " (generation {g})")?;
                }
                write!(f, ": {detail}")
            }
        }
    }
}

impl fmt::Display for Clash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Clash::Cardinality {
                role,
                at_least,
                at_most,
            } => write!(f, "AT-LEAST {at_least} exceeds AT-MOST {at_most} on {role}"),
            Clash::DisjointPrimitives(a, b) => write!(
                f,
                "disjoint primitives #{} and #{} conjoined",
                a.index(),
                b.index()
            ),
            Clash::EmptyEnumeration => write!(f, "empty ONE-OF enumeration"),
            Clash::LayerClash => write!(f, "CLASSIC-THING/HOST-THING layer clash"),
            Clash::FillerViolation { role } => {
                write!(f, "known filler violates value restriction on {role}")
            }
            Clash::ClosedRoleCardinality { role } => {
                write!(f, "closed role {role} violates its cardinality bounds")
            }
            Clash::CoreferenceClash { role } => {
                write!(f, "SAME-AS equates distinct individuals via {role}")
            }
            Clash::RecursiveCoreference { path } => {
                if path.is_empty() {
                    write!(f, "SAME-AS constraints form a recursive chain")
                } else {
                    write!(f, "SAME-AS equates chain (")?;
                    for (i, r) in path.iter().enumerate() {
                        if i > 0 {
                            write!(f, " ")?;
                        }
                        write!(f, "{r}")?;
                    }
                    write!(f, ") with an extension of itself")
                }
            }
            Clash::Incoherent => write!(f, "incoherent description"),
        }
    }
}

impl std::error::Error for ClassicError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ClassicError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_without_panicking() {
        let errs = [
            ClassicError::UndefinedRole(RoleId::from_index(1)),
            ClassicError::DestructiveUpdate,
            ClassicError::Inconsistent {
                individual: Some(IndName::from_index(0)),
                reason: Clash::EmptyEnumeration,
            },
            ClassicError::Malformed("x".into()),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn storage_errors_name_the_file_and_generation() {
        let with_gen = ClassicError::Storage {
            path: "/db/kb.manifest".into(),
            generation: Some(7),
            detail: "segment hash mismatch".into(),
        };
        let s = with_gen.to_string();
        assert!(s.contains("/db/kb.manifest"));
        assert!(s.contains("generation 7"));
        assert!(s.contains("hash mismatch"));
        let without = ClassicError::Storage {
            path: "/db/kb.manifest".into(),
            generation: None,
            detail: "unreadable".into(),
        };
        assert!(!without.to_string().contains("generation"));
    }

    #[test]
    fn clash_display() {
        let c = Clash::Cardinality {
            role: RoleId::from_index(2),
            at_least: 3,
            at_most: 1,
        };
        let s = c.to_string();
        assert!(s.contains("AT-LEAST 3"));
        assert!(s.contains("AT-MOST 1"));
    }
}
