//! Structural subsumption over normal forms.
//!
//! `concept-subsumes[C1, C2]` "is true if and only if in every state any
//! individual satisfying C2 is necessarily (i.e., by definition) also an
//! instance of C1" (paper §3.5.1). Because normalization has already
//! unfolded definitions, merged conjunctions and propagated constructor
//! interactions, subsumption is a single structural pass: every piece of
//! the subsumer must be accounted for in the subsumee. The pass visits
//! each subsumer node at most once against the corresponding subsumee
//! node, giving the paper's §5 complexity: "the subsumption relationship
//! is established in time proportional to the sizes of the two concepts"
//! (experiment E1 measures this product bound).
//!
//! Deliberately (§5): there is no `OR`/`NOT`, `ONE-OF` is compared by
//! individual identity only, `TEST` and primitive atoms are identity-only,
//! and `SAME-AS` implication uses the bounded path congruence of
//! [`crate::same_as`].

use crate::normal::NormalForm;

/// Does `big` subsume `small`? (Every instance of `small` is necessarily
/// an instance of `big`.)
///
/// ```
/// use classic_core::{normalize, subsumes, Concept, Schema};
///
/// let mut schema = Schema::new();
/// let r = schema.define_role("wheel")?;
/// let two = normalize(&Concept::AtLeast(2, r), &mut schema)?;
/// let three = normalize(&Concept::AtLeast(3, r), &mut schema)?;
/// assert!(subsumes(&two, &three)); // ≥3 wheels is a kind of ≥2 wheels
/// assert!(!subsumes(&three, &two));
/// # Ok::<(), classic_core::ClassicError>(())
/// ```
pub fn subsumes(big: &NormalForm, small: &NormalForm) -> bool {
    // ⊥ is subsumed by everything; only ⊥ subsumes ⊥.
    if small.is_incoherent() {
        return true;
    }
    if big.is_incoherent() {
        return false;
    }
    // Layer lattice.
    if !big.layer.subsumes(small.layer) {
        return false;
    }
    // Primitive and test atoms: necessary conditions with unspecified
    // differentia; the subsumee must carry every atom the subsumer does.
    if !big.prims.is_subset(&small.prims) {
        return false;
    }
    if !big.tests.is_subset(&small.tests) {
        return false;
    }
    // Enumerations: (ONE-OF S1) ⊒ D only if D is itself enumerated inside
    // S1 (identity-based, §2.2: "inferences concerning the equivalence of
    // concepts are affected only by the identity of such individuals").
    if let Some(s1) = &big.one_of {
        match &small.one_of {
            Some(s2) => {
                if !s2.is_subset(s1) {
                    return false;
                }
            }
            None => return false,
        }
    }
    // Role restrictions. A host-layer subsumee can have no role fillers
    // at all ("host individuals cannot have roles", §3.2), so every role
    // behaves as closed and empty: upper bounds, closure and value
    // restrictions hold vacuously, while demands for fillers fail.
    let small_is_host = matches!(small.layer, crate::host::Layer::Host(_));
    for (&r, rr1) in &big.roles {
        let rr2 = small.roles.get(&r);
        let (min2, max2, closed2, fillers2, all2) = if small_is_host {
            (0, 0, true, None, None)
        } else {
            match rr2 {
                Some(rr2) => (
                    rr2.min_count(),
                    rr2.max_count(),
                    rr2.closed,
                    Some(&rr2.fillers),
                    rr2.all.as_deref(),
                ),
                None => (0, u32::MAX, false, None, None),
            }
        };
        if rr1.at_least > min2 {
            return false;
        }
        if let Some(m1) = rr1.at_most {
            if max2 > m1 {
                return false;
            }
        }
        if rr1.closed && !closed2 {
            return false;
        }
        if !rr1.fillers.is_empty() {
            match fillers2 {
                Some(f2) => {
                    if !rr1.fillers.is_subset(f2) {
                        return false;
                    }
                }
                None => return false,
            }
        }
        if let Some(all1) = &rr1.all {
            // A role that can have no fillers satisfies any ALL vacuously.
            if max2 == 0 {
                continue;
            }
            match all2 {
                Some(all2) => {
                    if !subsumes(all1, all2) {
                        return false;
                    }
                }
                None => return false,
            }
        }
    }
    // Co-reference constraints: each of the subsumer's pairs must follow
    // from the subsumee's path congruence.
    if !big.same_as.implied_by(&small.same_as) {
        return false;
    }
    true
}

/// Are the two concepts equivalent (mutual subsumption)?
///
/// "Two concepts are equivalent if and only if they subsume each other"
/// (§3.5.1). Structural equality of normal forms is a sound fast path.
pub fn equivalent(a: &NormalForm, b: &NormalForm) -> bool {
    a == b || (subsumes(a, b) && subsumes(b, a))
}

/// Are the two concepts provably disjoint? (Their conjunction is ⊥.)
/// Used for the "possible answers" computation under the open-world
/// assumption: an individual *might* satisfy a query unless its derived
/// description is disjoint from it.
pub fn disjoint(a: &NormalForm, b: &NormalForm, schema: &crate::schema::Schema) -> bool {
    let mut meet = a.clone();
    meet.conjoin(b, schema);
    meet.is_incoherent()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::desc::{Concept, IndRef};
    use crate::normal::normalize;
    use crate::schema::Schema;
    use crate::symbol::RoleId;

    struct Fix {
        schema: Schema,
        r: RoleId,
    }

    fn fix() -> Fix {
        let mut schema = Schema::new();
        let r = schema.define_role("thing-driven").unwrap();
        schema
            .define_concept("CAR", Concept::primitive(Concept::thing(), "car"))
            .unwrap();
        schema
            .define_concept(
                "EXPENSIVE-THING",
                Concept::primitive(Concept::thing(), "expensive"),
            )
            .unwrap();
        Fix { schema, r }
    }

    fn nf(fix: &mut Fix, c: &Concept) -> NormalForm {
        normalize(c, &mut fix.schema).unwrap()
    }

    fn name(fix: &mut Fix, n: &str) -> Concept {
        Concept::Name(fix.schema.symbols.concept(n))
    }

    #[test]
    fn thing_subsumes_everything() {
        let mut f = fix();
        let _r = f.r;
        let car = name(&mut f, "CAR");
        let top = nf(&mut f, &Concept::thing());
        let carnf = nf(&mut f, &car);
        assert!(subsumes(&top, &carnf));
        assert!(!subsumes(&carnf, &top));
    }

    #[test]
    fn conjunction_is_below_conjuncts() {
        let mut f = fix();
        let _r = f.r;
        let car = name(&mut f, "CAR");
        let exp = name(&mut f, "EXPENSIVE-THING");
        let both = Concept::and([car.clone(), exp.clone()]);
        let car_nf = nf(&mut f, &car);
        let exp_nf = nf(&mut f, &exp);
        let both_nf = nf(&mut f, &both);
        assert!(subsumes(&car_nf, &both_nf));
        assert!(subsumes(&exp_nf, &both_nf));
        assert!(!subsumes(&both_nf, &car_nf));
    }

    #[test]
    fn paper_all_conjunction_equivalence() {
        // (AND (ALL r CAR) (ALL r EXPENSIVE-THING))
        //   ≡ (ALL r (AND CAR EXPENSIVE-THING))          — §2.2
        let mut f = fix();
        let r = f.r;
        let car = name(&mut f, "CAR");
        let exp = name(&mut f, "EXPENSIVE-THING");
        let lhs = Concept::and([Concept::all(r, car.clone()), Concept::all(r, exp.clone())]);
        let rhs = Concept::all(r, Concept::and([car, exp]));
        let l = nf(&mut f, &lhs);
        let rr = nf(&mut f, &rhs);
        assert_eq!(l, rr);
        assert!(equivalent(&l, &rr));
    }

    #[test]
    fn paper_one_of_intersection_equivalence() {
        // (ALL r (AND (ONE-OF Ford-1 Volvo-2 Toyota-3)
        //             (ONE-OF Volvo-2 Toyota-3 VW-4)))
        //   ≡ (AND (ALL r (ONE-OF Volvo-2 Toyota-3)) (AT-MOST 2 r)) — §2.2
        let mut f = fix();
        let r = f.r;
        let ford = IndRef::Classic(f.schema.symbols.individual("Ford-1"));
        let volvo = IndRef::Classic(f.schema.symbols.individual("Volvo-2"));
        let toyota = IndRef::Classic(f.schema.symbols.individual("Toyota-3"));
        let vw = IndRef::Classic(f.schema.symbols.individual("VW-4"));
        let lhs = Concept::all(
            r,
            Concept::and([
                Concept::one_of([ford, volvo.clone(), toyota.clone()]),
                Concept::one_of([volvo.clone(), toyota.clone(), vw]),
            ]),
        );
        let rhs = Concept::and([
            Concept::all(r, Concept::one_of([volvo, toyota])),
            Concept::AtMost(2, r),
        ]);
        let l = nf(&mut f, &lhs);
        let rr = nf(&mut f, &rhs);
        assert_eq!(l, rr);
        assert!(equivalent(&l, &rr));
    }

    #[test]
    fn at_least_orders_numerically() {
        let mut f = fix();
        let r = f.r;
        let two = nf(&mut f, &Concept::AtLeast(2, r));
        let three = nf(&mut f, &Concept::AtLeast(3, r));
        assert!(subsumes(&two, &three));
        assert!(!subsumes(&three, &two));
    }

    #[test]
    fn at_most_orders_inversely() {
        let mut f = fix();
        let r = f.r;
        let two = nf(&mut f, &Concept::AtMost(2, r));
        let three = nf(&mut f, &Concept::AtMost(3, r));
        assert!(subsumes(&three, &two));
        assert!(!subsumes(&two, &three));
    }

    #[test]
    fn all_is_covariant() {
        let mut f = fix();
        let r = f.r;
        let car = name(&mut f, "CAR");
        let exp = name(&mut f, "EXPENSIVE-THING");
        let all_car = nf(&mut f, &Concept::all(r, car.clone()));
        let all_both = nf(&mut f, &Concept::all(r, Concept::and([car, exp])));
        assert!(subsumes(&all_car, &all_both));
        assert!(!subsumes(&all_both, &all_car));
    }

    #[test]
    fn all_vacuous_under_at_most_zero() {
        let mut f = fix();
        let r = f.r;
        let car = name(&mut f, "CAR");
        let all_car = nf(&mut f, &Concept::all(r, car));
        let none = nf(&mut f, &Concept::AtMost(0, r));
        // Something with no fillers trivially drives only CARs.
        assert!(subsumes(&all_car, &none));
    }

    #[test]
    fn bottom_is_subsumed_by_everything() {
        let mut f = fix();
        let r = f.r;
        let bot = nf(
            &mut f,
            &Concept::and([Concept::AtLeast(2, r), Concept::AtMost(1, r)]),
        );
        assert!(bot.is_incoherent());
        let car = name(&mut f, "CAR");
        let car_nf = nf(&mut f, &car);
        assert!(subsumes(&car_nf, &bot));
        assert!(!subsumes(&bot, &car_nf));
        assert!(subsumes(&bot, &bot));
    }

    #[test]
    fn fills_entails_at_least() {
        let mut f = fix();
        let r = f.r;
        let v = IndRef::Classic(f.schema.symbols.individual("Volvo-17"));
        let w = IndRef::Classic(f.schema.symbols.individual("Saab-1"));
        let fills = nf(&mut f, &Concept::Fills(r, vec![v, w]));
        let two = nf(&mut f, &Concept::AtLeast(2, r));
        assert!(subsumes(&two, &fills));
        let three = nf(&mut f, &Concept::AtLeast(3, r));
        assert!(!subsumes(&three, &fills));
    }

    #[test]
    fn close_with_fills_entails_at_most() {
        let mut f = fix();
        let r = f.r;
        let v = IndRef::Classic(f.schema.symbols.individual("Volvo-17"));
        let d = nf(
            &mut f,
            &Concept::and([Concept::Fills(r, vec![v]), Concept::Close(r)]),
        );
        let one = nf(&mut f, &Concept::AtMost(1, r));
        assert!(subsumes(&one, &d));
        // And conversely, AT-MOST met by fillers implies closure (§3.3):
        // (AND (FILLS r V) (AT-MOST 1 r)) ≡ (AND (FILLS r V) (CLOSE r)).
        let v2 = IndRef::Classic(f.schema.symbols.individual("Volvo-17"));
        let d2 = nf(
            &mut f,
            &Concept::and([Concept::Fills(r, vec![v2.clone()]), Concept::AtMost(1, r)]),
        );
        assert!(d2.roles[&r].closed);
        let d3 = nf(
            &mut f,
            &Concept::and([Concept::Fills(r, vec![v2]), Concept::Close(r)]),
        );
        assert_eq!(d2, d3);
        assert!(equivalent(&d2, &d3));
        // A bare (CLOSE r) concept denotes "r has no fillers at all":
        // closure with no known fillers pins the role empty.
        let closed = nf(&mut f, &Concept::Close(r));
        let none = nf(&mut f, &Concept::AtMost(0, r));
        assert_eq!(closed, none);
    }

    #[test]
    fn same_as_implication() {
        let mut f = fix();
        let _r = f.r;
        let a = f.schema.define_attribute("driver").unwrap();
        let b = f.schema.define_attribute("payer").unwrap();
        let c = f.schema.define_attribute("owner").unwrap();
        let strong = nf(
            &mut f,
            &Concept::and([
                Concept::SameAs(vec![a], vec![b]),
                Concept::SameAs(vec![b], vec![c]),
            ]),
        );
        let weak = nf(&mut f, &Concept::SameAs(vec![a], vec![c]));
        assert!(subsumes(&weak, &strong));
        assert!(!subsumes(&strong, &weak));
    }

    #[test]
    fn disjoint_primitives_conjoin_to_bottom() {
        let mut f = fix();
        let _r = f.r;
        f.schema
            .define_concept("PERSON", Concept::primitive(Concept::thing(), "person"))
            .unwrap();
        let person = f.schema.symbols.find_concept("PERSON").unwrap();
        f.schema
            .define_concept(
                "MALE",
                Concept::disjoint_primitive(Concept::Name(person), "gender", "male"),
            )
            .unwrap();
        f.schema
            .define_concept(
                "FEMALE",
                Concept::disjoint_primitive(Concept::Name(person), "gender", "female"),
            )
            .unwrap();
        let male = name(&mut f, "MALE");
        let female = name(&mut f, "FEMALE");
        let both = nf(&mut f, &Concept::and([male.clone(), female.clone()]));
        assert!(both.is_incoherent());
        let m = nf(&mut f, &male);
        let fe = nf(&mut f, &female);
        assert!(disjoint(&m, &fe, &f.schema));
    }

    #[test]
    fn disjoint_detects_one_of_clash() {
        let mut f = fix();
        let _r = f.r;
        let a = IndRef::Classic(f.schema.symbols.individual("A"));
        let b = IndRef::Classic(f.schema.symbols.individual("B"));
        let only_a = nf(&mut f, &Concept::one_of([a]));
        let only_b = nf(&mut f, &Concept::one_of([b]));
        assert!(disjoint(&only_a, &only_b, &f.schema));
        assert!(!disjoint(&only_a, &only_a, &f.schema));
    }

    #[test]
    fn tests_are_identity_only() {
        let mut f = fix();
        let _r = f.r;
        let t1 = f.schema.register_test("even", |_| true);
        let t2 = f.schema.register_test("positive", |_| true);
        let a = nf(&mut f, &Concept::Test(t1));
        let b = nf(&mut f, &Concept::Test(t2));
        let ab = nf(
            &mut f,
            &Concept::and([Concept::Test(t1), Concept::Test(t2)]),
        );
        assert!(subsumes(&a, &ab));
        assert!(subsumes(&b, &ab));
        assert!(!subsumes(&a, &b));
        assert!(equivalent(&a, &nf(&mut f, &Concept::Test(t1))));
    }

    #[test]
    fn subsumption_is_a_preorder() {
        // Spot-check reflexivity + transitivity on a family of concepts.
        let mut f = fix();
        let r = f.r;
        let car = name(&mut f, "CAR");
        let exp = name(&mut f, "EXPENSIVE-THING");
        let cs = [
            Concept::thing(),
            car.clone(),
            exp.clone(),
            Concept::and([car.clone(), exp.clone()]),
            Concept::all(r, car.clone()),
            Concept::and([Concept::all(r, car), Concept::AtLeast(1, r)]),
        ];
        let nfs: Vec<_> = cs.iter().map(|c| nf(&mut f, c)).collect();
        for a in &nfs {
            assert!(subsumes(a, a));
            for b in &nfs {
                for c in &nfs {
                    if subsumes(a, b) && subsumes(b, c) {
                        assert!(subsumes(a, c));
                    }
                }
            }
        }
    }
}
