//! Hash-consed normal forms and the memoized subsumption kernel.
//!
//! Classification and query answering call [`crate::subsume::subsumes`] on
//! the same pairs of normal forms over and over: every taxonomy insert
//! re-tests the query against a frontier of node forms, and every retrieve
//! re-classifies a query that was often seen before. Both costs collapse
//! once normal forms are *interned*:
//!
//! * an [`Interner`] hash-conses each distinct [`NormalForm`] to a small
//!   dense [`NfId`], so structural equality becomes id equality (`O(1)`
//!   instead of a deep walk), and
//! * a [`Kernel`] memoizes `subsumes(big, small)` on the id pair. Because
//!   `subsumes` is a pure function of the two forms (it never consults the
//!   schema) and interned forms are immutable, a memo entry can never go
//!   stale — schema growth adds *new* ids but never invalidates old ones.
//!
//! The kernel's counters are [`classic_obs`] registry series
//! ([`KernelObs`]); [`KernelStats`] is a point-in-time *view* over them,
//! so the bench harness (experiment E9), `Kb` callers, and the metrics
//! exposition all read the same atomics.

use crate::normal::NormalForm;
use crate::subsume::subsumes;
use classic_obs::{Counter, Gauge, Registry};
use std::collections::HashMap;
use std::sync::Arc;

/// Identity of an interned normal form. Two [`NfId`]s are equal iff the
/// forms they denote are structurally equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NfId(u32);

impl NfId {
    /// Raw index into the interner's arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Hash-consing table: each distinct normal form is stored once and named
/// by a dense [`NfId`].
#[derive(Debug, Clone, Default)]
pub struct Interner {
    by_form: HashMap<Arc<NormalForm>, NfId>,
    forms: Vec<Arc<NormalForm>>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Self {
        Interner::default()
    }

    /// The id for `nf`, interning a copy if this form is new.
    pub fn intern(&mut self, nf: &NormalForm) -> NfId {
        if let Some(&id) = self.by_form.get(nf) {
            return id;
        }
        let id = NfId(self.forms.len() as u32);
        let arc = Arc::new(nf.clone());
        self.forms.push(Arc::clone(&arc));
        self.by_form.insert(arc, id);
        id
    }

    /// The form an id denotes.
    pub fn resolve(&self, id: NfId) -> &NormalForm {
        &self.forms[id.index()]
    }

    /// Number of distinct forms interned.
    pub fn len(&self) -> usize {
        self.forms.len()
    }

    /// Whether no form has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.forms.is_empty()
    }
}

/// Counter snapshot for the kernel (experiment E9's instrumentation).
/// Since the observability migration this is a *view*: every field except
/// `interned` (a structural fact of the interner) reads a
/// [`classic_obs`] registry series via [`KernelObs`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Distinct normal forms interned.
    pub interned: u64,
    /// Intern calls answered by an existing id.
    pub intern_hits: u64,
    /// Subsumption queries answered from the memo (or by id equality).
    pub memo_hits: u64,
    /// Subsumption queries that ran the structural comparison.
    pub memo_misses: u64,
    /// Times the taxonomy's closure bitsets were re-laid-out for capacity.
    pub closure_rebuilds: u64,
}

/// The kernel's metric handles: `classic-obs` counters shared with the
/// owning registry (or detached stand-ins when the kernel was built
/// without one). Cloning shares the underlying atomics.
#[derive(Debug, Clone)]
pub struct KernelObs {
    /// Every memoized subsumption query (hit or miss).
    pub subsume_tests: Counter,
    /// Queries answered by id equality or the memo.
    pub memo_hits: Counter,
    /// Queries that ran the structural comparison.
    pub memo_misses: Counter,
    /// Intern calls answered by an existing id.
    pub intern_hits: Counter,
    /// Distinct normal forms currently interned.
    pub interned: Gauge,
    /// Closure bitset re-layouts (bumped by the taxonomy).
    pub closure_rebuilds: Counter,
}

impl KernelObs {
    /// Handles not attached to any registry (standalone kernels, tests).
    pub fn detached() -> KernelObs {
        KernelObs {
            subsume_tests: Counter::detached("classic_subsume_tests_total"),
            memo_hits: Counter::detached("classic_subsume_memo_hits_total"),
            memo_misses: Counter::detached("classic_subsume_memo_misses_total"),
            intern_hits: Counter::detached("classic_intern_hits_total"),
            interned: Gauge::detached("classic_nf_interned"),
            closure_rebuilds: Counter::detached("classic_closure_rebuilds_total"),
        }
    }

    /// Register the kernel series in `registry`. Panics on a name
    /// collision — the kernel is registered once per registry, by its
    /// owning taxonomy.
    pub fn register(registry: &Registry) -> KernelObs {
        let c = |name: &str, help: &str| {
            registry
                .counter(name, help)
                .expect("kernel metric registration")
        };
        KernelObs {
            subsume_tests: c(
                "classic_subsume_tests_total",
                "memoized subsumption queries (hits + misses)",
            ),
            memo_hits: c(
                "classic_subsume_memo_hits_total",
                "subsumption queries answered by id equality or the memo",
            ),
            memo_misses: c(
                "classic_subsume_memo_misses_total",
                "subsumption queries that ran the structural comparison",
            ),
            intern_hits: c(
                "classic_intern_hits_total",
                "normal-form intern calls answered by an existing id",
            ),
            interned: registry
                .gauge("classic_nf_interned", "distinct normal forms interned")
                .expect("kernel metric registration"),
            closure_rebuilds: c(
                "classic_closure_rebuilds_total",
                "taxonomy closure bitset re-layouts",
            ),
        }
    }
}

/// The memoized subsumption kernel: an interner plus a `(big, small) →
/// bool` cache over id pairs.
#[derive(Debug, Clone)]
pub struct Kernel {
    interner: Interner,
    memo: HashMap<(NfId, NfId), bool>,
    obs: KernelObs,
}

impl Default for Kernel {
    fn default() -> Self {
        Kernel::new()
    }
}

impl Kernel {
    /// An empty kernel with detached (registry-less) counters.
    pub fn new() -> Self {
        Kernel::with_obs(KernelObs::detached())
    }

    /// An empty kernel whose counters are the given obs handles.
    pub fn with_obs(obs: KernelObs) -> Self {
        Kernel {
            interner: Interner::new(),
            memo: HashMap::new(),
            obs,
        }
    }

    /// The kernel's metric handles (the taxonomy bumps
    /// `closure_rebuilds` through this).
    pub fn obs(&self) -> &KernelObs {
        &self.obs
    }

    /// Intern `nf`, returning its id.
    pub fn intern(&mut self, nf: &NormalForm) -> NfId {
        let before = self.interner.len();
        let id = self.interner.intern(nf);
        if self.interner.len() == before {
            self.obs.intern_hits.bump();
        } else {
            self.obs.interned.set(self.interner.len() as u64);
        }
        id
    }

    /// The form behind an id.
    pub fn nf(&self, id: NfId) -> &NormalForm {
        self.interner.resolve(id)
    }

    /// Memoized `subsumes(big, small)` over interned ids.
    ///
    /// Identical ids answer immediately (subsumption is reflexive); other
    /// pairs consult the memo and fall back to the structural test.
    pub fn subsumes_ids(&mut self, big: NfId, small: NfId) -> bool {
        self.obs.subsume_tests.bump();
        if big == small {
            self.obs.memo_hits.bump();
            return true;
        }
        if let Some(&v) = self.memo.get(&(big, small)) {
            self.obs.memo_hits.bump();
            return v;
        }
        self.obs.memo_misses.bump();
        let v = subsumes(self.interner.resolve(big), self.interner.resolve(small));
        self.memo.insert((big, small), v);
        v
    }

    /// Intern both forms and answer `subsumes(big, small)` memoized.
    pub fn subsumes_nf(&mut self, big: &NormalForm, small: &NormalForm) -> bool {
        let b = self.intern(big);
        let s = self.intern(small);
        self.subsumes_ids(b, s)
    }

    /// Number of memo entries currently cached.
    pub fn memo_len(&self) -> usize {
        self.memo.len()
    }

    /// Snapshot of every counter — a view over the obs registry series
    /// (plus the interner's structural size).
    pub fn stats(&self) -> KernelStats {
        KernelStats {
            interned: self.interner.len() as u64,
            intern_hits: self.obs.intern_hits.get(),
            memo_hits: self.obs.memo_hits.get(),
            memo_misses: self.obs.memo_misses.get(),
            closure_rebuilds: self.obs.closure_rebuilds.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::desc::Concept;
    use crate::normal::normalize;
    use crate::schema::Schema;

    #[test]
    fn interning_is_hash_consing() {
        let mut schema = Schema::new();
        let r = schema.define_role("r").unwrap();
        let mut interner = Interner::new();
        let a = normalize(&Concept::AtLeast(2, r), &mut schema).unwrap();
        let b = normalize(
            &Concept::and([Concept::AtLeast(2, r), Concept::AtLeast(1, r)]),
            &mut schema,
        )
        .unwrap();
        let c = normalize(&Concept::AtLeast(3, r), &mut schema).unwrap();
        let ia = interner.intern(&a);
        let ib = interner.intern(&b);
        let ic = interner.intern(&c);
        assert_eq!(ia, ib, "structurally equal forms share an id");
        assert_ne!(ia, ic);
        assert_eq!(interner.len(), 2, "the duplicate did not grow the arena");
        assert_eq!(interner.resolve(ia), &a);
    }

    #[test]
    fn all_bottoms_share_one_id() {
        let mut schema = Schema::new();
        let r = schema.define_role("r").unwrap();
        let s = schema.define_role("s").unwrap();
        let mut interner = Interner::new();
        let b1 = normalize(
            &Concept::and([Concept::AtLeast(2, r), Concept::AtMost(1, r)]),
            &mut schema,
        )
        .unwrap();
        let b2 = normalize(
            &Concept::and([Concept::AtLeast(5, s), Concept::AtMost(0, s)]),
            &mut schema,
        )
        .unwrap();
        assert!(b1.is_incoherent() && b2.is_incoherent());
        assert_eq!(interner.intern(&b1), interner.intern(&b2));
    }

    #[test]
    fn kernel_memoizes_and_agrees_with_subsumes() {
        let mut schema = Schema::new();
        let r = schema.define_role("r").unwrap();
        let big = normalize(&Concept::AtLeast(1, r), &mut schema).unwrap();
        let small = normalize(&Concept::AtLeast(3, r), &mut schema).unwrap();
        let mut kernel = Kernel::new();
        assert_eq!(kernel.subsumes_nf(&big, &small), subsumes(&big, &small));
        assert_eq!(kernel.subsumes_nf(&small, &big), subsumes(&small, &big));
        let before = kernel.stats();
        assert_eq!(before.memo_misses, 2);
        // Repeat: all hits, no new misses.
        assert!(kernel.subsumes_nf(&big, &small));
        assert!(!kernel.subsumes_nf(&small, &big));
        let after = kernel.stats();
        assert_eq!(after.memo_misses, before.memo_misses);
        assert_eq!(after.memo_hits, before.memo_hits + 2);
    }

    #[test]
    fn reflexive_pairs_never_miss() {
        let mut schema = Schema::new();
        let r = schema.define_role("r").unwrap();
        let nf = normalize(&Concept::AtLeast(1, r), &mut schema).unwrap();
        let mut kernel = Kernel::new();
        let id = kernel.intern(&nf);
        assert!(kernel.subsumes_ids(id, id));
        assert_eq!(kernel.stats().memo_misses, 0);
    }
}
