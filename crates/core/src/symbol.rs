//! Interning layer for all names used by the CLASSIC engine.
//!
//! CLASSIC descriptions reference four kinds of names: role names, concept
//! names, individual names, and the atomic indices that identify primitive
//! concepts ("`car` here is just an atomic index", paper §2.1.1). All of
//! them are interned into dense `u32` ids so that descriptions, normal
//! forms and the knowledge base can cross-reference each other without
//! owning (or reference-counting) strings. The ids are newtypes so that a
//! `RoleId` can never be confused with a `ConceptName`.

use std::collections::HashMap;
use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// Raw index, usable as a dense array key.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Rebuild an id from a raw index (e.g. when deserializing).
            /// The caller is responsible for the index being valid for the
            /// `SymbolTable` it will be used with.
            #[inline]
            pub fn from_index(ix: usize) -> Self {
                $name(ix as u32)
            }
        }
    };
}

define_id! {
    /// An interned role (binary relationship) name, e.g. `thing-driven`.
    RoleId
}
define_id! {
    /// An interned named-concept identifier, e.g. `RICH-KID`.
    ///
    /// This names an entry in the schema; it is distinct from the taxonomy
    /// node the concept classifies into.
    ConceptName
}
define_id! {
    /// An interned CLASSIC individual name, e.g. `Rocky`.
    IndName
}
define_id! {
    /// The identity of a primitive concept atom.
    ///
    /// "Primitive concepts with the same parent but with different indices
    /// are distinct" (§2.1.1): the atom is keyed by its index symbol (and,
    /// for disjoint primitives, its grouping).
    PrimId
}
define_id! {
    /// The identity of a `TEST` concept's registered host-language function.
    TestId
}

impl fmt::Display for RoleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "role#{}", self.0)
    }
}

/// One namespace of interned strings.
#[derive(Debug, Default, Clone)]
struct Interner {
    names: Vec<String>,
    by_name: HashMap<String, u32>,
}

impl Interner {
    fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        id
    }

    fn get(&self, name: &str) -> Option<u32> {
        self.by_name.get(name).copied()
    }

    fn resolve(&self, id: u32) -> &str {
        &self.names[id as usize]
    }

    fn len(&self) -> usize {
        self.names.len()
    }
}

/// The symbol table holding every interned name, one namespace per id kind.
///
/// Role, concept, and individual names live in separate namespaces, mirroring
/// the paper's orthographic convention (§2.1.1 footnote 1): `CONCEPTS` in
/// upper case, `roles` in lower case, `Individuals` in mixed case — the same
/// spelling may denote a role and a concept without collision.
#[derive(Debug, Default, Clone)]
pub struct SymbolTable {
    roles: Interner,
    concepts: Interner,
    individuals: Interner,
    prims: Interner,
    tests: Interner,
}

impl SymbolTable {
    /// An empty symbol table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a role name.
    pub fn role(&mut self, name: &str) -> RoleId {
        RoleId(self.roles.intern(name))
    }

    /// Intern a concept name.
    pub fn concept(&mut self, name: &str) -> ConceptName {
        ConceptName(self.concepts.intern(name))
    }

    /// Intern an individual name.
    pub fn individual(&mut self, name: &str) -> IndName {
        IndName(self.individuals.intern(name))
    }

    /// Intern a primitive-atom key.
    pub fn prim(&mut self, key: &str) -> PrimId {
        PrimId(self.prims.intern(key))
    }

    /// Intern a test-function name.
    pub fn test(&mut self, name: &str) -> TestId {
        TestId(self.tests.intern(name))
    }

    /// Look up a role without interning it.
    pub fn find_role(&self, name: &str) -> Option<RoleId> {
        self.roles.get(name).map(RoleId)
    }

    /// Look up a concept name without interning it.
    pub fn find_concept(&self, name: &str) -> Option<ConceptName> {
        self.concepts.get(name).map(ConceptName)
    }

    /// Look up an individual name without interning it.
    pub fn find_individual(&self, name: &str) -> Option<IndName> {
        self.individuals.get(name).map(IndName)
    }

    /// Look up a test name without interning it.
    pub fn find_test(&self, name: &str) -> Option<TestId> {
        self.tests.get(name).map(TestId)
    }

    /// The role name for `id`.
    pub fn role_name(&self, id: RoleId) -> &str {
        self.roles.resolve(id.0)
    }

    /// The concept name for `id`.
    pub fn concept_name(&self, id: ConceptName) -> &str {
        self.concepts.resolve(id.0)
    }

    /// The individual name for `id`.
    pub fn individual_name(&self, id: IndName) -> &str {
        self.individuals.resolve(id.0)
    }

    /// The primitive-atom key for `id`.
    pub fn prim_key(&self, id: PrimId) -> &str {
        self.prims.resolve(id.0)
    }

    /// The test-function name for `id`.
    pub fn test_name(&self, id: TestId) -> &str {
        self.tests.resolve(id.0)
    }

    /// Number of interned role names.
    pub fn role_count(&self) -> usize {
        self.roles.len()
    }

    /// Number of interned concept names.
    pub fn concept_count(&self) -> usize {
        self.concepts.len()
    }

    /// Number of interned individual names.
    pub fn individual_count(&self) -> usize {
        self.individuals.len()
    }

    /// Iterate over all interned concept names.
    pub fn concepts(&self) -> impl Iterator<Item = (ConceptName, &str)> {
        self.concepts
            .names
            .iter()
            .enumerate()
            .map(|(i, n)| (ConceptName(i as u32), n.as_str()))
    }

    /// Iterate over all interned role names.
    pub fn roles(&self) -> impl Iterator<Item = (RoleId, &str)> {
        self.roles
            .names
            .iter()
            .enumerate()
            .map(|(i, n)| (RoleId(i as u32), n.as_str()))
    }

    /// Iterate over all interned individual names.
    pub fn individuals(&self) -> impl Iterator<Item = (IndName, &str)> {
        self.individuals
            .names
            .iter()
            .enumerate()
            .map(|(i, n)| (IndName(i as u32), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.role("thing-driven");
        let b = t.role("thing-driven");
        assert_eq!(a, b);
        assert_eq!(t.role_name(a), "thing-driven");
    }

    #[test]
    fn namespaces_are_separate() {
        let mut t = SymbolTable::new();
        let r = t.role("crime");
        let c = t.concept("crime");
        // Same spelling, distinct namespaces: both get index 0 but the
        // newtypes keep them apart and lookups stay independent.
        assert_eq!(r.index(), 0);
        assert_eq!(c.index(), 0);
        assert_eq!(t.find_role("crime"), Some(r));
        assert_eq!(t.find_concept("crime"), Some(c));
        assert_eq!(t.find_individual("crime"), None);
    }

    #[test]
    fn find_does_not_intern() {
        let t = SymbolTable::new();
        assert_eq!(t.find_role("nope"), None);
        assert_eq!(t.role_count(), 0);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut t = SymbolTable::new();
        let a = t.concept("A");
        let b = t.concept("B");
        let c = t.concept("C");
        assert!(a < b && b < c);
        assert_eq!(c.index(), 2);
        let names: Vec<_> = t.concepts().map(|(_, n)| n.to_owned()).collect();
        assert_eq!(names, vec!["A", "B", "C"]);
    }

    #[test]
    fn from_index_round_trips() {
        let mut t = SymbolTable::new();
        let a = t.individual("Rocky");
        assert_eq!(IndName::from_index(a.index()), a);
    }
}
