//! The CLASSIC language of structured descriptions (surface AST).
//!
//! This is the compositional expression language of Appendix A, used in all
//! four roles the paper assigns it: defining the schema, asserting
//! (possibly incomplete) facts about individuals, posing queries, and
//! describing answers. A [`Concept`] is a plain owned tree; meaning is
//! given by normalization ([`crate::normal`]) against a
//! [`crate::schema::Schema`].
//!
//! Concept-forming constructors (paper §2.1):
//! - extensional: `PRIMITIVE`, `DISJOINT-PRIMITIVE`, `ONE-OF`
//! - restriction-based: `ALL`, `AT-LEAST`, `AT-MOST`, `SAME-AS`
//! - composition: `AND`
//! - escape hatch: `TEST`
//! - individual-only constructors (§3.2): `FILLS`, `CLOSE`

use crate::host::{HostValue, Layer};
use crate::symbol::{ConceptName, IndName, RoleId, SymbolTable, TestId};
use std::fmt;

/// A reference to an individual appearing inside a description
/// (`ONE-OF`, `FILLS`): either a named CLASSIC individual or a host value.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum IndRef {
    /// A named CLASSIC individual, e.g. `Rocky`.
    Classic(IndName),
    /// A host value, e.g. `4` or `"red"`.
    Host(HostValue),
}

impl IndRef {
    /// The layer this individual necessarily belongs to.
    pub fn layer(&self) -> Layer {
        match self {
            IndRef::Classic(_) => Layer::Classic,
            IndRef::Host(v) => Layer::Host(Some(v.class())),
        }
    }

    /// The individual's name, if it is a CLASSIC (non-host) individual.
    pub fn as_classic(&self) -> Option<IndName> {
        match self {
            IndRef::Classic(n) => Some(*n),
            IndRef::Host(_) => None,
        }
    }

    /// Is this a host individual?
    pub fn is_host(&self) -> bool {
        matches!(self, IndRef::Host(_))
    }
}

/// A chain of roles used by `SAME-AS`, e.g. `(perpetrator domicile)`.
///
/// Every role in a path must be an *attribute* (single-valued role); this
/// is checked during normalization, mirroring the paper's restriction that
/// "co-reference constraints be used only with roles that are
/// single-valued" (§5).
pub type Path = Vec<RoleId>;

/// A CLASSIC concept expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Concept {
    /// One of the built-in primitives `THING`, `CLASSIC-THING`,
    /// `HOST-THING`, `INTEGER`, `STRING`, `SYMBOL`.
    Builtin(Layer),
    /// A reference to a named concept from the schema, e.g. `RICH-KID`.
    Name(ConceptName),
    /// `(PRIMITIVE parent index)`: a subconcept of `parent` with an
    /// unspecified differentia identified by `index` (§2.1.1).
    ///
    /// The index is interned lazily: it is carried here as a string and
    /// resolved to a [`crate::symbol::PrimId`] when the expression is
    /// normalized against a schema, which also registers the parent.
    Primitive {
        /// The parent (necessary-condition) concept.
        parent: Box<Concept>,
        /// The atomic index identifying the primitive.
        index: String,
    },
    /// `(DISJOINT-PRIMITIVE parent grouping index)`: like `PRIMITIVE`, but
    /// atoms with the same grouping and distinct indices are mutually
    /// exclusive (§3.4, MALE/FEMALE example).
    DisjointPrimitive {
        /// The parent (necessary-condition) concept.
        parent: Box<Concept>,
        /// The disjointness grouping (e.g. `gender`).
        grouping: String,
        /// The atomic index within the grouping (e.g. `male`).
        index: String,
    },
    /// `(ONE-OF i1 … ik)`: a time-invariant enumerated set (§2.1.1).
    OneOf(Vec<IndRef>),
    /// `(ALL r C)`: everything related by `r` only to instances of `C`.
    All(RoleId, Box<Concept>),
    /// `(AT-LEAST n r)`: related to at least `n` distinct individuals by `r`.
    AtLeast(u32, RoleId),
    /// `(AT-MOST n r)`: related to at most `n` distinct individuals by `r`.
    AtMost(u32, RoleId),
    /// `(SAME-AS (p…) (q…))`: the two attribute chains reach the same
    /// individual (§2.1.2). "This constraint is part of the meaning of any
    /// concept in which it appears, and is not just an integrity
    /// constraint."
    SameAs(Path, Path),
    /// `(FILLS r i1 … ik)`: the role `r` is filled by these individuals
    /// (§3.2). Usable in descriptions of individuals and in queries.
    Fills(RoleId, Vec<IndRef>),
    /// `(CLOSE r)`: no fillers beyond those already known (§3.2). The
    /// paper's epistemic closure operator, reified as a descriptor.
    Close(RoleId),
    /// `(TEST f)`: the set of objects for which the registered host
    /// function returns true (§2.1.4). A "primitive sufficiency condition";
    /// opaque to subsumption, like a primitive.
    Test(TestId),
    /// `(AND C1 … Ck)`: conjunction, the compositional glue (§2.1.3).
    And(Vec<Concept>),
}

impl Concept {
    /// `THING`, the topmost concept.
    pub fn thing() -> Concept {
        Concept::Builtin(Layer::Thing)
    }

    /// `(AND …)` from any iterator of conjuncts.
    pub fn and(parts: impl IntoIterator<Item = Concept>) -> Concept {
        Concept::And(parts.into_iter().collect())
    }

    /// `(ALL role c)`.
    pub fn all(role: RoleId, c: Concept) -> Concept {
        Concept::All(role, Box::new(c))
    }

    /// `(ONE-OF …)` from any iterator of individuals.
    pub fn one_of(inds: impl IntoIterator<Item = IndRef>) -> Concept {
        Concept::OneOf(inds.into_iter().collect())
    }

    /// `(ONE-OF i)` for a single named individual — common in the paper
    /// (e.g. `(ONE-OF Ferrari)`).
    pub fn singleton(ind: IndName) -> Concept {
        Concept::OneOf(vec![IndRef::Classic(ind)])
    }

    /// `EXACTLY-ONE` as the paper derives it: `AND(AT-LEAST 1, AT-MOST 1)`
    /// (§2.1.4 discusses exactly this macro).
    pub fn exactly(n: u32, role: RoleId) -> Concept {
        Concept::And(vec![Concept::AtLeast(n, role), Concept::AtMost(n, role)])
    }

    /// `(PRIMITIVE parent index)`.
    pub fn primitive(parent: Concept, index: &str) -> Concept {
        Concept::Primitive {
            parent: Box::new(parent),
            index: index.to_owned(),
        }
    }

    /// `(DISJOINT-PRIMITIVE parent grouping index)`.
    pub fn disjoint_primitive(parent: Concept, grouping: &str, index: &str) -> Concept {
        Concept::DisjointPrimitive {
            parent: Box::new(parent),
            grouping: grouping.to_owned(),
            index: index.to_owned(),
        }
    }

    /// The structural size of the expression: number of constructor
    /// occurrences plus leaf references. This is the |C| in the paper's
    /// claim that subsumption runs "in time proportional to the sizes of
    /// the two concepts" (§5); experiment E1 sweeps it.
    pub fn size(&self) -> usize {
        match self {
            Concept::Builtin(_) | Concept::Name(_) | Concept::Test(_) | Concept::Close(_) => 1,
            Concept::Primitive { parent, .. } => 1 + parent.size(),
            Concept::DisjointPrimitive { parent, .. } => 1 + parent.size(),
            Concept::OneOf(inds) => 1 + inds.len(),
            Concept::All(_, c) => 1 + c.size(),
            Concept::AtLeast(..) | Concept::AtMost(..) => 1,
            Concept::SameAs(p, q) => 1 + p.len() + q.len(),
            Concept::Fills(_, inds) => 1 + inds.len(),
            Concept::And(parts) => 1 + parts.iter().map(Concept::size).sum::<usize>(),
        }
    }

    /// All named concepts referenced (transitively through this expression
    /// only; schema unfolding is normalization's job).
    pub fn referenced_names(&self, out: &mut Vec<ConceptName>) {
        match self {
            Concept::Name(n) => out.push(*n),
            Concept::Primitive { parent, .. } | Concept::DisjointPrimitive { parent, .. } => {
                parent.referenced_names(out)
            }
            Concept::All(_, c) => c.referenced_names(out),
            Concept::And(parts) => {
                for p in parts {
                    p.referenced_names(out);
                }
            }
            _ => {}
        }
    }

    /// All roles mentioned anywhere in the expression.
    pub fn referenced_roles(&self, out: &mut Vec<RoleId>) {
        match self {
            Concept::All(r, c) => {
                out.push(*r);
                c.referenced_roles(out);
            }
            Concept::AtLeast(_, r) | Concept::AtMost(_, r) | Concept::Close(r) => out.push(*r),
            Concept::Fills(r, _) => out.push(*r),
            Concept::SameAs(p, q) => {
                out.extend(p.iter().copied());
                out.extend(q.iter().copied());
            }
            Concept::Primitive { parent, .. } | Concept::DisjointPrimitive { parent, .. } => {
                parent.referenced_roles(out)
            }
            Concept::And(parts) => {
                for part in parts {
                    part.referenced_roles(out);
                }
            }
            _ => {}
        }
    }

    /// Render against a symbol table in the paper's prefix notation.
    pub fn display<'a>(&'a self, symbols: &'a SymbolTable) -> DisplayConcept<'a> {
        DisplayConcept { c: self, symbols }
    }
}

/// Pretty-printer for [`Concept`], in the paper's parenthesized prefix
/// syntax, e.g. `(AND STUDENT (AT-LEAST 2 thing-driven))`.
pub struct DisplayConcept<'a> {
    c: &'a Concept,
    symbols: &'a SymbolTable,
}

impl fmt::Display for DisplayConcept<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_concept(self.c, self.symbols, f)
    }
}

pub(crate) fn write_ind(i: &IndRef, s: &SymbolTable, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match i {
        IndRef::Classic(n) => f.write_str(s.individual_name(*n)),
        IndRef::Host(v) => write!(f, "{v}"),
    }
}

fn write_path(p: &[RoleId], s: &SymbolTable, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    f.write_str("(")?;
    for (i, r) in p.iter().enumerate() {
        if i > 0 {
            f.write_str(" ")?;
        }
        f.write_str(s.role_name(*r))?;
    }
    f.write_str(")")
}

fn write_concept(c: &Concept, s: &SymbolTable, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match c {
        Concept::Builtin(l) => f.write_str(l.name()),
        Concept::Name(n) => f.write_str(s.concept_name(*n)),
        Concept::Primitive { parent, index } => {
            f.write_str("(PRIMITIVE ")?;
            write_concept(parent, s, f)?;
            write!(f, " {index})")
        }
        Concept::DisjointPrimitive {
            parent,
            grouping,
            index,
        } => {
            f.write_str("(DISJOINT-PRIMITIVE ")?;
            write_concept(parent, s, f)?;
            write!(f, " {grouping} {index})")
        }
        Concept::OneOf(inds) => {
            f.write_str("(ONE-OF")?;
            for i in inds {
                f.write_str(" ")?;
                write_ind(i, s, f)?;
            }
            f.write_str(")")
        }
        Concept::All(r, c) => {
            write!(f, "(ALL {} ", s.role_name(*r))?;
            write_concept(c, s, f)?;
            f.write_str(")")
        }
        Concept::AtLeast(n, r) => write!(f, "(AT-LEAST {n} {})", s.role_name(*r)),
        Concept::AtMost(n, r) => write!(f, "(AT-MOST {n} {})", s.role_name(*r)),
        Concept::SameAs(p, q) => {
            f.write_str("(SAME-AS ")?;
            write_path(p, s, f)?;
            f.write_str(" ")?;
            write_path(q, s, f)?;
            f.write_str(")")
        }
        Concept::Fills(r, inds) => {
            write!(f, "(FILLS {}", s.role_name(*r))?;
            for i in inds {
                f.write_str(" ")?;
                write_ind(i, s, f)?;
            }
            f.write_str(")")
        }
        Concept::Close(r) => write!(f, "(CLOSE {})", s.role_name(*r)),
        Concept::Test(t) => write!(f, "(TEST {})", s.test_name(*t)),
        Concept::And(parts) => {
            f.write_str("(AND")?;
            for p in parts {
                f.write_str(" ")?;
                write_concept(p, s, f)?;
            }
            f.write_str(")")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (SymbolTable, RoleId, ConceptName, IndName) {
        let mut s = SymbolTable::new();
        let r = s.role("thing-driven");
        let c = s.concept("STUDENT");
        let i = s.individual("Rocky");
        (s, r, c, i)
    }

    #[test]
    fn display_matches_paper_notation() {
        let (s, r, c, i) = setup();
        let e = Concept::and([
            Concept::Name(c),
            Concept::all(r, Concept::singleton(i)),
            Concept::AtLeast(2, r),
        ]);
        assert_eq!(
            e.display(&s).to_string(),
            "(AND STUDENT (ALL thing-driven (ONE-OF Rocky)) (AT-LEAST 2 thing-driven))"
        );
    }

    #[test]
    fn display_same_as_and_fills() {
        let mut s = SymbolTable::new();
        let site = s.role("site");
        let perp = s.role("perpetrator");
        let dom = s.role("domicile");
        let e = Concept::SameAs(vec![site], vec![perp, dom]);
        assert_eq!(
            e.display(&s).to_string(),
            "(SAME-AS (site) (perpetrator domicile))"
        );
        let v = s.individual("Volvo-17");
        let fills = Concept::Fills(site, vec![IndRef::Classic(v)]);
        assert_eq!(fills.display(&s).to_string(), "(FILLS site Volvo-17)");
    }

    #[test]
    fn size_counts_structure() {
        let (_, r, c, i) = setup();
        assert_eq!(Concept::Name(c).size(), 1);
        assert_eq!(Concept::AtLeast(2, r).size(), 1);
        assert_eq!(Concept::singleton(i).size(), 2);
        let e = Concept::and([Concept::Name(c), Concept::all(r, Concept::singleton(i))]);
        // AND(1) + Name(1) + ALL(1) + OneOf(1+1)
        assert_eq!(e.size(), 5);
    }

    #[test]
    fn exactly_macro_expands() {
        let (_, r, _, _) = setup();
        match Concept::exactly(1, r) {
            Concept::And(v) => {
                assert_eq!(v.len(), 2);
                assert!(matches!(v[0], Concept::AtLeast(1, _)));
                assert!(matches!(v[1], Concept::AtMost(1, _)));
            }
            _ => panic!("exactly should expand to AND"),
        }
    }

    #[test]
    fn referenced_roles_and_names() {
        let (mut s, r, c, _) = setup();
        let r2 = s.role("maker");
        let e = Concept::and([
            Concept::Name(c),
            Concept::all(r, Concept::all(r2, Concept::thing())),
            Concept::Close(r2),
        ]);
        let mut roles = vec![];
        e.referenced_roles(&mut roles);
        assert_eq!(roles, vec![r, r2, r2]);
        let mut names = vec![];
        e.referenced_names(&mut names);
        assert_eq!(names, vec![c]);
    }

    #[test]
    fn ind_ref_layers() {
        let (_, _, _, i) = setup();
        assert_eq!(IndRef::Classic(i).layer(), Layer::Classic);
        assert!(IndRef::Host(HostValue::Int(1)).is_host());
        assert_eq!(IndRef::Classic(i).as_classic(), Some(i));
        assert_eq!(IndRef::Host(HostValue::Int(1)).as_classic(), None);
    }
}
