//! Host individuals and the THING / CLASSIC-THING / HOST-THING layering.
//!
//! The paper (§3.2) builds a fundamental distinction into the language:
//! "every individual known to the database needs to be either a *host*
//! individual — a valid value from the space of values of the host
//! implementation language (LISP or C in our case) — or a regular (CLASSIC)
//! individual. Host individuals cannot have roles, but are otherwise first
//! class citizens — they can be grouped by enumerated concepts".
//!
//! Our host language is Rust; the host value space we expose is integers,
//! floats, strings, and symbols (the paper's "numbers, strings"). The
//! built-in concepts `THING`, `CLASSIC-THING`, `HOST-THING`, `NUMBER`,
//! `INTEGER`, `FLOAT`, `STRING`, and `SYMBOL` (Appendix A lists the first
//! three as built-in primitives; `INTEGER` is noted in §2.1.4 as
//! "built-in to the LISP implementation") are represented by the
//! [`Layer`] lattice rather than by primitive atoms, so layer reasoning
//! is a constant-time comparison.

use std::fmt;

/// A totally ordered `f64` wrapper so host floats can live in the sorted
/// sets the engine uses throughout (`f64` itself is not `Ord`).
/// Ordering/equality use [`f64::total_cmp`] semantics; hashing uses the
/// bit pattern. `NaN` is representable but has no literal syntax.
#[derive(Debug, Clone, Copy)]
pub struct F64(pub f64);

impl PartialEq for F64 {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == std::cmp::Ordering::Equal
    }
}

impl Eq for F64 {}

impl PartialOrd for F64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for F64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl std::hash::Hash for F64 {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}

impl fmt::Display for F64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Keep a decimal point so the printed form re-lexes as a float
        // (never as an integer or a symbol).
        if self.0.is_finite() && self.0.fract() == 0.0 {
            write!(f, "{:.1}", self.0)
        } else {
            write!(f, "{}", self.0)
        }
    }
}

/// A host individual: a value of the host implementation language.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HostValue {
    /// A host integer, e.g. `4`.
    Int(i64),
    /// A host float, e.g. `1.5` (the paper's "numbers" include these).
    Float(F64),
    /// A host string, e.g. `"Murray Hill"`.
    Str(String),
    /// A host symbol, e.g. `'red`. Distinct from strings, as in LISP.
    Sym(String),
}

impl HostValue {
    /// Convenience constructor for floats.
    pub fn float(v: f64) -> HostValue {
        HostValue::Float(F64(v))
    }

    /// The most specific built-in host class this value belongs to.
    pub fn class(&self) -> HostClass {
        match self {
            HostValue::Int(_) => HostClass::Integer,
            HostValue::Float(_) => HostClass::Float,
            HostValue::Str(_) => HostClass::Str,
            HostValue::Sym(_) => HostClass::Sym,
        }
    }
}

impl fmt::Display for HostValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HostValue::Int(i) => write!(f, "{i}"),
            HostValue::Float(v) => write!(f, "{v}"),
            HostValue::Str(s) => write!(f, "{s:?}"),
            HostValue::Sym(s) => write!(f, "'{s}"),
        }
    }
}

/// Built-in classes of host individuals. `NUMBER` is the abstract parent
/// of `INTEGER` and `FLOAT` (see [`HostClass::subsumes`]); the other
/// classes are mutually disjoint leaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HostClass {
    /// Host numbers in general — the abstract parent of the two below.
    Number,
    /// Host integers (`42`), the paper's built-in `INTEGER`.
    Integer,
    /// Host floats (`1.5`), the built-in `FLOAT`.
    Float,
    /// Host strings (`"Murray Hill"`), the built-in `STRING`.
    Str,
    /// Host symbols (`'red`), the built-in `SYMBOL`.
    Sym,
}

impl HostClass {
    /// The built-in concept name for this host class.
    pub fn name(self) -> &'static str {
        match self {
            HostClass::Number => "NUMBER",
            HostClass::Integer => "INTEGER",
            HostClass::Float => "FLOAT",
            HostClass::Str => "STRING",
            HostClass::Sym => "SYMBOL",
        }
    }

    /// Host-class subsumption: `NUMBER ⊒ INTEGER`, `NUMBER ⊒ FLOAT`,
    /// everything subsumes itself, everything else is disjoint.
    pub fn subsumes(self, other: HostClass) -> bool {
        self == other
            || (self == HostClass::Number && matches!(other, HostClass::Integer | HostClass::Float))
    }

    /// Least upper bound within the host classes, if one exists below
    /// `HOST-THING` itself.
    pub fn join(self, other: HostClass) -> Option<HostClass> {
        if self.subsumes(other) {
            Some(self)
        } else if other.subsumes(self) {
            Some(other)
        } else if matches!(
            (self, other),
            (HostClass::Integer, HostClass::Float) | (HostClass::Float, HostClass::Integer)
        ) {
            Some(HostClass::Number)
        } else {
            None
        }
    }
}

/// The built-in top-level partition a description lives in.
///
/// Forms a small lattice:
///
/// ```text
///                 THING
///                /     \
///       CLASSIC-THING  HOST-THING
///                     /     |    \
///                NUMBER  STRING  SYMBOL
///                /    \
///          INTEGER    FLOAT
/// ```
///
/// `CLASSIC-THING` and `HOST-THING` are disjoint, as are the host classes
/// among themselves; conjoining incompatible layers yields ⊥.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Layer {
    /// `THING`: everything.
    #[default]
    Thing,
    /// `CLASSIC-THING`: regular individuals, which may have roles.
    Classic,
    /// `HOST-THING`, optionally narrowed to one built-in host class.
    Host(Option<HostClass>),
}

impl Layer {
    /// Does `self` subsume `other` in the layer lattice?
    pub fn subsumes(self, other: Layer) -> bool {
        match (self, other) {
            (Layer::Thing, _) => true,
            (Layer::Classic, Layer::Classic) => true,
            (Layer::Host(None), Layer::Host(_)) => true,
            (Layer::Host(Some(a)), Layer::Host(Some(b))) => a.subsumes(b),
            _ => false,
        }
    }

    /// Greatest lower bound; `None` means the meet is empty (⊥).
    pub fn meet(self, other: Layer) -> Option<Layer> {
        if self.subsumes(other) {
            Some(other)
        } else if other.subsumes(self) {
            Some(self)
        } else {
            None
        }
    }

    /// Least upper bound.
    pub fn join(self, other: Layer) -> Layer {
        if self.subsumes(other) {
            self
        } else if other.subsumes(self) {
            other
        } else {
            match (self, other) {
                (Layer::Host(Some(a)), Layer::Host(Some(b))) => Layer::Host(a.join(b)),
                (Layer::Host(_), Layer::Host(_)) => Layer::Host(None),
                _ => Layer::Thing,
            }
        }
    }

    /// The built-in concept name for this layer.
    pub fn name(self) -> &'static str {
        match self {
            Layer::Thing => "THING",
            Layer::Classic => "CLASSIC-THING",
            Layer::Host(None) => "HOST-THING",
            Layer::Host(Some(c)) => c.name(),
        }
    }

    /// Resolve a built-in concept name, if it is one.
    pub fn from_name(name: &str) -> Option<Layer> {
        Some(match name {
            "THING" => Layer::Thing,
            "CLASSIC-THING" => Layer::Classic,
            "HOST-THING" => Layer::Host(None),
            "NUMBER" => Layer::Host(Some(HostClass::Number)),
            "INTEGER" => Layer::Host(Some(HostClass::Integer)),
            "FLOAT" => Layer::Host(Some(HostClass::Float)),
            "STRING" => Layer::Host(Some(HostClass::Str)),
            "SYMBOL" => Layer::Host(Some(HostClass::Sym)),
            _ => return None,
        })
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Layer; 8] = [
        Layer::Thing,
        Layer::Classic,
        Layer::Host(None),
        Layer::Host(Some(HostClass::Number)),
        Layer::Host(Some(HostClass::Integer)),
        Layer::Host(Some(HostClass::Float)),
        Layer::Host(Some(HostClass::Str)),
        Layer::Host(Some(HostClass::Sym)),
    ];

    #[test]
    fn thing_is_top() {
        for l in ALL {
            assert!(Layer::Thing.subsumes(l));
            assert_eq!(Layer::Thing.meet(l), Some(l));
            assert_eq!(Layer::Thing.join(l), Layer::Thing);
        }
    }

    #[test]
    fn classic_and_host_are_disjoint() {
        assert_eq!(Layer::Classic.meet(Layer::Host(None)), None);
        assert_eq!(
            Layer::Classic.meet(Layer::Host(Some(HostClass::Integer))),
            None
        );
        assert_eq!(Layer::Classic.join(Layer::Host(None)), Layer::Thing);
    }

    #[test]
    fn host_classes_are_mutually_disjoint() {
        let int = Layer::Host(Some(HostClass::Integer));
        let s = Layer::Host(Some(HostClass::Str));
        assert_eq!(int.meet(s), None);
        assert_eq!(int.join(s), Layer::Host(None));
        assert!(Layer::Host(None).subsumes(int));
    }

    #[test]
    fn number_is_the_parent_of_integer_and_float() {
        let num = Layer::Host(Some(HostClass::Number));
        let int = Layer::Host(Some(HostClass::Integer));
        let flt = Layer::Host(Some(HostClass::Float));
        assert!(num.subsumes(int));
        assert!(num.subsumes(flt));
        assert!(!int.subsumes(flt));
        assert_eq!(int.join(flt), num);
        assert_eq!(num.meet(int), Some(int));
        assert_eq!(int.meet(flt), None);
        assert_eq!(HostValue::float(1.5).class(), HostClass::Float);
    }

    #[test]
    fn float_total_order_and_display() {
        use crate::host::F64;
        let mut set = std::collections::BTreeSet::new();
        set.insert(HostValue::float(1.5));
        set.insert(HostValue::float(1.5));
        set.insert(HostValue::float(-0.5));
        assert_eq!(set.len(), 2);
        assert_eq!(HostValue::float(2.0).to_string(), "2.0");
        assert_eq!(HostValue::float(1.25).to_string(), "1.25");
        assert_eq!(F64(1.0), F64(1.0));
        assert!(F64(-1.0) < F64(1.0));
    }

    #[test]
    fn subsumption_is_reflexive_and_antisymmetric() {
        for a in ALL {
            assert!(a.subsumes(a));
            for b in ALL {
                if a != b && a.subsumes(b) {
                    assert!(!b.subsumes(a));
                }
            }
        }
    }

    #[test]
    fn meet_is_commutative() {
        for a in ALL {
            for b in ALL {
                assert_eq!(a.meet(b), b.meet(a));
            }
        }
    }

    #[test]
    fn value_classes() {
        assert_eq!(HostValue::Int(3).class(), HostClass::Integer);
        assert_eq!(HostValue::float(3.5).class(), HostClass::Float);
        assert_eq!(HostValue::Str("x".into()).class(), HostClass::Str);
        assert_eq!(HostValue::Sym("red".into()).class(), HostClass::Sym);
    }

    #[test]
    fn builtin_names_round_trip() {
        for l in ALL {
            assert_eq!(Layer::from_name(l.name()), Some(l));
        }
        assert_eq!(Layer::from_name("CAR"), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(HostValue::Int(-4).to_string(), "-4");
        assert_eq!(HostValue::Str("a b".into()).to_string(), "\"a b\"");
        assert_eq!(HostValue::Sym("red".into()).to_string(), "'red");
    }
}
