//! Structural normal forms and the normalization engine.
//!
//! "All concepts in the schema are reduced to a normal form, and then are
//! compared to each other to establish the subsumption hierarchy" (paper
//! §5). A [`NormalForm`] is the canonical structural representation of a
//! concept: named concepts unfolded, conjunctions merged, and the
//! interactions between constructors propagated — exactly the machinery
//! that makes the paper's §2.2 equivalences hold:
//!
//! * `(AND (ALL r CAR) (ALL r EXPENSIVE-THING))`
//!   ≡ `(ALL r (AND CAR EXPENSIVE-THING))` — value restrictions on the same
//!   role conjoin;
//! * `(ALL r (AND (ONE-OF a b c) (ONE-OF b c d)))`
//!   ≡ `(AND (ALL r (ONE-OF b c)) (AT-MOST 2 r))` — enumerations intersect
//!   and bound the role's cardinality.
//!
//! Contradictory conjunctions normalize to an explicit bottom (⊥) carrying
//! the first [`Clash`] detected, which is how integrity checking (§3.4)
//! reports *why* an update was rejected.

use crate::desc::{Concept, IndRef, Path};
use crate::error::{Clash, ClassicError, Result};
use crate::host::Layer;
use crate::same_as::SameAs;
use crate::schema::Schema;
use crate::symbol::{PrimId, RoleId, SymbolTable, TestId};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Canonical description of everything a concept says about one role.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct RoleRestriction {
    /// Conjoined `ALL` value restriction, normalized. `None` ≡ `THING`.
    pub all: Option<Box<NormalForm>>,
    /// Effective lower bound: `max(asserted AT-LEASTs, |fillers|)`.
    pub at_least: u32,
    /// Effective upper bound, `None` = unbounded. Already tightened by
    /// `ONE-OF` value restrictions and closure.
    pub at_most: Option<u32>,
    /// Known fillers from `FILLS` (unique-name assumption: distinct names
    /// denote distinct individuals, so `|fillers|` is a hard lower bound).
    pub fillers: BTreeSet<IndRef>,
    /// Whether the role is closed: no fillers beyond `fillers` exist.
    /// Canonical invariant: `closed ⇔ at_most == Some(fillers.len())`
    /// (the paper's §3.3 deduction — an `AT-MOST` reached by known fillers
    /// closes the role — applied in both directions).
    pub closed: bool,
}

impl RoleRestriction {
    /// A restriction that says nothing (≡ no restriction at all).
    pub fn is_trivial(&self) -> bool {
        self.all.is_none()
            && self.at_least == 0
            && self.at_most.is_none()
            && self.fillers.is_empty()
            && !self.closed
    }

    /// Effective minimum number of fillers.
    pub fn min_count(&self) -> u32 {
        self.at_least.max(self.fillers.len() as u32)
    }

    /// Effective maximum number of fillers (`u32::MAX` = unbounded).
    pub fn max_count(&self) -> u32 {
        self.at_most.unwrap_or(u32::MAX)
    }
}

/// The normal form of a CLASSIC concept.
///
/// Two coherent normal forms compare equal iff normalization identified
/// their concepts; all incoherent forms compare equal (every ⊥ denotes the
/// empty set). Full semantic equivalence testing should use mutual
/// subsumption ([`crate::subsume::equivalent`]); structural equality is a
/// sound (and for the constructs exercised by the paper, complete)
/// fast path.
#[derive(Debug, Clone, Default)]
pub struct NormalForm {
    /// `Some(clash)` marks ⊥; the clash records why (for error reporting).
    clash: Option<Clash>,
    /// Built-in layer (THING / CLASSIC-THING / HOST-THING / host class).
    pub layer: Layer,
    /// Primitive atoms this concept is committed to (necessary conditions
    /// with unspecified differentia).
    pub prims: BTreeSet<PrimId>,
    /// `TEST` atoms — procedural black boxes, identity-only (§2.1.4).
    pub tests: BTreeSet<TestId>,
    /// Enumerated extent, if any (`ONE-OF`); intersected under `AND`.
    pub one_of: Option<BTreeSet<IndRef>>,
    /// Per-role restrictions; roles with trivial restrictions are absent.
    pub roles: BTreeMap<RoleId, RoleRestriction>,
    /// Co-reference constraints over attribute chains (`SAME-AS`).
    pub same_as: SameAs,
}

impl PartialEq for NormalForm {
    fn eq(&self, other: &Self) -> bool {
        if self.is_incoherent() || other.is_incoherent() {
            return self.is_incoherent() && other.is_incoherent();
        }
        self.layer == other.layer
            && self.prims == other.prims
            && self.tests == other.tests
            && self.one_of == other.one_of
            && self.roles == other.roles
            && self.same_as == other.same_as
    }
}

impl Eq for NormalForm {}

/// Hashing mirrors the manual [`PartialEq`]: every ⊥ hashes to the same
/// marker (the clash payload is diagnostic, not semantic), and coherent
/// forms hash their canonical structure. This is what lets normal forms be
/// hash-consed into the subsumption kernel ([`crate::intern`]).
impl std::hash::Hash for NormalForm {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        if self.is_incoherent() {
            state.write_u8(0);
            return;
        }
        state.write_u8(1);
        self.layer.hash(state);
        self.prims.hash(state);
        self.tests.hash(state);
        self.one_of.hash(state);
        self.roles.hash(state);
        self.same_as.hash(state);
    }
}

impl NormalForm {
    /// The normal form of `THING` (says nothing).
    pub fn top() -> NormalForm {
        NormalForm::default()
    }

    /// The empty concept, with the clash that produced it.
    pub fn bottom(clash: Clash) -> NormalForm {
        NormalForm {
            clash: Some(clash),
            ..NormalForm::default()
        }
    }

    /// Is this the empty concept (⊥)?
    pub fn is_incoherent(&self) -> bool {
        self.clash.is_some()
    }

    /// Why this form is ⊥, if it is.
    pub fn clash(&self) -> Option<&Clash> {
        self.clash.as_ref()
    }

    /// Does this form say anything at all beyond `THING`?
    pub fn is_top(&self) -> bool {
        !self.is_incoherent()
            && self.layer == Layer::Thing
            && self.prims.is_empty()
            && self.tests.is_empty()
            && self.one_of.is_none()
            && self.roles.is_empty()
            && self.same_as.is_empty()
    }

    /// Structural size (used by experiment E1's |C| metric).
    pub fn size(&self) -> usize {
        let mut n = 1 + self.prims.len() + self.tests.len();
        if let Some(s) = &self.one_of {
            n += s.len();
        }
        for rr in self.roles.values() {
            n += 1 + rr.fillers.len();
            if let Some(all) = &rr.all {
                n += all.size();
            }
        }
        n += self.same_as.size();
        n
    }

    /// The restriction recorded for `role`, or a trivial one.
    pub fn role(&self, role: RoleId) -> RoleRestriction {
        self.roles.get(&role).cloned().unwrap_or_default()
    }

    /// The value restriction on `role` (`THING` if none).
    pub fn value_restriction(&self, role: RoleId) -> NormalForm {
        self.roles
            .get(&role)
            .and_then(|rr| rr.all.as_deref().cloned())
            .unwrap_or_else(NormalForm::top)
    }

    /// Navigate a chain of roles through value restrictions.
    /// Returns `None` if some step has no `ALL` restriction recorded.
    pub fn at_path(&self, path: &[RoleId]) -> Option<&NormalForm> {
        let mut cur = self;
        for r in path {
            cur = cur.roles.get(r)?.all.as_deref()?;
        }
        Some(cur)
    }

    /// Mark this form as ⊥ with `clash` (first clash wins) and drop the
    /// now-meaningless structure so every ⊥ is canonical.
    pub(crate) fn make_incoherent(&mut self, clash: Clash) {
        if self.clash.is_none() {
            self.clash = Some(clash);
        }
        self.layer = Layer::Thing;
        self.prims.clear();
        self.tests.clear();
        self.one_of = None;
        self.roles.clear();
        self.same_as = SameAs::default();
    }

    /// Conjoin `other` into `self` (the meaning of `AND`), restoring all
    /// canonical invariants. `schema` supplies disjoint-primitive groupings
    /// and attribute declarations.
    ///
    /// Both inputs are taken as *canonical*: a bare `(CLOSE r)` that was
    /// normalized on its own already denotes "r has no fillers", so
    /// conjoining it with `(FILLS r V)` is a genuine contradiction. To
    /// combine fragments whose meaning is contextual (`CLOSE` next to its
    /// sibling `FILLS` in one expression), build the expression as a single
    /// `AND` and normalize it once — [`normalize`] merges raw structure
    /// first and derives invariants at the end.
    pub fn conjoin(&mut self, other: &NormalForm, schema: &Schema) {
        self.merge_raw(other);
        self.renormalize(schema);
    }

    /// Structurally merge `other` into `self` without deriving any
    /// invariants (beyond layer compatibility). Callers must
    /// [`NormalForm::renormalize`] before the result is used as canonical.
    pub(crate) fn merge_raw(&mut self, other: &NormalForm) {
        if self.is_incoherent() {
            return;
        }
        if other.is_incoherent() {
            self.make_incoherent(other.clash.clone().unwrap_or(Clash::Incoherent));
            return;
        }
        // Layer meet.
        match self.layer.meet(other.layer) {
            Some(l) => self.layer = l,
            None => {
                self.make_incoherent(Clash::LayerClash);
                return;
            }
        }
        self.prims.extend(other.prims.iter().copied());
        self.tests.extend(other.tests.iter().copied());
        // Enumerations intersect.
        self.one_of = match (self.one_of.take(), &other.one_of) {
            (None, None) => None,
            (Some(s), None) => Some(s),
            (None, Some(s)) => Some(s.clone()),
            (Some(a), Some(b)) => Some(a.intersection(b).cloned().collect()),
        };
        // Role restrictions merge pointwise.
        for (&r, rr) in &other.roles {
            let mine = self.roles.entry(r).or_default();
            mine.at_least = mine.at_least.max(rr.at_least);
            mine.at_most = match (mine.at_most, rr.at_most) {
                (None, m) => m,
                (m, None) => m,
                (Some(a), Some(b)) => Some(a.min(b)),
            };
            mine.fillers.extend(rr.fillers.iter().cloned());
            mine.closed |= rr.closed;
            match (&mut mine.all, &rr.all) {
                (_, None) => {}
                (slot @ None, Some(b)) => *slot = Some(b.clone()),
                (Some(a), Some(b)) => a.merge_raw(b),
            }
        }
        self.same_as.merge(&other.same_as);
    }

    /// Re-establish every canonical invariant after structural changes.
    ///
    /// This is the workhorse behind the §2.2 equivalences and the §3.3/§3.4
    /// deductions; it iterates to a fixed point (bounded — each pass only
    /// tightens bounds, closes roles, or detects ⊥, all monotone). Public
    /// so callers constructing normal forms field-by-field (e.g. the KB
    /// deriving a `FILLS` from a co-reference) can canonicalize them.
    pub fn renormalize(&mut self, schema: &Schema) {
        if self.is_incoherent() {
            return;
        }
        // A recursive co-reference (a chain equated with an extension of
        // itself) would regress the SAME-AS propagation below forever —
        // the paper forbids recursive definitions, so it is rejected up
        // front as a clash. Checked here rather than only at the language
        // boundary because two individually acyclic descriptions can
        // *combine* into a cycle under conjunction.
        if !self.same_as.is_empty() {
            if let Some((p, _)) = self.same_as.find_cycle() {
                self.make_incoherent(Clash::RecursiveCoreference { path: p });
                return;
            }
        }
        // Canonicalize value restrictions depth-first, so this level's
        // derivations see canonical children.
        for rr in self.roles.values_mut() {
            if let Some(all) = &mut rr.all {
                all.renormalize(schema);
            }
        }
        // Disjoint primitive groupings (§3.4).
        let prims: Vec<PrimId> = self.prims.iter().copied().collect();
        for (i, &a) in prims.iter().enumerate() {
            for &b in &prims[i + 1..] {
                if schema.prims_disjoint(a, b) {
                    self.make_incoherent(Clash::DisjointPrimitives(a, b));
                    return;
                }
            }
        }
        // SAME-AS paths demand attribute chains: at_least 1 along every
        // prefix, at_most 1 by the attribute declaration. (Idempotent, and
        // the pair set never grows during renormalization, so once
        // suffices.)
        let sa_paths: Vec<Path> = self.same_as.all_paths();
        for p in &sa_paths {
            self.require_chain(p);
        }
        // All remaining invariants interact (a role demand can tighten the
        // layer, which re-filters an enumeration, which bounds a role…),
        // so they run together to a fixed point.
        let mut changed = true;
        let mut guard = 0usize;
        while changed {
            changed = false;
            guard += 1;
            if guard >= 1_000 {
                // Convergence guard. The cycle pre-check above witnesses
                // every recursive co-reference its bounded saturation can
                // reach; a form that still refuses to converge is treated
                // the same way instead of looping (previously this was a
                // debug_assert, which let release builds hang).
                self.make_incoherent(Clash::RecursiveCoreference { path: Path::new() });
                return;
            }
            // ONE-OF: filter members incompatible with the (possibly just
            // tightened) layer, then tighten the layer to the join of the
            // survivors.
            if let Some(s) = &mut self.one_of {
                let layer = self.layer;
                let before = s.len();
                s.retain(|i| layer.meet(i.layer()).is_some());
                if s.is_empty() {
                    self.make_incoherent(Clash::EmptyEnumeration);
                    return;
                }
                changed |= s.len() != before;
                let join = s
                    .iter()
                    .map(IndRef::layer)
                    .reduce(|a, b| a.join(b))
                    .expect("non-empty");
                if self.layer != join {
                    self.layer = join;
                    changed = true;
                }
            }
            let roles: Vec<RoleId> = self.roles.keys().copied().collect();
            for r in roles {
                let attr = schema.is_attribute(r);
                let rr = self.roles.get_mut(&r).expect("present");
                if attr {
                    let prev = rr.at_most;
                    rr.at_most = Some(rr.at_most.unwrap_or(1).min(1));
                    changed |= prev != rr.at_most;
                }
                // Fillers raise AT-LEAST (UNA).
                if (rr.fillers.len() as u32) > rr.at_least {
                    rr.at_least = rr.fillers.len() as u32;
                    changed = true;
                }
                // A ⊥ value restriction forbids any filler.
                if rr.all.as_deref().is_some_and(NormalForm::is_incoherent) {
                    rr.all = None;
                    rr.at_most = Some(0);
                    changed = true;
                }
                // Enumerated value restriction bounds cardinality (§2.2).
                if let Some(all) = &rr.all {
                    if let Some(s) = &all.one_of {
                        let bound = s.len() as u32;
                        if rr.at_most.is_none_or(|m| m > bound) {
                            rr.at_most = Some(bound);
                            changed = true;
                        }
                    }
                }
                // Closure tightens AT-MOST to the known fillers (§3.2), and
                // an AT-MOST met by known fillers closes the role (§3.3).
                if rr.closed {
                    let n = rr.fillers.len() as u32;
                    if rr.at_most.is_none_or(|m| m > n) {
                        rr.at_most = Some(n);
                        changed = true;
                    }
                }
                if rr.at_most == Some(rr.fillers.len() as u32) && !rr.closed {
                    rr.closed = true;
                    changed = true;
                }
                // Cardinality clash?
                let (min, max) = (rr.min_count(), rr.max_count());
                if min > max {
                    let clash = if rr.closed {
                        Clash::ClosedRoleCardinality { role: r }
                    } else {
                        Clash::Cardinality {
                            role: r,
                            at_least: min,
                            at_most: max,
                        }
                    };
                    self.make_incoherent(clash);
                    return;
                }
                // An impossible role (max 0) makes its ALL vacuous.
                if max == 0 && rr.all.is_some() {
                    rr.all = None;
                    changed = true;
                }
                // A trivial ALL (THING) is no restriction.
                if rr.all.as_deref().is_some_and(NormalForm::is_top) {
                    rr.all = None;
                    changed = true;
                }
                // Any required filler forces the CLASSIC layer (§3.2: host
                // individuals cannot have roles).
                if rr.min_count() > 0 {
                    match self.layer.meet(Layer::Classic) {
                        Some(l) => {
                            if self.layer != l {
                                self.layer = l;
                                changed = true;
                            }
                        }
                        None => {
                            self.make_incoherent(Clash::LayerClash);
                            return;
                        }
                    }
                }
            }
            // SAME-AS congruence: equated paths share one object, so their
            // value restrictions conjoin (bounded propagation; see
            // DESIGN.md §4.4).
            if !self.same_as.is_empty() && self.propagate_same_as(schema) {
                changed = true;
            }
            if self.is_incoherent() {
                return;
            }
        }
        // Host layers cannot carry role restrictions with content; a
        // host-layer ONE-OF re-derivation may have demoted the layer after
        // roles were recorded.
        if matches!(self.layer, Layer::Host(_)) {
            let any_required = self.roles.values().any(|rr| rr.min_count() > 0);
            if any_required {
                self.make_incoherent(Clash::LayerClash);
                return;
            }
            self.roles.clear();
            if !self.same_as.is_empty() {
                self.make_incoherent(Clash::LayerClash);
                return;
            }
        }
        // Drop trivial role entries for canonicality.
        self.roles.retain(|_, rr| !rr.is_trivial());
    }

    /// Demand that the attribute chain `path` is realizable: each step is
    /// filled (at_least 1) and single-valued (at_most 1, by declaration).
    fn require_chain(&mut self, path: &[RoleId]) {
        let Some((&first, rest)) = path.split_first() else {
            return;
        };
        let rr = self.roles.entry(first).or_default();
        rr.at_least = rr.at_least.max(1);
        // Single-valuedness along the chain (§5's restriction, enforced as
        // a derived constraint rather than a declaration requirement).
        rr.at_most = Some(rr.at_most.unwrap_or(1).min(1));
        if !rest.is_empty() {
            let all = rr.all.get_or_insert_with(|| Box::new(NormalForm::top()));
            all.require_chain(rest);
        }
    }

    /// Conjoin the value restrictions reachable at equated paths.
    /// Returns true if anything changed. One round; `renormalize`'s outer
    /// fixpoint loop repeats it until stable.
    fn propagate_same_as(&mut self, schema: &Schema) -> bool {
        let classes = self.same_as.classes();
        let mut changed = false;
        for class in &classes {
            if class.len() < 2 {
                continue;
            }
            // Meet of the NFs at every path in the class.
            let mut meet = NormalForm::top();
            for path in class {
                if let Some(nf) = self.at_path(path) {
                    let nf = nf.clone();
                    meet.conjoin(&nf, schema);
                }
            }
            if meet.is_top() {
                continue;
            }
            for path in class {
                let target = self.ensure_path(path);
                let before = target.clone();
                target.conjoin(&meet, schema);
                if *target != before {
                    changed = true;
                }
                if target.is_incoherent() {
                    // An equated object that cannot exist, while the chain
                    // demands it does: the whole concept is incoherent.
                    let role = *path.last().expect("non-empty path");
                    self.make_incoherent(Clash::CoreferenceClash { role });
                    return true;
                }
            }
        }
        changed
    }

    /// Get (creating as needed) the normal form at the end of `path`.
    fn ensure_path(&mut self, path: &[RoleId]) -> &mut NormalForm {
        let mut cur = self;
        for r in path {
            let rr = cur.roles.entry(*r).or_default();
            cur = rr.all.get_or_insert_with(|| Box::new(NormalForm::top()));
        }
        cur
    }

    /// Reconstruct a concept expression denoting this normal form.
    ///
    /// Used to render intensional answers (`ask-description`, §3.5.3) and
    /// for persistence. Primitive atoms are rendered via the schema's
    /// record of the concept that introduced them.
    pub fn to_concept(&self, schema: &Schema) -> Concept {
        if self.is_incoherent() {
            // ⊥ has no constructor in the language; the canonical empty
            // concept is an empty enumeration's complement — we use a
            // contradictory cardinality, which normalizes back to ⊥.
            let r = schema.any_role();
            return match r {
                Some(r) => Concept::And(vec![Concept::AtLeast(1, r), Concept::AtMost(0, r)]),
                None => Concept::OneOf(vec![]),
            };
        }
        let mut parts = Vec::new();
        if self.layer != Layer::Thing {
            parts.push(Concept::Builtin(self.layer));
        }
        for &p in &self.prims {
            parts.push(schema.prim_concept(p));
        }
        for &t in &self.tests {
            parts.push(Concept::Test(t));
        }
        // Individual lists are rendered in *name* order so the output is
        // canonical across symbol tables (interned ids are not stable
        // under snapshot/replay).
        let by_name = |inds: &BTreeSet<IndRef>| -> Vec<IndRef> {
            let mut v: Vec<IndRef> = inds.iter().cloned().collect();
            v.sort_by_key(|i| match i {
                IndRef::Classic(n) => (0u8, schema.symbols.individual_name(*n).to_owned()),
                IndRef::Host(h) => (1u8, h.to_string()),
            });
            v
        };
        if let Some(s) = &self.one_of {
            parts.push(Concept::OneOf(by_name(s)));
        }
        for (&r, rr) in &self.roles {
            if rr.at_least > rr.fillers.len() as u32 {
                parts.push(Concept::AtLeast(rr.at_least, r));
            }
            if !rr.fillers.is_empty() {
                parts.push(Concept::Fills(r, by_name(&rr.fillers)));
            }
            if rr.closed {
                parts.push(Concept::Close(r));
            } else if let Some(m) = rr.at_most {
                parts.push(Concept::AtMost(m, r));
            }
            if let Some(all) = &rr.all {
                parts.push(Concept::All(r, Box::new(all.to_concept(schema))));
            }
        }
        for (p, q) in self.same_as.pairs() {
            parts.push(Concept::SameAs(p.clone(), q.clone()));
        }
        match parts.len() {
            0 => Concept::thing(),
            1 => parts.pop().expect("one part"),
            _ => Concept::And(parts),
        }
    }

    /// Render against a symbol table (via [`NormalForm::to_concept`]'s
    /// structure but without needing a schema — bare ids for prims).
    pub fn display<'a>(&'a self, symbols: &'a SymbolTable) -> DisplayNf<'a> {
        DisplayNf { nf: self, symbols }
    }
}

/// Debug-oriented printer for normal forms.
pub struct DisplayNf<'a> {
    nf: &'a NormalForm,
    symbols: &'a SymbolTable,
}

impl fmt::Display for DisplayNf<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let nf = self.nf;
        if nf.is_incoherent() {
            return write!(f, "⊥");
        }
        write!(f, "[{}", nf.layer)?;
        for &p in &nf.prims {
            write!(f, " prim:{}", self.symbols.prim_key(p))?;
        }
        for &t in &nf.tests {
            write!(f, " test:{}", self.symbols.test_name(t))?;
        }
        if let Some(s) = &nf.one_of {
            write!(f, " one-of:{{")?;
            for (i, ind) in s.iter().enumerate() {
                if i > 0 {
                    write!(f, " ")?;
                }
                crate::desc::write_ind(ind, self.symbols, f)?;
            }
            write!(f, "}}")?;
        }
        for (&r, rr) in &nf.roles {
            write!(f, " {}:", self.symbols.role_name(r))?;
            write!(f, "[{}..", rr.at_least)?;
            match rr.at_most {
                Some(m) => write!(f, "{m}]")?,
                None => write!(f, "*]")?,
            }
            if rr.closed {
                write!(f, "closed")?;
            }
            if !rr.fillers.is_empty() {
                write!(f, " fills:{{")?;
                for (i, ind) in rr.fillers.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    crate::desc::write_ind(ind, self.symbols, f)?;
                }
                write!(f, "}}")?;
            }
            if let Some(all) = &rr.all {
                write!(
                    f,
                    " all:{}",
                    DisplayNf {
                        nf: all,
                        symbols: self.symbols
                    }
                )?;
            }
        }
        if !nf.same_as.is_empty() {
            write!(f, " same-as:{}", nf.same_as.display(self.symbols))?;
        }
        write!(f, "]")
    }
}

/// Normalize a concept expression against the schema.
///
/// Structural problems (undefined roles/concepts, cyclic definitions) are
/// errors; *semantic* contradictions produce a coherent `Ok(⊥)` normal
/// form carrying the clash, which the KB layer converts to a rejected
/// update (§3.4).
///
/// The paper's §2.2 equivalences fall out as structural equality:
///
/// ```
/// use classic_core::{normalize, Concept, Schema};
///
/// let mut schema = Schema::new();
/// let r = schema.define_role("thing-driven")?;
/// schema.define_concept("CAR", Concept::primitive(Concept::thing(), "car"))?;
/// schema.define_concept("EXPENSIVE", Concept::primitive(Concept::thing(), "exp"))?;
/// let car = Concept::Name(schema.symbols.find_concept("CAR").unwrap());
/// let exp = Concept::Name(schema.symbols.find_concept("EXPENSIVE").unwrap());
///
/// // (AND (ALL r CAR) (ALL r EXPENSIVE)) ≡ (ALL r (AND CAR EXPENSIVE))
/// let split = Concept::and([
///     Concept::all(r, car.clone()),
///     Concept::all(r, exp.clone()),
/// ]);
/// let joined = Concept::all(r, Concept::and([car, exp]));
/// assert_eq!(normalize(&split, &mut schema)?, normalize(&joined, &mut schema)?);
/// # Ok::<(), classic_core::ClassicError>(())
/// ```
pub fn normalize(c: &Concept, schema: &mut Schema) -> Result<NormalForm> {
    let mut nf = NormalForm::top();
    build(c, schema, &mut nf)?;
    check_recursion(&nf, &schema.symbols)?;
    nf.renormalize(schema);
    if let Some(Clash::RecursiveCoreference { path }) = nf.clash() {
        return Err(recursion_error(path, &schema.symbols));
    }
    Ok(nf)
}

/// Scan a freshly built (pre-renormalization) form for recursive
/// co-reference at any nesting depth. Run before [`NormalForm::renormalize`]
/// so a nested cycle is reported as a positioned error instead of being
/// folded away as an `AT-MOST 0` on the enclosing role.
fn check_recursion(nf: &NormalForm, symbols: &SymbolTable) -> Result<()> {
    if let Some((p, _)) = nf.same_as.find_cycle() {
        return Err(recursion_error(&p, symbols));
    }
    for rr in nf.roles.values() {
        if let Some(all) = &rr.all {
            check_recursion(all, symbols)?;
        }
    }
    Ok(())
}

/// Render a positioned [`ClassicError::RecursiveDefinition`] for a
/// recursive co-reference chain (empty path = caught by the convergence
/// guard, with no specific witness).
fn recursion_error(path: &Path, symbols: &SymbolTable) -> ClassicError {
    if path.is_empty() {
        return ClassicError::RecursiveDefinition(
            "SAME-AS constraints force a non-terminating normal form".to_owned(),
        );
    }
    let mut chain = String::from("(");
    for (i, r) in path.iter().enumerate() {
        if i > 0 {
            chain.push(' ');
        }
        chain.push_str(symbols.role_name(*r));
    }
    chain.push(')');
    ClassicError::RecursiveDefinition(format!(
        "SAME-AS equates attribute chain {chain} with an extension of itself"
    ))
}

/// Conjoin an *expression* into an existing normal form contextually.
///
/// Unlike normalizing `c` on its own and then [`NormalForm::conjoin`]ing,
/// this merges the expression's raw structure into `target` before deriving
/// invariants, so context-sensitive descriptors combine with what `target`
/// already knows. The paper's central example (§3.2): asserting `(CLOSE
/// thing-driven)` on Rocky closes the role over Rocky's *currently known*
/// fillers — it does not assert that the role is empty.
pub fn conjoin_expression(c: &Concept, schema: &mut Schema, target: &mut NormalForm) -> Result<()> {
    build(c, schema, target)?;
    check_recursion(target, &schema.symbols)?;
    target.renormalize(schema);
    if let Some(Clash::RecursiveCoreference { path }) = target.clash() {
        let err = recursion_error(path, &schema.symbols);
        return Err(err);
    }
    Ok(())
}

fn build(c: &Concept, schema: &mut Schema, nf: &mut NormalForm) -> Result<()> {
    if nf.is_incoherent() {
        return Ok(());
    }
    match c {
        Concept::Builtin(l) => match nf.layer.meet(*l) {
            Some(m) => nf.layer = m,
            None => nf.make_incoherent(Clash::LayerClash),
        },
        Concept::Name(n) => {
            // Direct self-reference during `define-concept`: the name is
            // not yet bound (so the old behavior was a confusing
            // `UndefinedConcept`), and binding it would require unfolding
            // it into itself — a recursive definition, forbidden (§2.2).
            if schema.defining() == Some(*n) {
                return Err(ClassicError::RecursiveDefinition(format!(
                    "concept {} refers to itself in its own definition",
                    schema.symbols.concept_name(*n)
                )));
            }
            let def = schema.concept_nf(*n)?.clone();
            nf.merge_raw(&def);
        }
        Concept::Primitive { parent, index } => {
            let mut parent_nf = normalize(parent, schema)?;
            let prim = schema.register_prim(index, None, &parent_nf)?;
            if parent_nf
                .prims
                .iter()
                .any(|&q| schema.prims_disjoint(prim, q))
            {
                nf.make_incoherent(Clash::DisjointPrimitives(prim, prim));
                return Ok(());
            }
            parent_nf.prims.insert(prim);
            nf.merge_raw(&parent_nf);
        }
        Concept::DisjointPrimitive {
            parent,
            grouping,
            index,
        } => {
            let mut parent_nf = normalize(parent, schema)?;
            let prim = schema.register_prim(index, Some(grouping), &parent_nf)?;
            if let Some(&q) = parent_nf
                .prims
                .iter()
                .find(|&&q| schema.prims_disjoint(prim, q))
            {
                nf.make_incoherent(Clash::DisjointPrimitives(prim, q));
                return Ok(());
            }
            parent_nf.prims.insert(prim);
            nf.merge_raw(&parent_nf);
        }
        Concept::OneOf(inds) => {
            let set: BTreeSet<IndRef> = inds.iter().cloned().collect();
            let mut other = NormalForm::top();
            other.one_of = Some(set);
            nf.merge_raw(&other);
        }
        Concept::All(r, inner) => {
            schema.check_role(*r)?;
            let mut inner_nf = NormalForm::top();
            build(inner, schema, &mut inner_nf)?;
            let mut other = NormalForm::top();
            other.roles.insert(
                *r,
                RoleRestriction {
                    all: Some(Box::new(inner_nf)),
                    ..RoleRestriction::default()
                },
            );
            nf.merge_raw(&other);
        }
        Concept::AtLeast(n, r) => {
            schema.check_role(*r)?;
            let mut other = NormalForm::top();
            other.roles.insert(
                *r,
                RoleRestriction {
                    at_least: *n,
                    ..RoleRestriction::default()
                },
            );
            nf.merge_raw(&other);
        }
        Concept::AtMost(n, r) => {
            schema.check_role(*r)?;
            let mut other = NormalForm::top();
            other.roles.insert(
                *r,
                RoleRestriction {
                    at_most: Some(*n),
                    ..RoleRestriction::default()
                },
            );
            nf.merge_raw(&other);
        }
        Concept::SameAs(p, q) => {
            // Co-reference is restricted to chains of single-valued roles
            // (paper §5). A role qualifies either by declaration
            // (`define-attribute`) or by the constraint the SAME-AS itself
            // imposes: `require_chain` pins every step to AT-MOST 1, the
            // way the paper's DOMESTIC-CRIME pairs its SAME-AS with an
            // explicit (AT-MOST 1 perpetrator).
            for path in [p, q] {
                if path.is_empty() {
                    return Err(ClassicError::EmptySameAsPath);
                }
                for &r in path {
                    schema.check_role(r)?;
                }
            }
            let mut other = NormalForm::top();
            other.same_as.add_pair(p.clone(), q.clone());
            nf.merge_raw(&other);
        }
        Concept::Fills(r, inds) => {
            schema.check_role(*r)?;
            let mut other = NormalForm::top();
            other.roles.insert(
                *r,
                RoleRestriction {
                    fillers: inds.iter().cloned().collect(),
                    ..RoleRestriction::default()
                },
            );
            nf.merge_raw(&other);
        }
        Concept::Close(r) => {
            schema.check_role(*r)?;
            let mut other = NormalForm::top();
            other.roles.insert(
                *r,
                RoleRestriction {
                    closed: true,
                    ..RoleRestriction::default()
                },
            );
            nf.merge_raw(&other);
        }
        Concept::Test(t) => {
            schema.check_test(*t)?;
            nf.tests.insert(*t);
        }
        Concept::And(parts) => {
            for part in parts {
                build(part, schema, nf)?;
                if nf.is_incoherent() {
                    return Ok(());
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
#[path = "normal_tests.rs"]
mod tests;
