//! The schema: named concepts, roles, primitive registrations, and tests.
//!
//! "In a CLASSIC database, schema definition consists of giving names to
//! various concepts, roles and individuals that appear of interest to all
//! users, thus establishing a shorthand vocabulary" (paper §3.1). Unlike
//! traditional DBMSs, schema definition "can be interleaved with updates
//! and queries, so that we can define a new concept any time it seems
//! useful"; the schema is accessed uniformly with the data (the
//! `concept-aspect` introspection operators live in [`crate::aspect`]).

use crate::desc::Concept;
use crate::error::{ClassicError, Result};
use crate::host::HostValue;
use crate::normal::{normalize, NormalForm};
use crate::symbol::{ConceptName, PrimId, RoleId, SymbolTable, TestId};
use std::collections::HashMap;
use std::fmt;

/// Declaration attached to a role name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoleDecl {
    /// Attributes are single-valued roles (implicit `AT-MOST 1`); only
    /// attributes may appear in `SAME-AS` chains (§5).
    pub attribute: bool,
}

/// What a test function is applied to during recognition.
///
/// `TEST` concepts carry "an associated unary function in the host
/// implementation language … which must return a boolean value" (§2.1.4).
/// Our host language is Rust; the function sees either a host value or a
/// CLASSIC individual's derived description.
pub enum TestArg<'a> {
    /// A host individual (number, string, symbol).
    Host(&'a HostValue),
    /// A CLASSIC individual: its name (if any) and derived normal form.
    Ind(Option<&'a str>, &'a NormalForm),
}

/// A registered test function. `Arc`, not `Box`: schemas are cloneable
/// (server read snapshots clone whole KBs) and closures cannot be, so
/// clones share the registered functions.
pub type TestFn = std::sync::Arc<dyn Fn(&TestArg<'_>) -> bool + Send + Sync>;

/// A stored named-concept definition.
#[derive(Clone)]
pub struct ConceptDef {
    /// The definition as written (`concept-aspect` reads facets off this
    /// via its normal form; the told form is kept for display/persistence).
    pub told: Concept,
    /// The unfolded, normalized meaning.
    pub nf: NormalForm,
}

#[derive(Clone)]
struct PrimInfo {
    /// Disjointness grouping, if declared via `DISJOINT-PRIMITIVE`.
    group: Option<u32>,
    /// The parent normal form recorded at first registration; a later
    /// registration under a different parent is an error (definitions do
    /// not change meaning over time, §2.2).
    parent: NormalForm,
    /// The named concept that introduced this primitive, once known —
    /// used to render normal forms back into concise concepts.
    introduced_by: Option<ConceptName>,
}

/// The CLASSIC schema: symbol table, role declarations, named concepts,
/// primitive atoms and their disjoint groupings, and the test registry.
/// Cloning is deep except for the test registry, whose `Arc`'d functions
/// are shared (the identity of a test is its name, not its closure).
#[derive(Clone)]
pub struct Schema {
    /// The interned names of every role, concept, individual and test.
    pub symbols: SymbolTable,
    roles: Vec<Option<RoleDecl>>,
    concepts: HashMap<ConceptName, ConceptDef>,
    /// Insertion order of definitions (stable iteration for the taxonomy
    /// and persistence).
    concept_order: Vec<ConceptName>,
    prims: Vec<PrimInfo>,
    groups: HashMap<String, u32>,
    tests: Vec<TestFn>,
    /// The concept currently being `define-concept`ed, if any; a reference
    /// to it from inside its own definition is a recursive definition and
    /// is rejected with a positioned error (§2.2 forbids cycles).
    defining: Option<ConceptName>,
}

impl fmt::Debug for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Schema")
            .field("roles", &self.roles.len())
            .field("concepts", &self.concepts.len())
            .field("prims", &self.prims.len())
            .field("tests", &self.tests.len())
            .finish()
    }
}

impl Default for Schema {
    fn default() -> Self {
        Self::new()
    }
}

impl Schema {
    /// An empty schema (no roles, concepts, or tests).
    pub fn new() -> Self {
        Schema {
            symbols: SymbolTable::new(),
            roles: Vec::new(),
            concepts: HashMap::new(),
            concept_order: Vec::new(),
            prims: Vec::new(),
            groups: HashMap::new(),
            tests: Vec::new(),
            defining: None,
        }
    }

    // ---- roles ---------------------------------------------------------

    /// `define-role[name]`: make the DB aware of a role identifier so that
    /// later typos are detectable (§3.1 footnote 3). Idempotent.
    pub fn define_role(&mut self, name: &str) -> Result<RoleId> {
        self.define_role_inner(name, false)
    }

    /// Declare a single-valued role (attribute), required for `SAME-AS`.
    pub fn define_attribute(&mut self, name: &str) -> Result<RoleId> {
        self.define_role_inner(name, true)
    }

    fn define_role_inner(&mut self, name: &str, attribute: bool) -> Result<RoleId> {
        let id = self.symbols.role(name);
        if id.index() >= self.roles.len() {
            self.roles.resize(id.index() + 1, None);
        }
        match &mut self.roles[id.index()] {
            slot @ None => {
                *slot = Some(RoleDecl { attribute });
                Ok(id)
            }
            Some(decl) if decl.attribute == attribute => Ok(id),
            Some(_) => Err(ClassicError::Malformed(format!(
                "role {name:?} redeclared with a different kind \
                 (attribute vs multi-valued)"
            ))),
        }
    }

    /// Is `role` declared (via `define-role`/`define-attribute`)? A name
    /// merely interned by a parser is not a declaration — `define-role`
    /// exists precisely so typos are detectable (§3.1 footnote 3).
    pub fn check_role(&self, role: RoleId) -> Result<()> {
        match self.roles.get(role.index()) {
            Some(Some(_)) => Ok(()),
            _ => Err(ClassicError::UndefinedRole(role)),
        }
    }

    /// Is `role` declared single-valued (`define-attribute`)?
    pub fn is_attribute(&self, role: RoleId) -> bool {
        matches!(
            self.roles.get(role.index()),
            Some(Some(RoleDecl { attribute: true }))
        )
    }

    /// The declaration for `role`, if declared.
    pub fn role_decl(&self, role: RoleId) -> Option<RoleDecl> {
        self.roles.get(role.index()).copied().flatten()
    }

    /// Number of *declared* roles.
    pub fn role_count(&self) -> usize {
        self.roles.iter().flatten().count()
    }

    /// Any declared role (used to synthesize a ⊥ expression).
    pub fn any_role(&self) -> Option<RoleId> {
        self.roles
            .iter()
            .position(Option::is_some)
            .map(RoleId::from_index)
    }

    // ---- named concepts -------------------------------------------------

    /// `define-concept[name, expr]`: normalize and store. References to
    /// undefined names are errors, and a reference to the name *being
    /// defined* is a positioned [`ClassicError::RecursiveDefinition`] —
    /// together with rejected redefinition this keeps the stored schema
    /// cycle-free, so stored normal forms are always fully unfolded.
    pub fn define_concept(&mut self, name: &str, told: Concept) -> Result<ConceptName> {
        let id = self.symbols.concept(name);
        if self.concepts.contains_key(&id) {
            return Err(ClassicError::ConceptRedefined(id));
        }
        self.defining = Some(id);
        let normalized = normalize(&told, self);
        self.defining = None;
        let nf = normalized?;
        // Remember which primitives this definition introduced, so normal
        // forms can be rendered back using the name.
        if let Concept::Primitive { .. } | Concept::DisjointPrimitive { .. } = &told {
            for &p in &nf.prims {
                let info = &mut self.prims[p.index()];
                if info.introduced_by.is_none() {
                    info.introduced_by = Some(id);
                }
            }
        }
        self.concepts.insert(id, ConceptDef { told, nf });
        self.concept_order.push(id);
        Ok(id)
    }

    /// The concept currently being defined, if a `define-concept` is in
    /// flight (used by normalization to reject self-reference).
    pub(crate) fn defining(&self) -> Option<ConceptName> {
        self.defining
    }

    /// Has `name` been `define-concept`ed?
    pub fn is_defined(&self, name: ConceptName) -> bool {
        self.concepts.contains_key(&name)
    }

    /// The normalized meaning of a defined concept.
    pub fn concept_nf(&self, name: ConceptName) -> Result<&NormalForm> {
        self.concepts
            .get(&name)
            .map(|d| &d.nf)
            .ok_or(ClassicError::UndefinedConcept(name))
    }

    /// The definition exactly as written (`told` information).
    pub fn concept_told(&self, name: ConceptName) -> Result<&Concept> {
        self.concepts
            .get(&name)
            .map(|d| &d.told)
            .ok_or(ClassicError::UndefinedConcept(name))
    }

    /// Defined concepts in definition order.
    pub fn defined_concepts(&self) -> impl Iterator<Item = ConceptName> + '_ {
        self.concept_order.iter().copied()
    }

    /// Number of defined concepts.
    pub fn concept_count(&self) -> usize {
        self.concept_order.len()
    }

    // ---- primitives -----------------------------------------------------

    /// Register (or re-validate) a primitive atom. Called by normalization
    /// when it encounters `PRIMITIVE`/`DISJOINT-PRIMITIVE`.
    pub(crate) fn register_prim(
        &mut self,
        index: &str,
        grouping: Option<&str>,
        parent: &NormalForm,
    ) -> Result<PrimId> {
        // Disjoint prims are namespaced by their grouping so `male` in the
        // `gender` grouping can coexist with a plain `male` primitive.
        let key = match grouping {
            Some(g) => format!("{g}/{index}"),
            None => index.to_owned(),
        };
        let id = self.symbols.prim(&key);
        let group = grouping.map(|g| {
            let next = self.groups.len() as u32;
            *self.groups.entry(g.to_owned()).or_insert(next)
        });
        if id.index() == self.prims.len() {
            self.prims.push(PrimInfo {
                group,
                parent: parent.clone(),
                introduced_by: None,
            });
            Ok(id)
        } else {
            let info = &self.prims[id.index()];
            if info.group != group || info.parent != *parent {
                Err(ClassicError::PrimitiveReparented(id))
            } else {
                Ok(id)
            }
        }
    }

    /// Are two primitive atoms declared mutually exclusive?
    /// (Same disjoint grouping, different indices — §3.4.)
    pub fn prims_disjoint(&self, a: PrimId, b: PrimId) -> bool {
        if a == b {
            return false;
        }
        match (
            self.prims.get(a.index()).and_then(|i| i.group),
            self.prims.get(b.index()).and_then(|i| i.group),
        ) {
            (Some(ga), Some(gb)) => ga == gb,
            _ => false,
        }
    }

    /// The parent normal form recorded for a primitive (its necessary
    /// conditions beyond the atom itself).
    pub fn prim_parent(&self, p: PrimId) -> Option<&NormalForm> {
        self.prims.get(p.index()).map(|i| &i.parent)
    }

    /// A concise concept expression denoting just this primitive atom:
    /// the introducing name when known, else the raw `PRIMITIVE` form.
    pub fn prim_concept(&self, p: PrimId) -> Concept {
        match self.prims.get(p.index()).and_then(|i| i.introduced_by) {
            Some(name) => Concept::Name(name),
            None => {
                let key = self.symbols.prim_key(p).to_owned();
                match key.split_once('/') {
                    Some((g, ix)) => Concept::disjoint_primitive(Concept::thing(), g, ix),
                    None => Concept::primitive(Concept::thing(), &key),
                }
            }
        }
    }

    /// Number of registered primitive atoms.
    pub fn prim_count(&self) -> usize {
        self.prims.len()
    }

    // ---- tests ----------------------------------------------------------

    /// Register a host-language test function under a name (§2.1.4).
    /// Re-registering a name replaces its function (the identity — and
    /// hence all reasoning — is the name, not the closure).
    pub fn register_test<F>(&mut self, name: &str, f: F) -> TestId
    where
        F: Fn(&TestArg<'_>) -> bool + Send + Sync + 'static,
    {
        let id = self.symbols.test(name);
        if id.index() == self.tests.len() {
            self.tests.push(std::sync::Arc::new(f));
        } else {
            self.tests[id.index()] = std::sync::Arc::new(f);
        }
        id
    }

    /// Is `t` a registered test function?
    pub fn check_test(&self, t: TestId) -> Result<()> {
        if t.index() < self.tests.len() {
            Ok(())
        } else {
            Err(ClassicError::UndefinedTest(t))
        }
    }

    /// Run a registered test. Tests are pure black boxes; the engine only
    /// interprets the boolean.
    pub fn run_test(&self, t: TestId, arg: &TestArg<'_>) -> Result<bool> {
        self.tests
            .get(t.index())
            .map(|f| f(arg))
            .ok_or(ClassicError::UndefinedTest(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::desc::Concept;

    #[test]
    fn roles_define_and_check() {
        let mut s = Schema::new();
        let r = s.define_role("thing-driven").unwrap();
        assert!(s.check_role(r).is_ok());
        assert!(!s.is_attribute(r));
        let a = s.define_attribute("domicile").unwrap();
        assert!(s.is_attribute(a));
        // Idempotent redefinition is fine; kind change is not.
        assert_eq!(s.define_role("thing-driven").unwrap(), r);
        assert!(s.define_attribute("thing-driven").is_err());
        // Undeclared role id fails the check.
        assert!(s.check_role(crate::symbol::RoleId::from_index(99)).is_err());
    }

    #[test]
    fn concept_definition_and_redefinition() {
        let mut s = Schema::new();
        let c = s
            .define_concept("CAR", Concept::primitive(Concept::thing(), "car"))
            .unwrap();
        assert!(s.is_defined(c));
        assert!(s.concept_nf(c).is_ok());
        assert!(matches!(
            s.define_concept("CAR", Concept::thing()),
            Err(ClassicError::ConceptRedefined(_))
        ));
    }

    #[test]
    fn undefined_concept_reference_fails() {
        let mut s = Schema::new();
        let ghost = s.symbols.concept("GHOST");
        let res = s.define_concept("USES-GHOST", Concept::Name(ghost));
        assert!(matches!(res, Err(ClassicError::UndefinedConcept(_))));
    }

    #[test]
    fn disjoint_groupings() {
        let mut s = Schema::new();
        s.define_concept("PERSON", Concept::primitive(Concept::thing(), "person"))
            .unwrap();
        let person = s.symbols.find_concept("PERSON").unwrap();
        let male = s
            .define_concept(
                "MALE",
                Concept::disjoint_primitive(Concept::Name(person), "gender", "male"),
            )
            .unwrap();
        let female = s
            .define_concept(
                "FEMALE",
                Concept::disjoint_primitive(Concept::Name(person), "gender", "female"),
            )
            .unwrap();
        let m = s.concept_nf(male).unwrap().clone();
        let fe = s.concept_nf(female).unwrap().clone();
        let mp: Vec<_> = m.prims.difference(&fe.prims).copied().collect();
        let fp: Vec<_> = fe.prims.difference(&m.prims).copied().collect();
        assert_eq!(mp.len(), 1);
        assert_eq!(fp.len(), 1);
        assert!(s.prims_disjoint(mp[0], fp[0]));
        assert!(!s.prims_disjoint(mp[0], mp[0]));
    }

    #[test]
    fn plain_primitives_are_not_disjoint() {
        let mut s = Schema::new();
        s.define_concept("CAR", Concept::primitive(Concept::thing(), "car"))
            .unwrap();
        s.define_concept("BOAT", Concept::primitive(Concept::thing(), "boat"))
            .unwrap();
        let car = s.symbols.find_concept("CAR").unwrap();
        let boat = s.symbols.find_concept("BOAT").unwrap();
        let a = *s.concept_nf(car).unwrap().prims.iter().next().unwrap();
        let b = *s.concept_nf(boat).unwrap().prims.iter().next().unwrap();
        assert!(!s.prims_disjoint(a, b));
    }

    #[test]
    fn test_registry_runs() {
        let mut s = Schema::new();
        let even = s.register_test("even", |arg| match arg {
            TestArg::Host(HostValue::Int(i)) => i % 2 == 0,
            _ => false,
        });
        assert!(s
            .run_test(even, &TestArg::Host(&HostValue::Int(4)))
            .unwrap());
        assert!(!s
            .run_test(even, &TestArg::Host(&HostValue::Int(3)))
            .unwrap());
        assert!(s.check_test(even).is_ok());
        assert!(s.check_test(crate::symbol::TestId::from_index(7)).is_err());
    }

    #[test]
    fn prim_concept_uses_introducing_name() {
        let mut s = Schema::new();
        let car = s
            .define_concept("CAR", Concept::primitive(Concept::thing(), "car"))
            .unwrap();
        let nf = s.concept_nf(car).unwrap().clone();
        let p = *nf.prims.iter().next().unwrap();
        assert_eq!(s.prim_concept(p), Concept::Name(car));
    }
}
