//! Unit tests for normalization — the §2.2 canonicalization machinery.
//!
//! Split into its own file because the coverage is broad: every
//! constructor interaction, every clash source, and the canonicality
//! guarantees structural equality relies on.

use crate::desc::{Concept, IndRef};
use crate::error::{Clash, ClassicError};
use crate::host::{HostClass, HostValue, Layer};
use crate::normal::{conjoin_expression, normalize, NormalForm};
use crate::schema::Schema;
use crate::symbol::RoleId;

struct Fix {
    schema: Schema,
    r: RoleId,
    s: RoleId,
}

fn fix() -> Fix {
    let mut schema = Schema::new();
    let r = schema.define_role("r").unwrap();
    let s = schema.define_role("s").unwrap();
    schema
        .define_concept("CAR", Concept::primitive(Concept::thing(), "car"))
        .unwrap();
    Fix { schema, r, s }
}

fn nf(f: &mut Fix, c: &Concept) -> NormalForm {
    normalize(c, &mut f.schema).unwrap()
}

fn ind(f: &mut Fix, name: &str) -> IndRef {
    IndRef::Classic(f.schema.symbols.individual(name))
}

// ---- basics ---------------------------------------------------------------

#[test]
fn thing_normalizes_to_top() {
    let mut f = fix();
    assert!(nf(&mut f, &Concept::thing()).is_top());
    assert!(nf(&mut f, &Concept::And(vec![])).is_top());
}

#[test]
fn and_is_flattened_order_insensitive_and_idempotent() {
    let mut f = fix();
    let r = f.r;
    let a = Concept::AtLeast(1, r);
    let b = Concept::AtMost(5, r);
    let n1 = nf(&mut f, &Concept::and([a.clone(), b.clone()]));
    let n2 = nf(&mut f, &Concept::and([b.clone(), a.clone()]));
    let n3 = nf(
        &mut f,
        &Concept::and([a.clone(), Concept::and([b.clone(), a.clone()])]),
    );
    assert_eq!(n1, n2);
    assert_eq!(n1, n3);
}

#[test]
fn normalization_is_idempotent_through_to_concept() {
    // normalize ∘ to_concept ∘ normalize = normalize
    let mut f = fix();
    let r = f.r;
    let v = ind(&mut f, "V");
    let c = Concept::and([
        Concept::AtLeast(1, r),
        Concept::all(r, Concept::one_of([v])),
        Concept::AtMost(7, f.s),
    ]);
    let n1 = nf(&mut f, &c);
    let rendered = n1.to_concept(&f.schema);
    let n2 = nf(&mut f, &rendered);
    assert_eq!(n1, n2);
}

// ---- cardinality interactions ----------------------------------------------

#[test]
fn bounds_merge_to_tightest() {
    let mut f = fix();
    let r = f.r;
    let n = nf(
        &mut f,
        &Concept::and([
            Concept::AtLeast(1, r),
            Concept::AtLeast(3, r),
            Concept::AtMost(9, r),
            Concept::AtMost(5, r),
        ]),
    );
    let rr = &n.roles[&r];
    assert_eq!(rr.at_least, 3);
    assert_eq!(rr.at_most, Some(5));
}

#[test]
fn crossing_bounds_are_incoherent_with_reason() {
    let mut f = fix();
    let r = f.r;
    let n = nf(
        &mut f,
        &Concept::and([Concept::AtLeast(4, r), Concept::AtMost(2, r)]),
    );
    assert!(n.is_incoherent());
    assert!(matches!(n.clash(), Some(Clash::Cardinality { .. })));
}

#[test]
fn at_least_zero_is_trivial() {
    let mut f = fix();
    let r = f.r;
    let n = nf(&mut f, &Concept::AtLeast(0, r));
    assert!(n.is_top());
}

#[test]
fn impossible_role_swallows_value_restriction() {
    // (AND (AT-MOST 0 r) (ALL r CAR)) ≡ (AT-MOST 0 r)
    let mut f = fix();
    let r = f.r;
    let car = Concept::Name(f.schema.symbols.find_concept("CAR").unwrap());
    let with_all = nf(
        &mut f,
        &Concept::and([Concept::AtMost(0, r), Concept::all(r, car)]),
    );
    let without = nf(&mut f, &Concept::AtMost(0, r));
    assert_eq!(with_all, without);
}

#[test]
fn bottom_value_restriction_zeroes_the_role() {
    // (ALL r ⊥) ≡ (AT-MOST 0 r)
    let mut f = fix();
    let (r, s) = (f.r, f.s);
    let bot = Concept::and([Concept::AtLeast(2, s), Concept::AtMost(1, s)]);
    let all_bot = nf(&mut f, &Concept::all(r, bot));
    assert!(!all_bot.is_incoherent());
    let zero = nf(&mut f, &Concept::AtMost(0, r));
    assert_eq!(all_bot, zero);
}

// ---- enumerations -----------------------------------------------------------

#[test]
fn one_of_intersection_and_emptiness() {
    let mut f = fix();
    let a = ind(&mut f, "A");
    let b = ind(&mut f, "B");
    let c = ind(&mut f, "C");
    let n = nf(
        &mut f,
        &Concept::and([
            Concept::one_of([a.clone(), b.clone()]),
            Concept::one_of([b.clone(), c.clone()]),
        ]),
    );
    assert_eq!(n.one_of.as_ref().unwrap().len(), 1);
    let empty = nf(
        &mut f,
        &Concept::and([Concept::one_of([a]), Concept::one_of([c])]),
    );
    assert!(empty.is_incoherent());
    assert!(matches!(empty.clash(), Some(Clash::EmptyEnumeration)));
}

#[test]
fn one_of_derives_layer() {
    let mut f = fix();
    let a = ind(&mut f, "A");
    let n = nf(&mut f, &Concept::one_of([a.clone()]));
    assert_eq!(n.layer, Layer::Classic);
    let n = nf(&mut f, &Concept::one_of([IndRef::Host(HostValue::Int(1))]));
    assert_eq!(n.layer, Layer::Host(Some(HostClass::Integer)));
    // Mixed: the join.
    let n = nf(
        &mut f,
        &Concept::one_of([a, IndRef::Host(HostValue::Int(1))]),
    );
    assert_eq!(n.layer, Layer::Thing);
}

#[test]
fn one_of_filtered_by_layer() {
    // (AND INTEGER (ONE-OF Rocky 3 "x")) keeps only 3.
    let mut f = fix();
    let rocky = ind(&mut f, "Rocky");
    let n = nf(
        &mut f,
        &Concept::and([
            Concept::Builtin(Layer::Host(Some(HostClass::Integer))),
            Concept::one_of([
                rocky,
                IndRef::Host(HostValue::Int(3)),
                IndRef::Host(HostValue::Str("x".into())),
            ]),
        ]),
    );
    assert_eq!(n.one_of.as_ref().unwrap().len(), 1);
    assert_eq!(n.layer, Layer::Host(Some(HostClass::Integer)));
    // And filtering to nothing is a clash.
    let rocky2 = ind(&mut f, "Rocky");
    let n = nf(
        &mut f,
        &Concept::and([
            Concept::Builtin(Layer::Host(None)),
            Concept::one_of([rocky2]),
        ]),
    );
    assert!(n.is_incoherent());
}

#[test]
fn enumerated_value_restriction_bounds_cardinality() {
    let mut f = fix();
    let r = f.r;
    let a = ind(&mut f, "A");
    let b = ind(&mut f, "B");
    let n = nf(&mut f, &Concept::all(r, Concept::one_of([a, b])));
    assert_eq!(n.roles[&r].at_most, Some(2));
    // Which can clash with a lower bound.
    let a2 = ind(&mut f, "A");
    let n = nf(
        &mut f,
        &Concept::and([
            Concept::all(r, Concept::one_of([a2])),
            Concept::AtLeast(2, r),
        ]),
    );
    assert!(n.is_incoherent());
}

// ---- layers -------------------------------------------------------------------

#[test]
fn layer_clash_is_incoherent() {
    let mut f = fix();
    let n = nf(
        &mut f,
        &Concept::and([
            Concept::Builtin(Layer::Classic),
            Concept::Builtin(Layer::Host(None)),
        ]),
    );
    assert!(n.is_incoherent());
    assert!(matches!(n.clash(), Some(Clash::LayerClash)));
}

#[test]
fn required_fillers_force_classic_layer() {
    let mut f = fix();
    let r = f.r;
    let n = nf(&mut f, &Concept::AtLeast(1, r));
    assert_eq!(n.layer, Layer::Classic);
    // And conflict with a host layer.
    let n = nf(
        &mut f,
        &Concept::and([
            Concept::Builtin(Layer::Host(Some(HostClass::Integer))),
            Concept::AtLeast(1, r),
        ]),
    );
    assert!(n.is_incoherent());
}

#[test]
fn host_layer_drops_vacuous_role_restrictions() {
    // (AND INTEGER (AT-MOST 3 r)) ≡ INTEGER — integers have no roles.
    let mut f = fix();
    let r = f.r;
    let with = nf(
        &mut f,
        &Concept::and([
            Concept::Builtin(Layer::Host(Some(HostClass::Integer))),
            Concept::AtMost(3, r),
        ]),
    );
    let without = nf(
        &mut f,
        &Concept::Builtin(Layer::Host(Some(HostClass::Integer))),
    );
    assert_eq!(with, without);
}

// ---- fills / close ---------------------------------------------------------------

#[test]
fn fills_union_under_and() {
    let mut f = fix();
    let r = f.r;
    let a = ind(&mut f, "A");
    let b = ind(&mut f, "B");
    let n = nf(
        &mut f,
        &Concept::and([
            Concept::Fills(r, vec![a.clone()]),
            Concept::Fills(r, vec![b.clone(), a.clone()]),
        ]),
    );
    let rr = &n.roles[&r];
    assert_eq!(rr.fillers.len(), 2);
    assert_eq!(rr.at_least, 2, "distinct fillers raise AT-LEAST under UNA");
}

#[test]
fn close_in_same_expression_sees_sibling_fills() {
    let mut f = fix();
    let r = f.r;
    let a = ind(&mut f, "A");
    let n = nf(
        &mut f,
        &Concept::and([Concept::Fills(r, vec![a]), Concept::Close(r)]),
    );
    let rr = &n.roles[&r];
    assert!(rr.closed);
    assert_eq!(rr.at_most, Some(1));
    assert!(!n.is_incoherent());
}

#[test]
fn close_composes_contextually_via_conjoin_expression() {
    // The §3.2 update pattern: FILLS first, CLOSE later, against the same
    // evolving description.
    let mut f = fix();
    let r = f.r;
    let a = ind(&mut f, "A");
    let mut derived = NormalForm::top();
    conjoin_expression(&Concept::Fills(r, vec![a]), &mut f.schema, &mut derived).unwrap();
    conjoin_expression(&Concept::Close(r), &mut f.schema, &mut derived).unwrap();
    assert!(derived.roles[&r].closed);
    assert_eq!(derived.roles[&r].at_most, Some(1));
    // A later extra filler clashes.
    let b = ind(&mut f, "B");
    conjoin_expression(&Concept::Fills(r, vec![b]), &mut f.schema, &mut derived).unwrap();
    assert!(derived.is_incoherent());
}

#[test]
fn too_many_fillers_for_at_most_clash() {
    let mut f = fix();
    let r = f.r;
    let a = ind(&mut f, "A");
    let b = ind(&mut f, "B");
    let n = nf(
        &mut f,
        &Concept::and([Concept::Fills(r, vec![a, b]), Concept::AtMost(1, r)]),
    );
    assert!(n.is_incoherent());
}

// ---- SAME-AS ------------------------------------------------------------------

#[test]
fn same_as_requires_chains_to_exist_and_be_single_valued() {
    let mut f = fix();
    let site = f.schema.define_attribute("site").unwrap();
    let perp = f.schema.define_role("perp").unwrap();
    let dom = f.schema.define_attribute("dom").unwrap();
    let n = nf(&mut f, &Concept::SameAs(vec![site], vec![perp, dom]));
    // Every chain role gets at-least 1 / at-most 1.
    assert_eq!(n.roles[&site].at_least, 1);
    assert_eq!(n.roles[&site].at_most, Some(1));
    assert_eq!(n.roles[&perp].at_least, 1);
    assert_eq!(n.roles[&perp].at_most, Some(1));
    // The nested step too.
    let inner = n.roles[&perp].all.as_deref().unwrap();
    assert_eq!(inner.roles[&dom].at_least, 1);
}

#[test]
fn same_as_value_restrictions_propagate_across_equated_paths() {
    // (AND (SAME-AS (a) (b)) (ALL a CAR)) entails (ALL b CAR).
    let mut f = fix();
    let a = f.schema.define_attribute("a").unwrap();
    let b = f.schema.define_attribute("b").unwrap();
    let car = Concept::Name(f.schema.symbols.find_concept("CAR").unwrap());
    let n = nf(
        &mut f,
        &Concept::and([
            Concept::SameAs(vec![a], vec![b]),
            Concept::all(a, car.clone()),
        ]),
    );
    let car_nf = nf(&mut f, &car);
    let vr_b = n.roles[&b].all.as_deref().expect("propagated");
    assert!(crate::subsume::subsumes(&car_nf, vr_b));
}

#[test]
fn same_as_trivial_pair_vanishes() {
    let mut f = fix();
    let a = f.schema.define_attribute("a").unwrap();
    let n = nf(&mut f, &Concept::SameAs(vec![a], vec![a]));
    assert!(n.same_as.is_empty());
    // But the chain-existence constraint is NOT implied by a trivial
    // pair: p ~ p says nothing.
    assert!(n.roles.is_empty() || n.roles[&a].at_least == 0);
}

#[test]
fn empty_same_as_path_is_an_error() {
    let mut f = fix();
    let a = f.schema.define_attribute("a").unwrap();
    let res = normalize(&Concept::SameAs(vec![], vec![a]), &mut f.schema);
    assert!(matches!(res, Err(ClassicError::EmptySameAsPath)));
}

#[test]
fn contradictory_same_as_constraints_clash() {
    // a ~ b, (ALL a (ONE-OF X)), (ALL b (ONE-OF Y)) — the equated object
    // must be both X and Y.
    let mut f = fix();
    let a = f.schema.define_attribute("a").unwrap();
    let b = f.schema.define_attribute("b").unwrap();
    let x = ind(&mut f, "X");
    let y = ind(&mut f, "Y");
    let n = nf(
        &mut f,
        &Concept::and([
            Concept::SameAs(vec![a], vec![b]),
            Concept::all(a, Concept::one_of([x])),
            Concept::all(b, Concept::one_of([y])),
        ]),
    );
    assert!(n.is_incoherent());
}

// ---- errors ----------------------------------------------------------------------

#[test]
fn undeclared_role_is_an_error_not_a_clash() {
    let mut f = fix();
    let ghost = f.schema.symbols.role("ghost");
    let res = normalize(&Concept::AtLeast(1, ghost), &mut f.schema);
    assert!(matches!(res, Err(ClassicError::UndefinedRole(_))));
}

#[test]
fn undefined_test_is_an_error() {
    let mut f = fix();
    let ghost = crate::symbol::TestId::from_index(42);
    let res = normalize(&Concept::Test(ghost), &mut f.schema);
    assert!(matches!(res, Err(ClassicError::UndefinedTest(_))));
}

#[test]
fn primitive_reparenting_is_an_error() {
    let mut f = fix();
    let car = Concept::Name(f.schema.symbols.find_concept("CAR").unwrap());
    normalize(&Concept::primitive(Concept::thing(), "boat"), &mut f.schema).unwrap();
    let res = normalize(&Concept::primitive(car, "boat"), &mut f.schema);
    assert!(matches!(res, Err(ClassicError::PrimitiveReparented(_))));
}

// ---- misc canonicality --------------------------------------------------------------

#[test]
fn all_thing_is_no_restriction() {
    let mut f = fix();
    let r = f.r;
    let n = nf(&mut f, &Concept::all(r, Concept::thing()));
    assert!(n.is_top());
}

#[test]
fn nested_all_restrictions_canonicalize_depth_first() {
    let mut f = fix();
    let (r, s) = (f.r, f.s);
    // (ALL r (AND (ALL s A) (ALL s B))) ≡ (ALL r (ALL s (AND A B)))
    let a = Concept::primitive(Concept::thing(), "pa");
    let b = Concept::primitive(Concept::thing(), "pb");
    let lhs = Concept::all(
        r,
        Concept::and([Concept::all(s, a.clone()), Concept::all(s, b.clone())]),
    );
    let rhs = Concept::all(r, Concept::all(s, Concept::and([a, b])));
    assert_eq!(nf(&mut f, &lhs), nf(&mut f, &rhs));
}

#[test]
fn size_reflects_structure() {
    let mut f = fix();
    let r = f.r;
    let top = nf(&mut f, &Concept::thing());
    let one = nf(&mut f, &Concept::AtLeast(1, r));
    assert!(one.size() > top.size());
}

#[test]
fn incoherent_forms_are_all_equal() {
    let mut f = fix();
    let (r, s) = (f.r, f.s);
    let b1 = nf(
        &mut f,
        &Concept::and([Concept::AtLeast(2, r), Concept::AtMost(1, r)]),
    );
    let b2 = nf(
        &mut f,
        &Concept::and([Concept::AtLeast(9, s), Concept::AtMost(0, s)]),
    );
    assert!(b1.is_incoherent() && b2.is_incoherent());
    assert_eq!(b1, b2);
    assert_ne!(b1.clash(), None);
}

#[test]
fn value_restriction_accessors() {
    let mut f = fix();
    let (r, s) = (f.r, f.s);
    let car = Concept::Name(f.schema.symbols.find_concept("CAR").unwrap());
    let n = nf(&mut f, &Concept::all(r, Concept::all(s, car)));
    assert!(n.at_path(&[r, s]).is_some());
    assert!(n.at_path(&[s]).is_none());
    assert!(!n.value_restriction(r).is_top());
    assert!(n.value_restriction(s).is_top());
}

// ---- recursive definitions (forbidden, §2.2) ------------------------------

#[test]
fn same_as_self_extension_is_a_recursive_definition() {
    // (SAME-AS (r) (r r)) equates a chain with its own extension: the
    // filler structure would regress forever. Previously this hung the
    // normalizer's fixpoint (release builds looped; debug builds tripped
    // the convergence debug_assert).
    let mut f = fix();
    let r = f.r;
    let c = Concept::SameAs(vec![r], vec![r, r]);
    let err = normalize(&c, &mut f.schema).unwrap_err();
    assert!(
        matches!(err, ClassicError::RecursiveDefinition(_)),
        "unexpected: {err}"
    );
    assert!(err.to_string().contains("(r)"), "{err}");
}

#[test]
fn same_as_cycle_through_congruence_is_detected() {
    // (r s) ~ (s) and (r) ~ (s s): congruence derives (s) ~ (s s ...) —
    // no stored pair is prefix-related, the cycle only appears after
    // right-extension.
    let mut f = fix();
    let (r, s) = (f.r, f.s);
    let c = Concept::and([
        Concept::SameAs(vec![r, s], vec![s]),
        Concept::SameAs(vec![r], vec![s, s]),
    ]);
    let err = normalize(&c, &mut f.schema).unwrap_err();
    assert!(
        matches!(err, ClassicError::RecursiveDefinition(_)),
        "unexpected: {err}"
    );
}

#[test]
fn nested_same_as_cycle_is_positioned_not_swallowed() {
    // The cycle sits under (ALL s ...); without the pre-renormalization
    // scan it would be folded into an AT-MOST 0 on s and silently change
    // meaning instead of erroring.
    let mut f = fix();
    let (r, s) = (f.r, f.s);
    let c = Concept::all(s, Concept::SameAs(vec![r], vec![r, r]));
    let err = normalize(&c, &mut f.schema).unwrap_err();
    assert!(
        matches!(err, ClassicError::RecursiveDefinition(_)),
        "unexpected: {err}"
    );
}

#[test]
fn acyclic_same_as_still_normalizes() {
    let mut f = fix();
    let (r, s) = (f.r, f.s);
    let n = nf(&mut f, &Concept::SameAs(vec![r], vec![s]));
    assert!(!n.is_incoherent());
    assert!(n.same_as.implies(&vec![r], &vec![s]));
}

#[test]
fn conjoining_descriptions_into_a_cycle_yields_recursive_clash() {
    // Each description is fine alone; their conjunction equates (r) with
    // (s) and (r) with (s r), so (s) ~ (s r) — recursive. The KB layer
    // sees ⊥ with a RecursiveCoreference clash and rejects the update
    // like any other inconsistency.
    let mut f = fix();
    let (r, s) = (f.r, f.s);
    let mut a = nf(&mut f, &Concept::SameAs(vec![r], vec![s]));
    let b = nf(&mut f, &Concept::SameAs(vec![r], vec![s, r]));
    a.conjoin(&b, &f.schema);
    assert!(a.is_incoherent());
    assert!(
        matches!(a.clash(), Some(Clash::RecursiveCoreference { .. })),
        "clash: {:?}",
        a.clash()
    );
}

#[test]
fn self_referential_concept_definition_is_positioned() {
    let mut f = fix();
    let loops = Concept::all(f.r, Concept::Name(f.schema.symbols.concept("LOOP")));
    let err = f.schema.define_concept("LOOP", loops).unwrap_err();
    match err {
        ClassicError::RecursiveDefinition(pos) => {
            assert!(pos.contains("LOOP"), "position: {pos}");
        }
        other => panic!("expected RecursiveDefinition, got {other}"),
    }
    // The failed definition left no binding behind.
    let id = f.schema.symbols.concept("LOOP");
    assert!(!f.schema.is_defined(id));
    // ...and the name can be defined properly afterwards.
    f.schema
        .define_concept("LOOP", Concept::AtLeast(1, f.r))
        .unwrap();
}
