//! Property-based tests for the core reasoning invariants.
//!
//! Random concept expressions (including incoherent ones) are generated
//! over a fixed vocabulary; the algebraic laws of normalization and
//! subsumption must hold for all of them:
//!
//! * subsumption is a preorder with ⊤/⊥ as extrema;
//! * `AND` is a greatest-lower-bound-like operation (below both
//!   conjuncts, commutative, associative, idempotent);
//! * normalization is canonical and stable under rendering;
//! * mutual subsumption coincides with structural equality of normal
//!   forms on this language.

use classic_core::desc::{Concept, IndRef};
use classic_core::normal::{normalize, NormalForm};
use classic_core::schema::Schema;
use classic_core::subsume::{disjoint, equivalent, subsumes};
use classic_core::symbol::RoleId;
use classic_core::{HostValue, Layer};
use proptest::prelude::*;

const N_ROLES: usize = 4;
const N_PRIMS: usize = 4;
const N_INDS: usize = 6;

/// Build the fixed vocabulary every generated concept draws from.
fn vocabulary() -> Schema {
    let mut schema = Schema::new();
    for i in 0..N_ROLES {
        schema.define_role(&format!("r{i}")).unwrap();
    }
    for i in 0..N_PRIMS {
        schema
            .define_concept(
                &format!("P{i}"),
                Concept::primitive(Concept::thing(), &format!("p{i}")),
            )
            .unwrap();
    }
    // Two disjoint primitives to exercise clash detection.
    schema
        .define_concept(
            "DLEFT",
            Concept::disjoint_primitive(Concept::thing(), "side", "left"),
        )
        .unwrap();
    schema
        .define_concept(
            "DRIGHT",
            Concept::disjoint_primitive(Concept::thing(), "side", "right"),
        )
        .unwrap();
    for i in 0..N_INDS {
        schema.symbols.individual(&format!("I{i}"));
    }
    schema
}

fn role(i: usize) -> RoleId {
    RoleId::from_index(i % N_ROLES)
}

fn ind_ref(i: usize, schema: &Schema) -> IndRef {
    match i % 8 {
        6 => IndRef::Host(HostValue::Int((i % 3) as i64)),
        7 => IndRef::Host(HostValue::Sym(format!("s{}", i % 2))),
        k => IndRef::Classic(
            schema
                .symbols
                .find_individual(&format!("I{}", k % N_INDS))
                .unwrap(),
        ),
    }
}

/// Strategy for arbitrary (possibly incoherent) concept expressions.
fn concept_strategy() -> impl Strategy<Value = Concept> {
    let leaf = prop_oneof![
        Just(Concept::thing()),
        Just(Concept::Builtin(Layer::Classic)),
        Just(Concept::Builtin(Layer::Host(None))),
        (0usize..N_PRIMS).prop_map(|i| {
            // Resolve names lazily inside apply(); store as marker here.
            Concept::primitive(Concept::thing(), &format!("p{i}"))
        }),
        Just(Concept::disjoint_primitive(
            Concept::thing(),
            "side",
            "left"
        )),
        Just(Concept::disjoint_primitive(
            Concept::thing(),
            "side",
            "right"
        )),
        (0usize..N_ROLES, 0u32..4).prop_map(|(r, n)| Concept::AtLeast(n, role(r))),
        (0usize..N_ROLES, 0u32..4).prop_map(|(r, n)| Concept::AtMost(n, role(r))),
        (0usize..N_ROLES).prop_map(|r| Concept::Close(role(r))),
        proptest::collection::vec(0usize..16, 1..4)
            .prop_map(|ixs| Concept::OneOf(ixs.into_iter().map(OneOfMarker).map(marker).collect())),
        (0usize..N_ROLES, proptest::collection::vec(0usize..16, 1..3)).prop_map(|(r, ixs)| {
            Concept::Fills(
                role(r),
                ixs.into_iter().map(OneOfMarker).map(marker).collect(),
            )
        }),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (0usize..N_ROLES, inner.clone()).prop_map(|(r, c)| Concept::all(role(r), c)),
            proptest::collection::vec(inner, 1..4).prop_map(Concept::And),
        ]
    })
}

/// Individuals in strategies are generated as index markers and resolved
/// against the schema at test time (strategies cannot capture the schema).
struct OneOfMarker(usize);

fn marker(m: OneOfMarker) -> IndRef {
    // Placeholder: resolved by `resolve` below. Encode the index in a
    // fresh classic name id; this is safe because the test re-resolves
    // every IndRef before use.
    IndRef::Classic(classic_core::IndName::from_index(m.0))
}

/// Re-resolve placeholder individual references against the schema.
fn resolve(c: &Concept, schema: &Schema) -> Concept {
    match c {
        Concept::OneOf(inds) => {
            Concept::OneOf(inds.iter().map(|i| resolve_ind(i, schema)).collect())
        }
        Concept::Fills(r, inds) => {
            Concept::Fills(*r, inds.iter().map(|i| resolve_ind(i, schema)).collect())
        }
        Concept::All(r, inner) => Concept::all(*r, resolve(inner, schema)),
        Concept::And(parts) => Concept::And(parts.iter().map(|p| resolve(p, schema)).collect()),
        Concept::Primitive { parent, index } => Concept::Primitive {
            parent: Box::new(resolve(parent, schema)),
            index: index.clone(),
        },
        Concept::DisjointPrimitive {
            parent,
            grouping,
            index,
        } => Concept::DisjointPrimitive {
            parent: Box::new(resolve(parent, schema)),
            grouping: grouping.clone(),
            index: index.clone(),
        },
        other => other.clone(),
    }
}

fn resolve_ind(i: &IndRef, schema: &Schema) -> IndRef {
    match i {
        IndRef::Classic(n) => ind_ref(n.index(), schema),
        host => host.clone(),
    }
}

/// Replace `CLOSE` with `THING` throughout.
///
/// `CLOSE` is the paper's §3.2 *update operator*, reified as a descriptor
/// for uniformity: its meaning is contextual (it closes the role over the
/// sibling `FILLS` in the same expression), so compositionality laws that
/// compare separately-normalized conjuncts against the jointly-normalized
/// conjunction only hold on the closure-free fragment. The contextual
/// behavior itself is pinned by unit tests in `normal_tests.rs`.
fn strip_close(c: &Concept) -> Concept {
    match c {
        Concept::Close(_) => Concept::thing(),
        Concept::All(r, inner) => Concept::all(*r, strip_close(inner)),
        Concept::And(parts) => Concept::And(parts.iter().map(strip_close).collect()),
        Concept::Primitive { parent, index } => Concept::Primitive {
            parent: Box::new(strip_close(parent)),
            index: index.clone(),
        },
        Concept::DisjointPrimitive {
            parent,
            grouping,
            index,
        } => Concept::DisjointPrimitive {
            parent: Box::new(strip_close(parent)),
            grouping: grouping.clone(),
            index: index.clone(),
        },
        other => other.clone(),
    }
}

fn norm(c: &Concept, schema: &mut Schema) -> NormalForm {
    let resolved = resolve(c, schema);
    normalize(&resolved, schema).expect("vocabulary is fully declared")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn normalization_never_panics_and_is_stable(c in concept_strategy()) {
        let mut schema = vocabulary();
        let n1 = norm(&c, &mut schema);
        // Rendering and re-normalizing is the identity on normal forms.
        let rendered = n1.to_concept(&schema);
        let n2 = normalize(&rendered, &mut schema).expect("rendered form is well-formed");
        prop_assert_eq!(n1, n2);
    }

    #[test]
    fn subsumption_is_reflexive(c in concept_strategy()) {
        let mut schema = vocabulary();
        let n = norm(&c, &mut schema);
        prop_assert!(subsumes(&n, &n));
    }

    #[test]
    fn top_and_bottom_are_extrema(c in concept_strategy()) {
        let mut schema = vocabulary();
        let n = norm(&c, &mut schema);
        let top = NormalForm::top();
        let bot = NormalForm::bottom(classic_core::Clash::Incoherent);
        prop_assert!(subsumes(&top, &n));
        prop_assert!(subsumes(&n, &bot));
    }

    #[test]
    fn and_is_below_both_conjuncts(a in concept_strategy(), b in concept_strategy()) {
        // Closure-free fragment: see `strip_close`.
        let mut schema = vocabulary();
        let ra = strip_close(&resolve(&a, &schema));
        let rb = strip_close(&resolve(&b, &schema));
        let na = normalize(&ra, &mut schema).unwrap();
        let nb = normalize(&rb, &mut schema).unwrap();
        let nab = normalize(&Concept::And(vec![ra, rb]), &mut schema).unwrap();
        prop_assert!(subsumes(&na, &nab));
        prop_assert!(subsumes(&nb, &nab));
    }

    #[test]
    fn and_is_commutative_and_idempotent(a in concept_strategy(), b in concept_strategy()) {
        let mut schema = vocabulary();
        let ra = resolve(&a, &schema);
        let rb = resolve(&b, &schema);
        let ab = normalize(&Concept::And(vec![ra.clone(), rb.clone()]), &mut schema).unwrap();
        let ba = normalize(&Concept::And(vec![rb, ra.clone()]), &mut schema).unwrap();
        prop_assert_eq!(&ab, &ba);
        let aa = normalize(&Concept::And(vec![ra.clone(), ra.clone()]), &mut schema).unwrap();
        let just_a = normalize(&ra, &mut schema).unwrap();
        prop_assert_eq!(aa, just_a);
    }

    #[test]
    fn and_is_associative(
        a in concept_strategy(),
        b in concept_strategy(),
        c in concept_strategy(),
    ) {
        let mut schema = vocabulary();
        let (ra, rb, rc) = (resolve(&a, &schema), resolve(&b, &schema), resolve(&c, &schema));
        let left = normalize(
            &Concept::And(vec![Concept::And(vec![ra.clone(), rb.clone()]), rc.clone()]),
            &mut schema,
        ).unwrap();
        let right = normalize(
            &Concept::And(vec![ra, Concept::And(vec![rb, rc])]),
            &mut schema,
        ).unwrap();
        prop_assert_eq!(left, right);
    }

    #[test]
    fn subsumption_is_transitive_on_refinement_chains(
        a in concept_strategy(),
        b in concept_strategy(),
        c in concept_strategy(),
    ) {
        // a ⊒ a∧b ⊒ a∧b∧c must hold end to end (closure-free fragment:
        // see `strip_close`).
        let mut schema = vocabulary();
        let (ra, rb, rc) = (
            strip_close(&resolve(&a, &schema)),
            strip_close(&resolve(&b, &schema)),
            strip_close(&resolve(&c, &schema)),
        );
        let na = normalize(&ra, &mut schema).unwrap();
        let nab = normalize(&Concept::And(vec![ra.clone(), rb.clone()]), &mut schema).unwrap();
        let nabc = normalize(&Concept::And(vec![ra, rb, rc]), &mut schema).unwrap();
        prop_assert!(subsumes(&na, &nab));
        prop_assert!(subsumes(&nab, &nabc));
        prop_assert!(subsumes(&na, &nabc), "transitivity broken");
    }

    #[test]
    fn mutual_subsumption_matches_structural_equality(
        a in concept_strategy(),
        b in concept_strategy(),
    ) {
        let mut schema = vocabulary();
        let na = norm(&a, &mut schema);
        let nb = norm(&b, &mut schema);
        let mutual = subsumes(&na, &nb) && subsumes(&nb, &na);
        prop_assert_eq!(mutual, na == nb);
        prop_assert_eq!(equivalent(&na, &nb), mutual);
    }

    #[test]
    fn all_distributes_over_and(a in concept_strategy(), b in concept_strategy()) {
        // (ALL r (AND a b)) ≡ (AND (ALL r a) (ALL r b)) — paper §2.2.
        let mut schema = vocabulary();
        let r = role(0);
        let ra = resolve(&a, &schema);
        let rb = resolve(&b, &schema);
        let joined = normalize(
            &Concept::all(r, Concept::And(vec![ra.clone(), rb.clone()])),
            &mut schema,
        ).unwrap();
        let split = normalize(
            &Concept::And(vec![Concept::all(r, ra), Concept::all(r, rb)]),
            &mut schema,
        ).unwrap();
        prop_assert_eq!(joined, split);
    }

    #[test]
    fn disjointness_is_symmetric_and_consistent(
        a in concept_strategy(),
        b in concept_strategy(),
    ) {
        let mut schema = vocabulary();
        let na = norm(&a, &mut schema);
        let nb = norm(&b, &mut schema);
        let d1 = disjoint(&na, &nb, &schema);
        let d2 = disjoint(&nb, &na, &schema);
        prop_assert_eq!(d1, d2);
        // Coherent concepts subsumed by each other cannot be disjoint.
        if !na.is_incoherent() && equivalent(&na, &nb) {
            prop_assert!(!d1);
        }
    }

    #[test]
    fn conjoining_preserves_incoherence(a in concept_strategy(), b in concept_strategy()) {
        let mut schema = vocabulary();
        let na = norm(&a, &mut schema);
        let nb = norm(&b, &mut schema);
        let mut meet = na.clone();
        meet.conjoin(&nb, &schema);
        if na.is_incoherent() || nb.is_incoherent() {
            prop_assert!(meet.is_incoherent());
        }
        // And the meet is below both (when all are compared as sets).
        prop_assert!(subsumes(&na, &meet));
        prop_assert!(subsumes(&nb, &meet));
    }

    #[test]
    fn size_is_positive_and_bounded(c in concept_strategy()) {
        let mut schema = vocabulary();
        let resolved = resolve(&c, &schema);
        let n = normalize(&resolved, &mut schema).unwrap();
        prop_assert!(n.size() >= 1);
        // Normalization may derive facts but its size stays within a
        // constant factor of the input (no blow-up): generous bound.
        prop_assert!(n.size() <= resolved.size() * 8 + 64);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Cross-validation of two decision procedures: structural
    /// subsumption must coincide with the lattice characterization
    /// `a ⊒ b ⟺ a ⊓ b ≡ b` (closure-free fragment — see `strip_close`).
    /// The two paths share almost no code (one walks the subsumer's
    /// structure, the other conjoins and compares canonical forms), so
    /// agreement here is strong evidence both are right.
    #[test]
    fn subsumption_agrees_with_meet_characterization(
        a in concept_strategy(),
        b in concept_strategy(),
    ) {
        let mut schema = vocabulary();
        let ra = strip_close(&resolve(&a, &schema));
        let rb = strip_close(&resolve(&b, &schema));
        let na = normalize(&ra, &mut schema).unwrap();
        let nb = normalize(&rb, &mut schema).unwrap();
        let via_subsume = subsumes(&na, &nb);
        let meet = normalize(
            &Concept::And(vec![ra, rb]),
            &mut schema,
        ).unwrap();
        let via_meet = meet == nb;
        prop_assert_eq!(
            via_subsume, via_meet,
            "subsumes={} but (a⊓b==b)={}",
            via_subsume, via_meet
        );
    }
}
