//! Loom model test for the shared subsumption kernel.
//!
//! `classic-query` fans instance tests out across scoped threads that
//! share one `&Taxonomy`; every subsumption test they run goes through
//! `Taxonomy::classify(&self)`, which locks the hash-consing/memo kernel
//! (`Mutex<Kernel>`) and extends it concurrently. The soundness claim this
//! models: concurrent classification — with the memo being *written* by
//! all threads at once — returns exactly the results sequential
//! classification returns, for every interleaving of lock acquisitions.
//!
//! Runs under the vendored `loom` stress-subset (randomized yield
//! injection, 64 iterations); against real loom the same test explores
//! interleavings exhaustively.

use classic_core::desc::Concept;
use classic_core::normal::normalize;
use classic_core::schema::Schema;
use classic_core::taxonomy::{NodeId, Taxonomy};
use loom::sync::Arc;
use loom::thread;

/// The schedule-independent part of a classification result (`tests`
/// varies with memo warmth, which depends on the interleaving).
fn shape(c: &classic_core::taxonomy::Classification) -> (Option<NodeId>, Vec<NodeId>, Vec<NodeId>) {
    (c.equivalent, c.parents.clone(), c.children.clone())
}

#[test]
fn concurrent_classification_matches_sequential() {
    // Build the taxonomy once: a small §3-style hierarchy plus a set of
    // ad-hoc query forms that classify at interior positions.
    let mut schema = Schema::new();
    let r = schema.define_role("r").unwrap();
    let s = schema.define_role("s").unwrap();
    let defs: Vec<(&str, Concept)> = vec![
        ("A", Concept::primitive(Concept::thing(), "a")),
        ("B", Concept::primitive(Concept::thing(), "b")),
        ("A1", Concept::AtLeast(1, r)),
        ("A2", Concept::AtLeast(2, r)),
        (
            "A3",
            Concept::and([Concept::AtLeast(2, r), Concept::AtMost(5, s)]),
        ),
    ];
    let mut tax = Taxonomy::new();
    for (name, c) in &defs {
        let nf = normalize(c, &mut schema).expect("definition normalizes");
        let id = schema.symbols.concept(name);
        tax.insert(id, nf);
    }
    let queries: Vec<_> = [
        Concept::AtLeast(3, r),
        Concept::and([Concept::AtLeast(1, r), Concept::AtMost(5, s)]),
        Concept::AtLeast(2, r),
        Concept::and([Concept::AtLeast(4, r), Concept::AtMost(2, s)]),
        Concept::AtMost(0, r),
    ]
    .iter()
    .map(|c| normalize(c, &mut schema).expect("query normalizes"))
    .collect();
    let expected: Vec<_> = queries.iter().map(|nf| shape(&tax.classify(nf))).collect();

    let tax = Arc::new(tax);
    let queries = Arc::new(queries);
    let expected = Arc::new(expected);
    loom::model(move || {
        let handles: Vec<_> = (0..3)
            .map(|t| {
                let tax = Arc::clone(&tax);
                let queries = Arc::clone(&queries);
                let expected = Arc::clone(&expected);
                thread::spawn(move || {
                    // Each thread walks the queries from a different start,
                    // so lock acquisitions interleave on different forms.
                    for k in 0..queries.len() {
                        let i = (k + t) % queries.len();
                        let got = shape(&tax.classify(&queries[i]));
                        assert_eq!(got, expected[i], "query {i} diverged on thread {t}");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });
}
