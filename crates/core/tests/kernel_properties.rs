//! Property-based cross-validation of the subsumption kernel and the
//! bitset taxonomy closure against the plain (unmemoized, edge-walking)
//! procedures.
//!
//! The kernel memoizes `subsumes` on interned normal-form ids and the
//! taxonomy answers reachability from transitive-closure bitsets; both
//! are pure accelerations, so on every generated input they must agree
//! exactly with the originals:
//!
//! * `Kernel::subsumes_nf` ≡ `subsumes` — on first query (cold memo) and
//!   on every repeat (warm memo, answered from the cache);
//! * `classify` (kernel + bitsets) ≡ `classify_unmemoized` (plain
//!   subsumption + edge walks) ≡ `classify_brute` (exhaustive scan) on
//!   randomly grown schemas, for parents, children, and equivalence.

use classic_core::desc::Concept;
use classic_core::normal::{normalize, NormalForm};
use classic_core::schema::Schema;
use classic_core::subsume::subsumes;
use classic_core::symbol::RoleId;
use classic_core::taxonomy::Taxonomy;
use classic_core::Kernel;
use proptest::prelude::*;

const N_ROLES: usize = 3;
const N_PRIMS: usize = 3;

/// The fixed vocabulary every generated concept draws from.
fn vocabulary() -> Schema {
    let mut schema = Schema::new();
    for i in 0..N_ROLES {
        schema.define_role(&format!("r{i}")).unwrap();
    }
    for i in 0..N_PRIMS {
        schema
            .define_concept(
                &format!("P{i}"),
                Concept::primitive(Concept::thing(), &format!("p{i}")),
            )
            .unwrap();
    }
    schema
}

fn role(i: usize) -> RoleId {
    RoleId::from_index(i % N_ROLES)
}

/// One conjunct: a primitive, a number restriction, or a value
/// restriction on a primitive. Conjunctions of these produce a rich
/// subsumption lattice (including incoherent corners via
/// `AT-LEAST n > AT-MOST m`).
fn conjunct_strategy() -> impl Strategy<Value = Concept> {
    prop_oneof![
        (0usize..N_PRIMS).prop_map(|i| Concept::primitive(Concept::thing(), &format!("p{i}"))),
        (0usize..N_ROLES, 0u32..4).prop_map(|(r, n)| Concept::AtLeast(n, role(r))),
        (0usize..N_ROLES, 0u32..4).prop_map(|(r, n)| Concept::AtMost(n, role(r))),
        (0usize..N_ROLES, 0usize..N_PRIMS).prop_map(|(r, p)| Concept::all(
            role(r),
            Concept::primitive(Concept::thing(), &format!("p{p}"))
        )),
    ]
}

/// A small conjunction over the fixed vocabulary.
fn concept_strategy() -> impl Strategy<Value = Concept> {
    proptest::collection::vec(conjunct_strategy(), 1..4).prop_map(Concept::And)
}

fn norm(c: &Concept, schema: &mut Schema) -> NormalForm {
    normalize(c, schema).expect("vocabulary is fully declared")
}

/// Grow a taxonomy from a list of generated definitions. Incoherent
/// definitions are skipped (`Schema::define_concept` rejects ⊥), mirroring
/// what a knowledge base does.
fn grow(defs: &[Concept]) -> (Schema, Taxonomy) {
    let mut schema = vocabulary();
    let mut taxo = Taxonomy::new();
    for (i, c) in defs.iter().enumerate() {
        if let Ok(id) = schema.define_concept(&format!("C{i}"), c.clone()) {
            let nf = schema.concept_nf(id).unwrap().clone();
            taxo.insert(id, nf);
        }
    }
    (schema, taxo)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The kernel is a transparent cache over `subsumes`: cold and warm
    /// answers both equal the oracle, in both argument orders.
    #[test]
    fn kernel_agrees_with_plain_subsumes(
        a in concept_strategy(),
        b in concept_strategy(),
    ) {
        let mut schema = vocabulary();
        let na = norm(&a, &mut schema);
        let nb = norm(&b, &mut schema);
        let mut kernel = Kernel::new();
        let oracle_ab = subsumes(&na, &nb);
        let oracle_ba = subsumes(&nb, &na);
        // Cold memo.
        prop_assert_eq!(kernel.subsumes_nf(&na, &nb), oracle_ab);
        prop_assert_eq!(kernel.subsumes_nf(&nb, &na), oracle_ba);
        // Warm memo: answered from the cache, still the oracle's answer.
        prop_assert_eq!(kernel.subsumes_nf(&na, &nb), oracle_ab);
        prop_assert_eq!(kernel.subsumes_nf(&nb, &na), oracle_ba);
        let s = kernel.stats();
        prop_assert!(s.memo_hits >= 2, "repeat queries must hit the memo");
    }

    /// Interning is hash-consing: equal forms share an id, and the id
    /// resolves back to an equal form.
    #[test]
    fn interning_is_injective_on_meaning(c in concept_strategy()) {
        let mut schema = vocabulary();
        let nf = norm(&c, &mut schema);
        let mut kernel = Kernel::new();
        let id1 = kernel.intern(&nf);
        let id2 = kernel.intern(&nf.clone());
        prop_assert_eq!(id1, id2);
        prop_assert_eq!(kernel.nf(id1), &nf);
    }

    /// All three classification paths agree on randomly grown schemas:
    /// the kernel+bitset path, the plain-walk path, and the exhaustive
    /// brute-force scan.
    #[test]
    fn classification_paths_agree_on_random_schemas(
        defs in proptest::collection::vec(concept_strategy(), 2..10),
        queries in proptest::collection::vec(concept_strategy(), 1..5),
    ) {
        let (mut schema, taxo) = grow(&defs);
        for q in &queries {
            let nf = norm(q, &mut schema);
            let fast = taxo.classify(&nf);
            let walk = taxo.classify_unmemoized(&nf);
            let brute = taxo.classify_brute(&nf);
            prop_assert_eq!(&fast.parents, &brute.parents);
            prop_assert_eq!(&fast.children, &brute.children);
            prop_assert_eq!(fast.equivalent, brute.equivalent);
            prop_assert_eq!(&walk.parents, &brute.parents);
            prop_assert_eq!(&walk.children, &brute.children);
            prop_assert_eq!(walk.equivalent, brute.equivalent);
        }
    }

    /// The bitset closure answers reachability exactly like an edge walk,
    /// node by node, on randomly grown schemas.
    #[test]
    fn bitset_reachability_matches_edge_structure(
        defs in proptest::collection::vec(concept_strategy(), 2..12),
    ) {
        use classic_core::taxonomy::NodeId;
        let (_schema, taxo) = grow(&defs);
        let all: Vec<NodeId> = taxo
            .interior_nodes()
            .chain([NodeId::TOP, NodeId::BOTTOM])
            .collect();
        for &a in &all {
            let desc = taxo.strict_descendants(a);
            let anc = taxo.strict_ancestors(a);
            prop_assert!(!desc.contains(&a), "strict sets exclude the node");
            prop_assert!(!anc.contains(&a), "strict sets exclude the node");
            for &d in &desc {
                prop_assert!(taxo.is_strict_ancestor(a, d));
                prop_assert!(
                    taxo.strict_ancestors(d).contains(&a),
                    "ancestor/descendant rows must be transposes"
                );
            }
        }
    }

    /// Classifying the same query twice through the kernel path costs the
    /// same number of tests and yields the same placement — and the
    /// second pass is answered from the memo.
    #[test]
    fn repeat_classification_is_memoized(
        defs in proptest::collection::vec(concept_strategy(), 2..8),
        q in concept_strategy(),
    ) {
        let (mut schema, taxo) = grow(&defs);
        let nf = norm(&q, &mut schema);
        let first = taxo.classify(&nf);
        let before = taxo.kernel_stats();
        let second = taxo.classify(&nf);
        let after = taxo.kernel_stats();
        prop_assert_eq!(first.parents, second.parents);
        prop_assert_eq!(first.children, second.children);
        prop_assert_eq!(first.equivalent, second.equivalent);
        prop_assert_eq!(
            after.memo_misses, before.memo_misses,
            "a repeat classification must not miss the memo"
        );
    }
}
