//! Property-based oracle tests for classification: on randomly generated
//! schemas, the pruned two-phase traversal must agree exactly with the
//! brute-force all-pairs classification, and the maintained Hasse diagram
//! must be exactly the transitive reduction of the subsumption preorder.

use classic_core::desc::Concept;
use classic_core::normal::normalize;
use classic_core::schema::Schema;
use classic_core::subsume::subsumes;
use classic_core::symbol::RoleId;
use classic_core::taxonomy::{NodeId, Taxonomy};
use proptest::prelude::*;

const N_ROLES: usize = 3;

/// A definition recipe: conjunction of earlier concepts + restrictions.
#[derive(Debug, Clone)]
struct DefRecipe {
    /// Indices (mod number-defined-so-far) of parent concepts to conjoin.
    parents: Vec<usize>,
    /// (role, at_least in 0..3) restrictions.
    at_least: Vec<(usize, u32)>,
    /// (role, at_most in 3..6) restrictions.
    at_most: Vec<(usize, u32)>,
}

fn recipe_strategy() -> impl Strategy<Value = DefRecipe> {
    (
        proptest::collection::vec(0usize..64, 0..3),
        proptest::collection::vec((0usize..N_ROLES, 0u32..3), 0..3),
        proptest::collection::vec((0usize..N_ROLES, 3u32..6), 0..2),
    )
        .prop_map(|(parents, at_least, at_most)| DefRecipe {
            parents,
            at_least,
            at_most,
        })
}

/// Materialize a schema + taxonomy from recipes; returns all normal forms.
fn build(recipes: &[DefRecipe]) -> (Schema, Taxonomy, Vec<classic_core::normal::NormalForm>) {
    let mut schema = Schema::new();
    for i in 0..N_ROLES {
        schema.define_role(&format!("r{i}")).unwrap();
    }
    // A primitive base so not everything collapses to THING.
    schema
        .define_concept("BASE", Concept::primitive(Concept::thing(), "base"))
        .unwrap();
    let base = Concept::Name(schema.symbols.find_concept("BASE").unwrap());
    let mut taxo = Taxonomy::new();
    let base_nf = schema
        .concept_nf(schema.symbols.find_concept("BASE").unwrap())
        .unwrap()
        .clone();
    let base_name = schema.symbols.find_concept("BASE").unwrap();
    taxo.insert(base_name, base_nf.clone());
    let mut nfs = vec![base_nf];
    let mut names = vec![base_name];
    for (i, r) in recipes.iter().enumerate() {
        let mut parts = vec![base.clone()];
        for &p in &r.parents {
            parts.push(Concept::Name(names[p % names.len()]));
        }
        for &(role, n) in &r.at_least {
            parts.push(Concept::AtLeast(n, RoleId::from_index(role)));
        }
        for &(role, m) in &r.at_most {
            parts.push(Concept::AtMost(m, RoleId::from_index(role)));
        }
        let def = Concept::And(parts);
        let name = schema
            .define_concept(&format!("C{i}"), def)
            .expect("well-formed definition");
        let nf = schema.concept_nf(name).unwrap().clone();
        taxo.insert(name, nf.clone());
        nfs.push(nf);
        names.push(name);
    }
    (schema, taxo, nfs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pruned_classification_agrees_with_brute_force(
        recipes in proptest::collection::vec(recipe_strategy(), 1..14),
        probe in recipe_strategy(),
    ) {
        let (mut schema, taxo, _) = build(&recipes);
        // Classify a fresh probe concept both ways.
        let mut parts = vec![Concept::Name(schema.symbols.find_concept("BASE").unwrap())];
        for &(role, n) in &probe.at_least {
            parts.push(Concept::AtLeast(n, RoleId::from_index(role)));
        }
        for &(role, m) in &probe.at_most {
            parts.push(Concept::AtMost(m, RoleId::from_index(role)));
        }
        let nf = normalize(&Concept::And(parts), &mut schema).unwrap();
        let pruned = taxo.classify(&nf);
        let brute = taxo.classify_brute(&nf);
        prop_assert_eq!(&pruned.parents, &brute.parents);
        prop_assert_eq!(&pruned.children, &brute.children);
        prop_assert_eq!(pruned.equivalent, brute.equivalent);
        prop_assert!(pruned.tests <= brute.tests);
    }

    #[test]
    fn hasse_diagram_edges_are_subsumptions_with_nothing_between(
        recipes in proptest::collection::vec(recipe_strategy(), 1..12),
    ) {
        let (_, taxo, _) = build(&recipes);
        for node in taxo.interior_nodes() {
            let n = taxo.node(node);
            for &p in &n.parents {
                if p == NodeId::TOP {
                    continue;
                }
                // Edge implies subsumption…
                prop_assert!(
                    subsumes(&taxo.node(p).nf, &n.nf),
                    "edge without subsumption"
                );
                // …and immediacy: no third node strictly between.
                for mid in taxo.interior_nodes() {
                    if mid == node || mid == p {
                        continue;
                    }
                    let m = &taxo.node(mid).nf;
                    let strictly_between = subsumes(&taxo.node(p).nf, m)
                        && !subsumes(m, &taxo.node(p).nf)
                        && subsumes(m, &n.nf)
                        && !subsumes(&n.nf, m);
                    prop_assert!(
                        !strictly_between,
                        "edge {:?}→{:?} skips {:?}",
                        p,
                        node,
                        mid
                    );
                }
            }
        }
    }

    #[test]
    fn reachability_equals_subsumption(
        recipes in proptest::collection::vec(recipe_strategy(), 1..12),
    ) {
        // For every pair of taxonomy nodes: a is an ancestor of b iff
        // a's concept subsumes b's (completeness of the stored DAG).
        let (_, taxo, _) = build(&recipes);
        let nodes: Vec<NodeId> = taxo.interior_nodes().collect();
        for &a in &nodes {
            let descendants = taxo.strict_descendants(a);
            for &b in &nodes {
                if a == b {
                    continue;
                }
                let subs = subsumes(&taxo.node(a).nf, &taxo.node(b).nf);
                let reach = descendants.contains(&b);
                // Equivalent concepts share a node, so distinct nodes with
                // mutual subsumption cannot occur.
                prop_assert_eq!(
                    subs, reach,
                    "subsumption/reachability mismatch between {:?} and {:?}",
                    a, b
                );
            }
        }
    }

    #[test]
    fn equivalent_insertions_alias(
        recipes in proptest::collection::vec(recipe_strategy(), 1..10),
        dup in 0usize..10,
    ) {
        // Re-inserting an existing definition under a new name aliases
        // onto the same node.
        let (mut schema, mut taxo, nfs) = build(&recipes);
        let pick = dup % nfs.len();
        let alias = schema.symbols.concept("ALIAS");
        let (node, report) = taxo.insert(alias, nfs[pick].clone());
        prop_assert!(report.equivalent.is_some());
        prop_assert!(taxo.node(node).names.contains(&alias));
        prop_assert!(taxo.node(node).names.len() >= 2);
    }
}
