//! # classic-rel
//!
//! The relational substrate of the CLASSIC reproduction (paper §3.5.2):
//! an ordinary in-memory relational engine, an exporter that materializes
//! a knowledge base's *known* facts as relations ("consider each role as a
//! binary relation, and every primitive concept as a unary relation"),
//! and a conjunctive-query evaluator operating under the closed-world
//! assumption.
//!
//! Its purpose in this repository is to be the baseline CLASSIC is
//! compared against (experiment E7): the same data, the same questions,
//! but with the closed-world semantics the paper deliberately rejects for
//! incrementally-acquired knowledge.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod datalog;
pub mod db;
pub mod query;
pub mod relation;

pub use datalog::{Program, Rule as DatalogRule};
pub use db::{export_kb, Database};
pub use query::{Atom, Binding, ConjunctiveQuery, Term};
pub use relation::{Relation, Tuple, Value};
