//! The relational view of a CLASSIC ABox, and the closed-world export.
//!
//! "The facts asserted about an individual's relationship to other
//! individuals through roles constitute what would be an ordinary
//! database" (paper §3.5.2). [`export_kb`] materializes exactly that
//! database: one unary relation per named schema concept holding its
//! *known* instances, and one binary relation per role holding the
//! *known* fillers. Everything the open world leaves unsaid is — by
//! construction — absent, which is what makes this the closed-world
//! baseline of experiment E7.

use crate::relation::{Relation, Tuple, Value};
use classic_core::desc::IndRef;
use classic_kb::Kb;
use std::collections::BTreeMap;

/// A named collection of relations.
#[derive(Debug, Clone, Default)]
pub struct Database {
    relations: BTreeMap<String, Relation>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Insert (or replace) a relation, keyed by its name.
    pub fn insert_relation(&mut self, r: Relation) {
        self.relations.insert(r.name.clone(), r);
    }

    /// The relation named `name`, if present.
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name)
    }

    /// The relation for `name`, or an empty one of the given arity.
    pub fn relation_or_empty(&self, name: &str, arity: usize) -> Relation {
        self.relations
            .get(name)
            .cloned()
            .unwrap_or_else(|| Relation::new(name, arity))
    }

    /// Every stored relation name, sorted.
    pub fn relation_names(&self) -> impl Iterator<Item = &str> {
        self.relations.keys().map(String::as_str)
    }

    /// Insert one tuple, creating the relation if needed.
    pub fn insert_tuple(&mut self, relation: &str, arity: usize, t: Tuple) {
        self.relations
            .entry(relation.to_owned())
            .or_insert_with(|| Relation::new(relation, arity))
            .insert(t);
    }

    /// Total tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }
}

fn ind_ref_value(kb: &Kb, i: &IndRef) -> Value {
    match i {
        IndRef::Classic(n) => Value::Sym(kb.schema().symbols.individual_name(*n).to_owned()),
        IndRef::Host(v) => match v {
            classic_core::HostValue::Int(i) => Value::Int(*i),
            classic_core::HostValue::Float(x) => Value::Float(*x),
            classic_core::HostValue::Str(s) => Value::Str(s.clone()),
            classic_core::HostValue::Sym(s) => Value::Sym(format!("'{s}")),
        },
    }
}

/// Export a knowledge base to its relational (closed-world) view:
///
/// * `concept:<NAME>` — unary, the known instances of each named concept;
/// * `role:<name>` — binary, the known (subject, filler) pairs;
/// * `ind` — unary, every individual.
pub fn export_kb(kb: &Kb) -> Database {
    let mut db = Database::new();
    let symbols = &kb.schema().symbols;
    // Individuals.
    let mut inds = Relation::new("ind", 1);
    for id in kb.ind_ids() {
        inds.insert(vec![Value::Sym(
            symbols.individual_name(kb.ind(id).name).to_owned(),
        )]);
    }
    db.insert_relation(inds);
    // Concept extensions (known instances — recognition included, so the
    // relational view benefits from CLASSIC's deductions up to the moment
    // of export; it is the *future* and the *unknown* it forecloses).
    for cname in kb.schema().defined_concepts() {
        let rel_name = format!("concept:{}", symbols.concept_name(cname));
        let mut r = Relation::new(&rel_name, 1);
        if let Ok(instances) = kb.instances_of(cname) {
            for id in instances {
                r.insert(vec![Value::Sym(
                    symbols.individual_name(kb.ind(id).name).to_owned(),
                )]);
            }
        }
        db.insert_relation(r);
    }
    // Role fillers.
    let mut role_rels: BTreeMap<String, Relation> = BTreeMap::new();
    for id in kb.ind_ids() {
        let subject = Value::Sym(symbols.individual_name(kb.ind(id).name).to_owned());
        for (&role, rr) in &kb.ind(id).derived.roles {
            if rr.fillers.is_empty() {
                continue;
            }
            let rel_name = format!("role:{}", symbols.role_name(role));
            let rel = role_rels
                .entry(rel_name.clone())
                .or_insert_with(|| Relation::new(&rel_name, 2));
            for f in &rr.fillers {
                rel.insert(vec![subject.clone(), ind_ref_value(kb, f)]);
            }
        }
    }
    for (_, r) in role_rels {
        db.insert_relation(r);
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use classic_core::desc::Concept;

    #[test]
    fn export_materializes_known_facts() {
        let mut kb = Kb::new();
        kb.define_role("drives").unwrap();
        let drives = kb.schema_mut().symbols.find_role("drives").unwrap();
        kb.define_concept("PERSON", Concept::primitive(Concept::thing(), "person"))
            .unwrap();
        let person = kb.schema_mut().symbols.concept("PERSON");
        kb.create_ind("Rocky").unwrap();
        kb.assert_ind("Rocky", &Concept::Name(person)).unwrap();
        let volvo = IndRef::Classic(kb.schema_mut().symbols.individual("Volvo-17"));
        kb.assert_ind("Rocky", &Concept::Fills(drives, vec![volvo]))
            .unwrap();

        let db = export_kb(&kb);
        let people = db.relation("concept:PERSON").unwrap();
        assert!(people.contains(&[Value::Sym("Rocky".into())]));
        assert_eq!(people.len(), 1);
        let drives_rel = db.relation("role:drives").unwrap();
        assert!(drives_rel.contains(&[Value::Sym("Rocky".into()), Value::Sym("Volvo-17".into())]));
        // Volvo-17 exists as an individual (implicitly created).
        assert_eq!(db.relation("ind").unwrap().len(), 2);
    }

    #[test]
    fn export_includes_recognized_memberships() {
        // Recognition-derived memberships are visible relationally.
        let mut kb = Kb::new();
        kb.define_role("enrolled-at").unwrap();
        let enrolled = kb.schema_mut().symbols.find_role("enrolled-at").unwrap();
        kb.define_concept("PERSON", Concept::primitive(Concept::thing(), "person"))
            .unwrap();
        let person = kb.schema_mut().symbols.concept("PERSON");
        kb.define_concept(
            "STUDENT",
            Concept::and([Concept::Name(person), Concept::AtLeast(1, enrolled)]),
        )
        .unwrap();
        kb.create_ind("Rocky").unwrap();
        kb.assert_ind("Rocky", &Concept::Name(person)).unwrap();
        kb.assert_ind("Rocky", &Concept::AtLeast(1, enrolled))
            .unwrap();
        let db = export_kb(&kb);
        assert!(db
            .relation("concept:STUDENT")
            .unwrap()
            .contains(&[Value::Sym("Rocky".into())]));
    }

    #[test]
    fn host_fillers_export_with_native_types() {
        let mut kb = Kb::new();
        kb.define_role("age").unwrap();
        let age = kb.schema_mut().symbols.find_role("age").unwrap();
        kb.create_ind("Rocky").unwrap();
        kb.assert_ind(
            "Rocky",
            &Concept::Fills(age, vec![IndRef::Host(classic_core::HostValue::Int(41))]),
        )
        .unwrap();
        let db = export_kb(&kb);
        assert!(db
            .relation("role:age")
            .unwrap()
            .contains(&[Value::Sym("Rocky".into()), Value::Int(41)]));
    }
}
