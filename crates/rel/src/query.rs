//! Conjunctive queries over the relational view, evaluated closed-world.
//!
//! The comparator for experiment E7: the same questions CLASSIC answers
//! open-world ("known" vs "possible" answer sets) are phrased as
//! conjunctive queries here and answered under the closed-world
//! assumption — "a relationship does not hold unless we know of it"
//! (paper §3.2, describing exactly the assumption CLASSIC does *not*
//! make).

use crate::db::Database;
use crate::relation::{Tuple, Value};
use std::collections::BTreeMap;

/// A term in a query atom.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Term {
    /// A variable, bound during evaluation.
    Var(String),
    /// A constant that must match exactly.
    Const(Value),
}

impl Term {
    /// A variable term.
    pub fn var(name: &str) -> Term {
        Term::Var(name.to_owned())
    }

    /// A symbolic-constant term.
    pub fn sym(name: &str) -> Term {
        Term::Const(Value::Sym(name.to_owned()))
    }
}

/// One atom: `relation(term, …)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Atom {
    /// The relation name.
    pub relation: String,
    /// One term per column.
    pub terms: Vec<Term>,
}

impl Atom {
    /// `relation(terms…)`.
    pub fn new(relation: &str, terms: Vec<Term>) -> Atom {
        Atom {
            relation: relation.to_owned(),
            terms,
        }
    }
}

/// A conjunctive query: `head(x, …) :- atom1, atom2, …`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConjunctiveQuery {
    /// The answer variables, in output order.
    pub head: Vec<String>,
    /// The conjunctive conditions.
    pub body: Vec<Atom>,
}

/// A variable binding.
pub type Binding = BTreeMap<String, Value>;

impl ConjunctiveQuery {
    /// `head(vars…) :- body`.
    pub fn new(head: &[&str], body: Vec<Atom>) -> ConjunctiveQuery {
        ConjunctiveQuery {
            head: head.iter().map(|s| (*s).to_owned()).collect(),
            body,
        }
    }

    /// Evaluate against a database, closed-world: only stored tuples
    /// satisfy atoms. Returns the distinct head projections.
    pub fn evaluate(&self, db: &Database) -> Vec<Tuple> {
        let mut bindings: Vec<Binding> = vec![Binding::new()];
        for atom in &self.body {
            let rel = db.relation_or_empty(&atom.relation, atom.terms.len());
            let mut next: Vec<Binding> = Vec::new();
            for b in &bindings {
                for t in rel.iter() {
                    if let Some(extended) = match_atom(atom, t, b) {
                        next.push(extended);
                    }
                }
            }
            bindings = next;
            if bindings.is_empty() {
                break;
            }
        }
        let mut out: Vec<Tuple> = bindings
            .into_iter()
            .filter_map(|b| {
                self.head
                    .iter()
                    .map(|v| b.get(v).cloned())
                    .collect::<Option<Tuple>>()
            })
            .collect();
        out.sort();
        out.dedup();
        out
    }
}

fn match_atom(atom: &Atom, tuple: &Tuple, binding: &Binding) -> Option<Binding> {
    let mut b = binding.clone();
    for (term, value) in atom.terms.iter().zip(tuple) {
        match term {
            Term::Const(c) => {
                if c != value {
                    return None;
                }
            }
            Term::Var(v) => match b.get(v) {
                Some(bound) if bound != value => return None,
                Some(_) => {}
                None => {
                    b.insert(v.clone(), value.clone());
                }
            },
        }
    }
    Some(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::Relation;

    fn db() -> Database {
        let mut db = Database::new();
        let mut person = Relation::new("concept:PERSON", 1);
        for p in ["Rocky", "Pat"] {
            person.insert(vec![Value::Sym(p.into())]);
        }
        db.insert_relation(person);
        let mut drives = Relation::new("role:drives", 2);
        drives.insert(vec![Value::Sym("Rocky".into()), Value::Sym("Volvo".into())]);
        drives.insert(vec![Value::Sym("Pat".into()), Value::Sym("Saab".into())]);
        drives.insert(vec![Value::Sym("Rocky".into()), Value::Sym("Saab".into())]);
        db.insert_relation(drives);
        let mut maker = Relation::new("role:maker", 2);
        maker.insert(vec![
            Value::Sym("Volvo".into()),
            Value::Sym("VolvoAB".into()),
        ]);
        db.insert_relation(maker);
        db
    }

    #[test]
    fn single_atom_query() {
        let q = ConjunctiveQuery::new(
            &["x"],
            vec![Atom::new("concept:PERSON", vec![Term::var("x")])],
        );
        let ans = q.evaluate(&db());
        assert_eq!(ans.len(), 2);
    }

    #[test]
    fn join_query() {
        // Who drives something with a known maker?
        let q = ConjunctiveQuery::new(
            &["p", "m"],
            vec![
                Atom::new("role:drives", vec![Term::var("p"), Term::var("c")]),
                Atom::new("role:maker", vec![Term::var("c"), Term::var("m")]),
            ],
        );
        let ans = q.evaluate(&db());
        assert_eq!(
            ans,
            vec![vec![
                Value::Sym("Rocky".into()),
                Value::Sym("VolvoAB".into())
            ]]
        );
    }

    #[test]
    fn constants_filter() {
        let q = ConjunctiveQuery::new(
            &["c"],
            vec![Atom::new(
                "role:drives",
                vec![Term::sym("Rocky"), Term::var("c")],
            )],
        );
        let ans = q.evaluate(&db());
        assert_eq!(ans.len(), 2);
    }

    #[test]
    fn repeated_variables_enforce_equality() {
        // Self-driving: drives(x, x) — empty here.
        let q = ConjunctiveQuery::new(
            &["x"],
            vec![Atom::new(
                "role:drives",
                vec![Term::var("x"), Term::var("x")],
            )],
        );
        assert!(q.evaluate(&db()).is_empty());
    }

    #[test]
    fn missing_relation_means_no_answers_closed_world() {
        // The closed world: asking about an unrecorded relation yields
        // nothing (CLASSIC would instead distinguish known from possible).
        let q = ConjunctiveQuery::new(
            &["x"],
            vec![Atom::new("role:owns", vec![Term::var("x"), Term::var("y")])],
        );
        assert!(q.evaluate(&db()).is_empty());
    }

    #[test]
    fn conjunction_across_unary_and_binary() {
        // Persons who drive Saab.
        let q = ConjunctiveQuery::new(
            &["p"],
            vec![
                Atom::new("concept:PERSON", vec![Term::var("p")]),
                Atom::new("role:drives", vec![Term::var("p"), Term::sym("Saab")]),
            ],
        );
        let ans = q.evaluate(&db());
        assert_eq!(ans.len(), 2);
    }
}
