//! A positive Datalog evaluator over the relational view.
//!
//! The paper positions CLASSIC against "the field of logic (or deductive)
//! databases" (§1): deductive rules over relations are expressive but the
//! general problem "is equivalent to theorem proving … known to be
//! undecidable", so CLASSIC instead restricts its *language*. This module
//! supplies the deductive-database side of that comparison: positive
//! (negation-free) Datalog programs evaluated semi-naively to a fixed
//! point over the closed-world relational export.
//!
//! It is deliberately exactly as strong as the paper's foil — recursive
//! rules over extensional relations under the closed-world assumption —
//! and exactly as weak: no existentials in rule heads, no disjunction,
//! no open world. The E7 discussion in EXPERIMENTS.md uses it to show
//! what each side can and cannot answer.

use crate::db::Database;
use crate::query::{Atom, Binding, Term};
use crate::relation::{Relation, Tuple};
use std::collections::BTreeSet;

/// One Datalog rule: `head :- body₁, …, bodyₙ` (all positive atoms).
/// Head terms must be variables bound by the body or constants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// The derived atom.
    pub head: Atom,
    /// The positive conditions.
    pub body: Vec<Atom>,
}

impl Rule {
    /// `head :- body₁, …, bodyₙ`.
    pub fn new(head: Atom, body: Vec<Atom>) -> Rule {
        Rule { head, body }
    }
}

/// A positive Datalog program.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// The rules, evaluated together to a fixed point.
    pub rules: Vec<Rule>,
}

impl Program {
    /// A program from a rule list.
    pub fn new(rules: Vec<Rule>) -> Program {
        Program { rules }
    }

    /// Evaluate to a fixed point over `db`, returning a database extended
    /// with the derived relations (the input is not modified).
    ///
    /// Semi-naive evaluation: each round joins only against tuples that
    /// are new since the previous round (per derived relation), so the
    /// work per round is proportional to the frontier, not the whole
    /// database. Positive programs are monotone, hence the fixed point
    /// exists and is reached in at most |derivable tuples| rounds.
    pub fn evaluate(&self, db: &Database) -> Database {
        let mut out = db.clone();
        // Ensure every head relation exists.
        for rule in &self.rules {
            if out.relation(&rule.head.relation).is_none() {
                out.insert_relation(Relation::new(&rule.head.relation, rule.head.terms.len()));
            }
        }
        // Delta per derived relation name.
        let mut delta: Vec<(String, BTreeSet<Tuple>)> = self
            .rules
            .iter()
            .map(|r| (r.head.relation.clone(), BTreeSet::new()))
            .collect();
        delta.sort();
        delta.dedup_by(|a, b| a.0 == b.0);
        // Round 0: naive evaluation seeds the deltas.
        let mut frontier: BTreeSet<(String, Tuple)> = BTreeSet::new();
        for rule in &self.rules {
            for t in derive(rule, &out, None) {
                if !out
                    .relation(&rule.head.relation)
                    .is_some_and(|r| r.contains(&t))
                {
                    frontier.insert((rule.head.relation.clone(), t));
                }
            }
        }
        let mut guard = 0usize;
        while !frontier.is_empty() {
            guard += 1;
            assert!(
                guard <= 1 + out.total_tuples() + frontier.len() * 4 + 1_000,
                "semi-naive evaluation failed to converge"
            );
            // Commit the frontier.
            let committed: Vec<(String, Tuple)> = frontier.iter().cloned().collect();
            for (rel, t) in &committed {
                let arity = t.len();
                out.insert_tuple(rel, arity, t.clone());
            }
            // Next frontier: rules whose body mentions a relation that
            // just grew, restricted to using ≥1 new tuple.
            let mut next: BTreeSet<(String, Tuple)> = BTreeSet::new();
            let grown: BTreeSet<&str> = committed.iter().map(|(r, _)| r.as_str()).collect();
            for rule in &self.rules {
                if !rule
                    .body
                    .iter()
                    .any(|a| grown.contains(a.relation.as_str()))
                {
                    continue;
                }
                for t in derive(rule, &out, Some(&frontier)) {
                    if !out
                        .relation(&rule.head.relation)
                        .is_some_and(|r| r.contains(&t))
                    {
                        next.insert((rule.head.relation.clone(), t));
                    }
                }
            }
            frontier = next;
        }
        out
    }
}

/// All head tuples derivable by one rule. With `delta`, only derivations
/// using at least one delta tuple are produced (the semi-naive filter).
fn derive(rule: &Rule, db: &Database, delta: Option<&BTreeSet<(String, Tuple)>>) -> Vec<Tuple> {
    // For semi-naive: for each position i in the body, evaluate with
    // atom i restricted to delta tuples and earlier atoms to full
    // relations — the standard delta expansion. Without delta, one pass
    // over full relations.
    let passes: Vec<Option<usize>> = match delta {
        None => vec![None],
        Some(_) => (0..rule.body.len()).map(Some).collect(),
    };
    let mut out = Vec::new();
    for delta_pos in passes {
        let mut bindings: Vec<Binding> = vec![Binding::new()];
        for (i, atom) in rule.body.iter().enumerate() {
            let use_delta = delta_pos == Some(i);
            let rel = db.relation_or_empty(&atom.relation, atom.terms.len());
            let mut next: Vec<Binding> = Vec::new();
            for b in &bindings {
                if use_delta {
                    for (rname, t) in delta.expect("delta pass") {
                        if rname == &atom.relation {
                            if let Some(e) = match_atom(atom, t, b) {
                                next.push(e);
                            }
                        }
                    }
                } else {
                    for t in rel.iter() {
                        if let Some(e) = match_atom(atom, t, b) {
                            next.push(e);
                        }
                    }
                }
            }
            bindings = next;
            if bindings.is_empty() {
                break;
            }
        }
        for b in bindings {
            if let Some(t) = instantiate_head(&rule.head, &b) {
                out.push(t);
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

fn match_atom(atom: &Atom, tuple: &Tuple, binding: &Binding) -> Option<Binding> {
    let mut b = binding.clone();
    for (term, value) in atom.terms.iter().zip(tuple) {
        match term {
            Term::Const(c) => {
                if c != value {
                    return None;
                }
            }
            Term::Var(v) => match b.get(v) {
                Some(bound) if bound != value => return None,
                Some(_) => {}
                None => {
                    b.insert(v.clone(), value.clone());
                }
            },
        }
    }
    Some(b)
}

fn instantiate_head(head: &Atom, binding: &Binding) -> Option<Tuple> {
    head.terms
        .iter()
        .map(|t| match t {
            Term::Const(v) => Some(v.clone()),
            Term::Var(v) => binding.get(v).cloned(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::Value;

    fn sym(s: &str) -> Value {
        Value::Sym(s.to_owned())
    }

    fn edge_db(edges: &[(&str, &str)]) -> Database {
        let mut db = Database::new();
        let mut r = Relation::new("edge", 2);
        for (a, b) in edges {
            r.insert(vec![sym(a), sym(b)]);
        }
        db.insert_relation(r);
        db
    }

    /// path(x,y) :- edge(x,y).  path(x,z) :- path(x,y), edge(y,z).
    fn path_program() -> Program {
        Program::new(vec![
            Rule::new(
                Atom::new("path", vec![Term::var("x"), Term::var("y")]),
                vec![Atom::new("edge", vec![Term::var("x"), Term::var("y")])],
            ),
            Rule::new(
                Atom::new("path", vec![Term::var("x"), Term::var("z")]),
                vec![
                    Atom::new("path", vec![Term::var("x"), Term::var("y")]),
                    Atom::new("edge", vec![Term::var("y"), Term::var("z")]),
                ],
            ),
        ])
    }

    #[test]
    fn transitive_closure_of_a_chain() {
        let db = edge_db(&[("a", "b"), ("b", "c"), ("c", "d")]);
        let out = path_program().evaluate(&db);
        let path = out.relation("path").unwrap();
        assert_eq!(path.len(), 6); // ab ac ad bc bd cd
        assert!(path.contains(&[sym("a"), sym("d")]));
        assert!(!path.contains(&[sym("d"), sym("a")]));
    }

    #[test]
    fn cycles_terminate() {
        let db = edge_db(&[("a", "b"), ("b", "a")]);
        let out = path_program().evaluate(&db);
        let path = out.relation("path").unwrap();
        // aa ab ba bb.
        assert_eq!(path.len(), 4);
        assert!(path.contains(&[sym("a"), sym("a")]));
    }

    #[test]
    fn non_recursive_rules_are_plain_joins() {
        let mut db = edge_db(&[("a", "b")]);
        let mut color = Relation::new("color", 2);
        color.insert(vec![sym("b"), sym("red")]);
        db.insert_relation(color);
        let program = Program::new(vec![Rule::new(
            Atom::new("reaches-red", vec![Term::var("x")]),
            vec![
                Atom::new("edge", vec![Term::var("x"), Term::var("y")]),
                Atom::new("color", vec![Term::var("y"), Term::sym("red")]),
            ],
        )]);
        let out = program.evaluate(&db);
        let r = out.relation("reaches-red").unwrap();
        assert_eq!(r.len(), 1);
        assert!(r.contains(&[sym("a")]));
    }

    #[test]
    fn input_database_is_untouched() {
        let db = edge_db(&[("a", "b"), ("b", "c")]);
        let before = db.total_tuples();
        let _ = path_program().evaluate(&db);
        assert_eq!(db.total_tuples(), before);
        assert!(db.relation("path").is_none());
    }

    #[test]
    fn constants_in_heads() {
        let db = edge_db(&[("a", "b")]);
        let program = Program::new(vec![Rule::new(
            Atom::new("tagged", vec![Term::var("x"), Term::sym("seen")]),
            vec![Atom::new("edge", vec![Term::var("x"), Term::var("y")])],
        )]);
        let out = program.evaluate(&db);
        assert!(out
            .relation("tagged")
            .unwrap()
            .contains(&[sym("a"), sym("seen")]));
    }

    #[test]
    fn mutually_recursive_rules() {
        // even(x) / odd(x) distance from a root along a chain.
        let db = {
            let mut db = edge_db(&[("n0", "n1"), ("n1", "n2"), ("n2", "n3")]);
            let mut root = Relation::new("root", 1);
            root.insert(vec![sym("n0")]);
            db.insert_relation(root);
            db
        };
        let program = Program::new(vec![
            Rule::new(
                Atom::new("even", vec![Term::var("x")]),
                vec![Atom::new("root", vec![Term::var("x")])],
            ),
            Rule::new(
                Atom::new("odd", vec![Term::var("y")]),
                vec![
                    Atom::new("even", vec![Term::var("x")]),
                    Atom::new("edge", vec![Term::var("x"), Term::var("y")]),
                ],
            ),
            Rule::new(
                Atom::new("even", vec![Term::var("y")]),
                vec![
                    Atom::new("odd", vec![Term::var("x")]),
                    Atom::new("edge", vec![Term::var("x"), Term::var("y")]),
                ],
            ),
        ]);
        let out = program.evaluate(&db);
        assert!(out.relation("even").unwrap().contains(&[sym("n0")]));
        assert!(out.relation("odd").unwrap().contains(&[sym("n1")]));
        assert!(out.relation("even").unwrap().contains(&[sym("n2")]));
        assert!(out.relation("odd").unwrap().contains(&[sym("n3")]));
    }

    #[test]
    fn semi_naive_matches_naive() {
        // Cross-check on a denser random-ish graph.
        let edges: Vec<(String, String)> = (0..30u32)
            .map(|i| (format!("v{}", i % 10), format!("v{}", (i * 7 + 3) % 10)))
            .collect();
        let refs: Vec<(&str, &str)> = edges
            .iter()
            .map(|(a, b)| (a.as_str(), b.as_str()))
            .collect();
        let db = edge_db(&refs);
        let semi = path_program().evaluate(&db);
        // Naive reference: iterate full evaluation until stable.
        let mut naive = db.clone();
        naive.insert_relation(Relation::new("path", 2));
        loop {
            let mut added = false;
            for rule in &path_program().rules {
                for t in derive(rule, &naive, None) {
                    if !naive.relation("path").unwrap().contains(&t) {
                        naive.insert_tuple("path", 2, t);
                        added = true;
                    }
                }
            }
            if !added {
                break;
            }
        }
        assert_eq!(
            semi.relation("path").unwrap(),
            naive.relation("path").unwrap()
        );
    }
}
