//! A minimal in-memory relational engine.
//!
//! Paper §3.5.2: "just consider each role as a binary relation, and every
//! primitive concept as a unary relation, and one has an ordinary
//! relational database (modulo the closed world assumption)". This module
//! is that ordinary relational database: named relations of fixed arity
//! with set semantics, and the classical operators (selection, projection,
//! natural join, union, difference). It exists as the closed-world
//! baseline for experiment E7 — the comparator CLASSIC's open-world
//! answers are measured against.

use std::collections::BTreeSet;
use std::fmt;

/// A relational value: individual names map to symbols, host values to
/// their natural types.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// An individual (or other symbolic) constant.
    Sym(String),
    /// A host integer.
    Int(i64),
    /// A host float (total order via [`classic_core::host::F64`]).
    Float(classic_core::host::F64),
    /// A host string.
    Str(String),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Sym(s) => f.write_str(s),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s:?}"),
        }
    }
}

/// A tuple of values.
pub type Tuple = Vec<Value>;

/// A named relation with set semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    /// The relation's name (its key in a [`crate::Database`]).
    pub name: String,
    /// Number of columns; every tuple has exactly this length.
    pub arity: usize,
    tuples: BTreeSet<Tuple>,
}

impl Relation {
    /// An empty relation.
    pub fn new(name: &str, arity: usize) -> Relation {
        Relation {
            name: name.to_owned(),
            arity,
            tuples: BTreeSet::new(),
        }
    }

    /// Insert a tuple; panics on arity mismatch (programmer error).
    pub fn insert(&mut self, t: Tuple) {
        assert_eq!(
            t.len(),
            self.arity,
            "arity mismatch inserting into {}",
            self.name
        );
        self.tuples.insert(t);
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Does the relation hold no tuples?
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Is this exact tuple stored?
    pub fn contains(&self, t: &[Value]) -> bool {
        self.tuples.contains(t)
    }

    /// Iterate the tuples in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// σ: keep tuples where column `col` equals `v`.
    pub fn select_eq(&self, col: usize, v: &Value) -> Relation {
        let mut out = Relation::new(&format!("σ({})", self.name), self.arity);
        for t in &self.tuples {
            if &t[col] == v {
                out.tuples.insert(t.clone());
            }
        }
        out
    }

    /// σ: keep tuples where two columns are equal.
    pub fn select_cols_eq(&self, a: usize, b: usize) -> Relation {
        let mut out = Relation::new(&format!("σ({})", self.name), self.arity);
        for t in &self.tuples {
            if t[a] == t[b] {
                out.tuples.insert(t.clone());
            }
        }
        out
    }

    /// π: project onto the given columns (in order, duplicates allowed).
    pub fn project(&self, cols: &[usize]) -> Relation {
        let mut out = Relation::new(&format!("π({})", self.name), cols.len());
        for t in &self.tuples {
            out.tuples
                .insert(cols.iter().map(|&c| t[c].clone()).collect());
        }
        out
    }

    /// ⋈: join on pairs of (left column, right column); the result is the
    /// left tuple extended with the right tuple's non-join columns.
    pub fn join(&self, other: &Relation, on: &[(usize, usize)]) -> Relation {
        let right_keep: Vec<usize> = (0..other.arity)
            .filter(|c| !on.iter().any(|(_, rc)| rc == c))
            .collect();
        let mut out = Relation::new(
            &format!("({}⋈{})", self.name, other.name),
            self.arity + right_keep.len(),
        );
        // Hash join on the key columns.
        use std::collections::HashMap;
        let mut index: HashMap<Vec<&Value>, Vec<&Tuple>> = HashMap::new();
        for rt in &other.tuples {
            let key: Vec<&Value> = on.iter().map(|&(_, rc)| &rt[rc]).collect();
            index.entry(key).or_default().push(rt);
        }
        for lt in &self.tuples {
            let key: Vec<&Value> = on.iter().map(|&(lc, _)| &lt[lc]).collect();
            if let Some(matches) = index.get(&key) {
                for rt in matches {
                    let mut t = lt.clone();
                    t.extend(right_keep.iter().map(|&c| rt[c].clone()));
                    out.tuples.insert(t);
                }
            }
        }
        out
    }

    /// ∪ (arities must match).
    pub fn union(&self, other: &Relation) -> Relation {
        assert_eq!(self.arity, other.arity, "union arity mismatch");
        let mut out = self.clone();
        out.name = format!("({}∪{})", self.name, other.name);
        out.tuples.extend(other.tuples.iter().cloned());
        out
    }

    /// − (set difference; arities must match).
    pub fn difference(&self, other: &Relation) -> Relation {
        assert_eq!(self.arity, other.arity, "difference arity mismatch");
        let mut out = Relation::new(&format!("({}−{})", self.name, other.name), self.arity);
        for t in &self.tuples {
            if !other.tuples.contains(t) {
                out.tuples.insert(t.clone());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Value {
        Value::Sym(s.to_owned())
    }

    fn rel(name: &str, tuples: &[&[&str]]) -> Relation {
        let arity = tuples.first().map_or(1, |t| t.len());
        let mut r = Relation::new(name, arity);
        for t in tuples {
            r.insert(t.iter().map(|s| sym(s)).collect());
        }
        r
    }

    #[test]
    fn set_semantics() {
        let mut r = Relation::new("r", 1);
        r.insert(vec![sym("a")]);
        r.insert(vec![sym("a")]);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn select_and_project() {
        let r = rel(
            "drives",
            &[&["Rocky", "Volvo"], &["Pat", "Saab"], &["Rocky", "Saab"]],
        );
        let rocky = r.select_eq(0, &sym("Rocky"));
        assert_eq!(rocky.len(), 2);
        let cars = r.project(&[1]);
        assert_eq!(cars.len(), 2); // Volvo, Saab (set semantics)
    }

    #[test]
    fn select_cols_eq() {
        let r = rel("pairs", &[&["a", "a"], &["a", "b"]]);
        assert_eq!(r.select_cols_eq(0, 1).len(), 1);
    }

    #[test]
    fn hash_join() {
        let drives = rel("drives", &[&["Rocky", "Volvo"], &["Pat", "Saab"]]);
        let maker = rel("maker", &[&["Volvo", "VolvoAB"], &["Saab", "SaabAB"]]);
        let j = drives.join(&maker, &[(1, 0)]);
        assert_eq!(j.arity, 3);
        assert_eq!(j.len(), 2);
        assert!(j.contains(&[sym("Rocky"), sym("Volvo"), sym("VolvoAB")]));
    }

    #[test]
    fn join_with_no_matches_is_empty() {
        let a = rel("a", &[&["x", "y"]]);
        let b = rel("b", &[&["z", "w"]]);
        assert!(a.join(&b, &[(1, 0)]).is_empty());
    }

    #[test]
    fn union_and_difference() {
        let a = rel("a", &[&["x"], &["y"]]);
        let b = rel("b", &[&["y"], &["z"]]);
        assert_eq!(a.union(&b).len(), 3);
        let d = a.difference(&b);
        assert_eq!(d.len(), 1);
        assert!(d.contains(&[sym("x")]));
    }

    #[test]
    fn mixed_value_types_order() {
        let mut r = Relation::new("vals", 1);
        r.insert(vec![Value::Int(3)]);
        r.insert(vec![Value::Str("3".into())]);
        r.insert(vec![sym("3")]);
        assert_eq!(r.len(), 3);
    }
}
