//! End-to-end tests of the analyzer: each diagnostic code is provoked by
//! a small schema, and a clean paper-style schema yields no findings.

use classic_analyze::{analyze, Code, KbAnalyze, Severity, Span};
use classic_core::desc::Concept;
use classic_kb::Kb;

/// A small §3-style schema: PERSON with disjoint MALE/FEMALE, plus a
/// couple of roles. Coherent and lint-clean by construction.
fn base_kb() -> Kb {
    let mut kb = Kb::new();
    kb.define_role("friend").unwrap();
    kb.define_role("pet").unwrap();
    kb.define_concept("PERSON", Concept::primitive(Concept::thing(), "person"))
        .unwrap();
    let person = kb.schema().symbols.find_concept("PERSON").unwrap();
    kb.define_concept(
        "MALE",
        Concept::disjoint_primitive(Concept::Name(person), "gender", "male"),
    )
    .unwrap();
    kb.define_concept(
        "FEMALE",
        Concept::disjoint_primitive(Concept::Name(person), "gender", "female"),
    )
    .unwrap();
    kb
}

fn named(kb: &Kb, name: &str) -> Concept {
    Concept::Name(kb.schema().symbols.find_concept(name).unwrap())
}

fn codes(kb: &mut Kb) -> Vec<Code> {
    analyze(kb).diagnostics.iter().map(|d| d.code).collect()
}

#[test]
fn clean_schema_has_no_findings() {
    let mut kb = base_kb();
    let friend = kb.schema().symbols.find_role("friend").unwrap();
    let male = named(&kb, "MALE");
    kb.define_concept(
        "SOCIABLE",
        Concept::and([named(&kb, "PERSON"), Concept::AtLeast(2, friend)]),
    )
    .unwrap();
    kb.assert_rule("MALE", Concept::AtLeast(1, friend)).unwrap();
    let report = kb.analyze();
    assert!(
        report.diagnostics.is_empty(),
        "unexpected findings:\n{}",
        report.render()
    );
    assert_eq!(report.concepts_checked, 4);
    assert_eq!(report.rules_checked, 1);
    assert!(report.passes(Severity::Warning));
    drop(male);
}

#[test]
fn incoherent_concept_is_flagged_with_culprit_conjunct() {
    let mut kb = base_kb();
    let friend = kb.schema().symbols.find_role("friend").unwrap();
    kb.define_concept(
        "LONER",
        Concept::and([
            named(&kb, "PERSON"),
            Concept::AtLeast(3, friend),
            Concept::AtMost(2, friend),
        ]),
    )
    .unwrap();
    let report = analyze(&mut kb);
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == Code::IncoherentConcept)
        .expect("A001 expected");
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.span, Span::Concept("LONER".into()));
    // Provenance must name conjunct 3 (the AT-MOST) as the culprit.
    assert!(
        d.provenance.iter().any(|l| l.contains("conjunct 3")),
        "provenance: {:?}",
        d.provenance
    );
    assert!(!report.passes(Severity::Error));
}

#[test]
fn disjoint_primitive_meet_is_incoherent() {
    let mut kb = base_kb();
    kb.define_concept(
        "HERMAPHRODITE",
        Concept::and([named(&kb, "MALE"), named(&kb, "FEMALE")]),
    )
    .unwrap();
    assert!(codes(&mut kb).contains(&Code::IncoherentConcept));
}

#[test]
fn vacuous_restriction_is_a_warning_not_an_error() {
    let mut kb = base_kb();
    let pet = kb.schema().symbols.find_role("pet").unwrap();
    kb.define_concept(
        "PETLESS",
        Concept::all(
            pet,
            Concept::and([named(&kb, "MALE"), named(&kb, "FEMALE")]),
        ),
    )
    .unwrap();
    let report = analyze(&mut kb);
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == Code::VacuousRestriction)
        .expect("A003 expected");
    assert_eq!(d.severity, Severity::Warning);
    assert!(d.message.contains("AT-MOST 0"));
    // The definition itself is coherent, so no A001.
    assert!(!report
        .diagnostics
        .iter()
        .any(|d| d.code == Code::IncoherentConcept));
    assert!(report.passes(Severity::Error));
    assert!(!report.passes(Severity::Warning));
}

#[test]
fn redundant_conjunct_is_flagged() {
    let mut kb = base_kb();
    // MALE's definition already carries PERSON as its parent, so the
    // explicit PERSON conjunct adds nothing.
    kb.define_concept(
        "REDUNDANT-MAN",
        Concept::and([named(&kb, "MALE"), named(&kb, "PERSON")]),
    )
    .unwrap();
    let report = analyze(&mut kb);
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == Code::RedundantConjunct)
        .expect("A008 expected");
    assert!(d.message.contains("conjunct 2"), "message: {}", d.message);
    assert!(d.provenance.iter().any(|l| l.contains("PERSON")));
}

#[test]
fn dead_rule_on_incoherent_antecedent() {
    let mut kb = base_kb();
    let friend = kb.schema().symbols.find_role("friend").unwrap();
    kb.define_concept(
        "DOOMED",
        Concept::and([named(&kb, "MALE"), named(&kb, "FEMALE")]),
    )
    .unwrap();
    kb.assert_rule("DOOMED", Concept::AtLeast(1, friend))
        .unwrap();
    let report = analyze(&mut kb);
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == Code::DeadRule)
        .expect("A004 expected");
    assert!(matches!(&d.span, Span::Rule { antecedent, .. } if antecedent == "DOOMED"));
    // A dead rule is not additionally analyzed for shadowing/entailment.
    assert!(!report
        .diagnostics
        .iter()
        .any(|d| matches!(d.code, Code::ShadowedRule | Code::EntailedConsequent)));
}

#[test]
fn entailed_consequent_is_flagged() {
    let mut kb = base_kb();
    // Every MALE is already a PERSON.
    kb.assert_rule("MALE", named(&kb, "PERSON")).unwrap();
    let report = analyze(&mut kb);
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.code == Code::EntailedConsequent));
}

#[test]
fn broader_rule_shadows_narrower_one() {
    let mut kb = base_kb();
    let friend = kb.schema().symbols.find_role("friend").unwrap();
    kb.assert_rule("PERSON", Concept::AtLeast(1, friend))
        .unwrap();
    kb.assert_rule("MALE", Concept::AtLeast(1, friend)).unwrap();
    let report = analyze(&mut kb);
    let shadowed: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.code == Code::ShadowedRule)
        .collect();
    // Only the MALE rule is shadowed (PERSON fires strictly more often).
    assert_eq!(shadowed.len(), 1, "report:\n{}", report.render());
    assert!(matches!(&shadowed[0].span, Span::Rule { antecedent, .. } if antecedent == "MALE"));
}

#[test]
fn equivalent_rules_flag_only_the_later_one() {
    let mut kb = base_kb();
    let friend = kb.schema().symbols.find_role("friend").unwrap();
    kb.assert_rule("PERSON", Concept::AtLeast(1, friend))
        .unwrap();
    kb.assert_rule("PERSON", Concept::AtLeast(1, friend))
        .unwrap();
    let report = analyze(&mut kb);
    let shadowed: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.code == Code::ShadowedRule)
        .collect();
    assert_eq!(shadowed.len(), 1, "report:\n{}", report.render());
    assert!(matches!(&shadowed[0].span, Span::Rule { index: 1, .. }));
}

#[test]
fn live_rule_duplicating_retired_rule_is_noted() {
    let mut kb = base_kb();
    let pet = kb.schema().symbols.find_role("pet").unwrap();
    kb.assert_rule("PERSON", Concept::AtLeast(1, pet)).unwrap();
    kb.retract_rule("PERSON", &Concept::AtLeast(1, pet))
        .unwrap();
    kb.assert_rule("MALE", Concept::AtLeast(1, pet)).unwrap();
    let report = analyze(&mut kb);
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == Code::RetiredTwin)
        .expect("A007 expected");
    assert_eq!(d.severity, Severity::Info);
    // Info findings never fail a --deny warnings run.
    assert!(report.passes(Severity::Warning));
    assert_eq!(report.rules_checked, 2);
}

#[test]
fn report_renders_summary_line() {
    let mut kb = base_kb();
    let report = kb.analyze();
    let text = report.render();
    assert!(
        text.contains("0 error(s), 0 warning(s), 0 note(s)"),
        "render: {text}"
    );
    assert!(text.contains("3 concept(s), 0 rule(s), 0 individual(s) checked"));
}

#[test]
fn errors_sort_before_warnings() {
    let mut kb = base_kb();
    let friend = kb.schema().symbols.find_role("friend").unwrap();
    let pet = kb.schema().symbols.find_role("pet").unwrap();
    // One warning (vacuous ALL) and one error (incoherent concept).
    kb.define_concept(
        "PETLESS",
        Concept::all(
            pet,
            Concept::and([named(&kb, "MALE"), named(&kb, "FEMALE")]),
        ),
    )
    .unwrap();
    kb.define_concept(
        "LONER",
        Concept::and([Concept::AtLeast(3, friend), Concept::AtMost(2, friend)]),
    )
    .unwrap();
    let report = analyze(&mut kb);
    assert!(report.diagnostics.len() >= 2);
    assert_eq!(report.diagnostics[0].severity, Severity::Error);
    assert_eq!(report.worst(), Some(Severity::Error));
}
