//! Property oracle: the static analyzer against the dynamic semantics.
//!
//! Two directions, both driven by randomly generated TBoxes:
//!
//! * **Soundness of `A001`** — if the analyzer flags a defined concept as
//!   incoherent, then under *every* generated ABox the concept's
//!   extension is empty in the strongest sense: no individual is even a
//!   *possible* instance (the open-world disjointness test at the query
//!   layer), and every attempt to assert an individual under it is
//!   rejected by the completion machinery. These are independent
//!   computation paths from the one the analyzer used (re-normalization
//!   of the definition), so agreement is a real cross-check.
//! * **No false alarms** — a TBox generated from a coherent-by-
//!   construction grammar (all `AT-LEAST` bounds below all `AT-MOST`
//!   bounds, primitives drawn from one non-disjoint pool, references
//!   strictly to earlier definitions) must produce *zero* Error-severity
//!   diagnostics, however the fragments are conjoined.

use classic_analyze::{analyze, Code, Severity, Span};
use classic_core::desc::Concept;
use classic_core::symbol::RoleId;
use classic_kb::Kb;
use proptest::prelude::*;

const N_ROLES: usize = 3;
const N_INDS: usize = 4;

/// One conjunct of a generated definition. `Ref` points at an earlier
/// definition (resolved modulo the current position, so generation can't
/// build forward references or cycles).
#[derive(Debug, Clone)]
enum Part {
    Prim(u8),
    DisPrim(u8),
    AtLeast(u8, u32),
    AtMost(u8, u32),
    Ref(u8),
    AllPrim(u8, u8),
}

fn role(r: u8) -> RoleId {
    RoleId::from_index(r as usize % N_ROLES)
}

fn prim(k: u8) -> Concept {
    Concept::primitive(Concept::thing(), &format!("p{}", k % 3))
}

/// Resolve a part into a concept; `pos` is the index of the definition
/// being built (or `defs.len()` when building ABox assertions).
fn part_concept(kb: &mut Kb, part: &Part, pos: usize) -> Concept {
    match part {
        Part::Prim(k) => prim(*k),
        Part::DisPrim(k) => {
            Concept::disjoint_primitive(Concept::thing(), "side", &format!("d{}", k % 3))
        }
        Part::AtLeast(r, n) => Concept::AtLeast(*n, role(*r)),
        Part::AtMost(r, m) => Concept::AtMost(*m, role(*r)),
        Part::Ref(j) => {
            if pos == 0 {
                prim(*j)
            } else {
                Concept::Name(
                    kb.schema_mut()
                        .symbols
                        .concept(&format!("C{}", *j as usize % pos)),
                )
            }
        }
        Part::AllPrim(r, k) => Concept::all(role(*r), prim(*k)),
    }
}

/// Unconstrained parts: `AT-LEAST` up to 5 against `AT-MOST` down to 0,
/// plus mutually disjoint primitives — conflicts are common.
fn arb_part() -> impl Strategy<Value = Part> {
    prop_oneof![
        (0u8..3).prop_map(Part::Prim),
        (0u8..3).prop_map(Part::DisPrim),
        (0u8..3, 0u32..6).prop_map(|(r, n)| Part::AtLeast(r, n)),
        (0u8..3, 0u32..4).prop_map(|(r, m)| Part::AtMost(r, m)),
        (0u8..8).prop_map(Part::Ref),
        (0u8..3, 0u8..3).prop_map(|(r, k)| Part::AllPrim(r, k)),
    ]
}

/// Coherent-by-construction parts: every generated `AT-LEAST` is ≤ 2 and
/// every `AT-MOST` is ≥ 3, so no conjunction of these fragments — direct
/// or through `Ref` — can squeeze a role's bounds past each other, and
/// all primitives share one non-disjoint pool.
fn arb_coherent_part() -> impl Strategy<Value = Part> {
    prop_oneof![
        (0u8..3).prop_map(Part::Prim),
        (0u8..3, 0u32..3).prop_map(|(r, n)| Part::AtLeast(r, n)),
        (0u8..3, 3u32..6).prop_map(|(r, m)| Part::AtMost(r, m)),
        (0u8..8).prop_map(Part::Ref),
        (0u8..3, 0u8..3).prop_map(|(r, k)| Part::AllPrim(r, k)),
    ]
}

fn arb_defs() -> impl Strategy<Value = Vec<Vec<Part>>> {
    proptest::collection::vec(proptest::collection::vec(arb_part(), 1..4), 1..8)
}

fn arb_coherent_defs() -> impl Strategy<Value = Vec<Vec<Part>>> {
    proptest::collection::vec(proptest::collection::vec(arb_coherent_part(), 1..4), 1..8)
}

fn build_kb(defs: &[Vec<Part>]) -> Kb {
    let mut kb = Kb::new();
    for i in 0..N_ROLES {
        kb.define_role(&format!("r{i}")).unwrap();
    }
    for (i, parts) in defs.iter().enumerate() {
        let cs: Vec<Concept> = parts.iter().map(|p| part_concept(&mut kb, p, i)).collect();
        kb.define_concept(&format!("C{i}"), Concept::and(cs))
            .unwrap();
    }
    for j in 0..N_INDS {
        kb.create_ind(&format!("x{j}")).unwrap();
    }
    kb
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn incoherent_flagged_concepts_have_empty_extensions(
        defs in arb_defs(),
        steps in proptest::collection::vec((0..N_INDS, arb_part()), 0..10),
    ) {
        let mut kb = build_kb(&defs);
        let report = analyze(&mut kb);
        let flagged: Vec<String> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == Code::IncoherentConcept)
            .filter_map(|d| match &d.span {
                Span::Concept(n) => Some(n.clone()),
                _ => None,
            })
            .collect();
        // Populate the ABox; individual rejections are fine (the generator
        // produces inconsistent assertions on purpose).
        let n_defs = defs.len();
        for (i, part) in &steps {
            let c = part_concept(&mut kb, part, n_defs);
            let _ = kb.assert_ind(&format!("x{i}"), &c);
        }
        for name in &flagged {
            let id = kb.schema().symbols.find_concept(name).unwrap();
            let q = Concept::Name(id);
            // Open-world check: nothing is even *possibly* an instance of
            // a concept the analyzer called ⊥.
            let poss = classic_query::Query::concept(q.clone())
                .possible()
                .run(&mut kb)
                .unwrap()
                .into_possible()
                .unwrap();
            prop_assert!(
                poss.is_empty(),
                "analyzer flagged {name} incoherent but {} individual(s) are possible instances",
                poss.len()
            );
            // Completion check: the update machinery must reject every
            // direct membership assertion.
            for j in 0..N_INDS {
                prop_assert!(
                    kb.assert_ind(&format!("x{j}"), &q).is_err(),
                    "assertion of x{j} under incoherent-flagged {name} was accepted"
                );
            }
        }
    }

    #[test]
    fn clean_tboxes_yield_no_error_diagnostics(defs in arb_coherent_defs()) {
        let mut kb = build_kb(&defs);
        let report = analyze(&mut kb);
        prop_assert_eq!(
            report.count(Severity::Error),
            0,
            "false Error on coherent-by-construction TBox:\n{}",
            report.render()
        );
    }
}
