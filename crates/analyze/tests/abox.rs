//! ABox-tier tests: each A009–A014 code is provoked by a minimal KB, the
//! severity/exit-code mapping is pinned, and incremental maintenance is
//! smoke-checked against the full pass (the full differential oracle
//! lives in `classic-lang`'s proptest suite, driven through the surface
//! language).

use classic_analyze::{analyze, AnalysisState, Code, Severity};
use classic_core::desc::{Concept, IndRef};
use classic_kb::Kb;
use std::collections::BTreeSet;

fn base_kb() -> Kb {
    let mut kb = Kb::new();
    kb.define_role("r").unwrap();
    kb.define_concept("PERSON", Concept::primitive(Concept::thing(), "person"))
        .unwrap();
    let person = kb.schema().symbols.find_concept("PERSON").unwrap();
    kb.define_concept(
        "MALE",
        Concept::disjoint_primitive(Concept::Name(person), "gender", "male"),
    )
    .unwrap();
    kb.define_concept(
        "FEMALE",
        Concept::disjoint_primitive(Concept::Name(person), "gender", "female"),
    )
    .unwrap();
    kb
}

fn named(kb: &Kb, name: &str) -> Concept {
    Concept::Name(kb.schema().symbols.find_concept(name).unwrap())
}

fn ind_ref(kb: &mut Kb, name: &str) -> IndRef {
    IndRef::Classic(kb.schema_mut().symbols.individual(name))
}

fn codes(kb: &mut Kb) -> Vec<Code> {
    analyze(kb).diagnostics.iter().map(|d| d.code).collect()
}

#[test]
fn a009_obligation_with_too_few_viable_candidates() {
    let mut kb = base_kb();
    let r = kb.schema().symbols.find_role("r").unwrap();
    kb.create_ind("a").unwrap();
    kb.create_ind("b").unwrap();
    kb.assert_ind("a", &named(&kb, "MALE")).unwrap();
    kb.assert_ind("b", &named(&kb, "FEMALE")).unwrap();
    let pool = Concept::and([
        Concept::OneOf(vec![ind_ref(&mut kb, "a"), ind_ref(&mut kb, "b")]),
        named(&kb, "MALE"),
    ]);
    kb.create_ind("x").unwrap();
    kb.assert_ind(
        "x",
        &Concept::and([Concept::AtLeast(2, r), Concept::All(r, Box::new(pool))]),
    )
    .unwrap();
    let report = analyze(&mut kb);
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == Code::UnsatisfiableObligation)
        .expect("A009 expected");
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.span, classic_analyze::Span::Individual("x".into()));
    assert!(
        d.provenance.iter().any(|p| p.contains("b is incompatible")),
        "provenance should name the blocked candidate: {:?}",
        d.provenance
    );
}

#[test]
fn a010_role_one_filler_from_its_bound() {
    let mut kb = base_kb();
    let r = kb.schema().symbols.find_role("r").unwrap();
    kb.create_ind("a").unwrap();
    kb.create_ind("x").unwrap();
    let a = ind_ref(&mut kb, "a");
    kb.assert_ind(
        "x",
        &Concept::and([Concept::AtMost(2, r), Concept::Fills(r, vec![a])]),
    )
    .unwrap();
    let report = analyze(&mut kb);
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == Code::NearBound)
        .expect("A010 expected");
    assert_eq!(d.severity, Severity::Info);
    assert!(d.message.contains("1 of at most 2"));
}

#[test]
fn a011_same_as_meeting_one_of() {
    let mut kb = base_kb();
    kb.define_attribute("site").unwrap();
    kb.define_attribute("mirror").unwrap();
    let site = kb.schema().symbols.find_role("site").unwrap();
    let mirror = kb.schema().symbols.find_role("mirror").unwrap();
    kb.create_ind("a").unwrap();
    kb.create_ind("b").unwrap();
    let pool = Concept::OneOf(vec![ind_ref(&mut kb, "a"), ind_ref(&mut kb, "b")]);
    kb.create_ind("x").unwrap();
    kb.assert_ind(
        "x",
        &Concept::and([
            Concept::SameAs(vec![site], vec![mirror]),
            Concept::All(site, Box::new(pool)),
        ]),
    )
    .unwrap();
    let report = analyze(&mut kb);
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == Code::IncompleteReasoning)
        .expect("A011 expected");
    assert_eq!(d.severity, Severity::Warning);
}

#[test]
fn a012_rule_no_individual_is_compatible_with() {
    let mut kb = base_kb();
    let r = kb.schema().symbols.find_role("r").unwrap();
    kb.assert_rule("MALE", Concept::AtLeast(1, r)).unwrap();
    // Every individual is FEMALE, so the MALE rule can never fire.
    kb.create_ind("f1").unwrap();
    kb.assert_ind("f1", &named(&kb, "FEMALE")).unwrap();
    let report = analyze(&mut kb);
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == Code::InertRule)
        .expect("A012 expected");
    assert_eq!(d.severity, Severity::Warning);

    // An empty ABox is not an inert rule (nothing to be incompatible).
    let mut kb2 = base_kb();
    let r2 = kb2.schema().symbols.find_role("r").unwrap();
    kb2.assert_rule("MALE", Concept::AtLeast(1, r2)).unwrap();
    assert!(!codes(&mut kb2).contains(&Code::InertRule));

    // A compatible individual clears it.
    kb.create_ind("m1").unwrap();
    kb.assert_ind("m1", &named(&kb, "MALE")).unwrap();
    assert!(!codes(&mut kb).contains(&Code::InertRule));
}

#[test]
fn a013_orphan_individual() {
    let mut kb = base_kb();
    let r = kb.schema().symbols.find_role("r").unwrap();
    kb.create_ind("x").unwrap();
    kb.assert_ind("x", &Concept::AtLeast(1, r)).unwrap();
    let report = analyze(&mut kb);
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == Code::OrphanIndividual)
        .expect("A013 expected");
    assert_eq!(d.severity, Severity::Info);

    // Recognized individuals are not orphans.
    kb.assert_ind("x", &named(&kb, "PERSON")).unwrap();
    assert!(!codes(&mut kb).contains(&Code::OrphanIndividual));
}

#[test]
fn a014_close_capturing_derived_fillers() {
    let mut kb = base_kb();
    let r = kb.schema().symbols.find_role("r").unwrap();
    kb.create_ind("a").unwrap();
    kb.create_ind("b").unwrap();
    kb.create_ind("x").unwrap();
    let a = ind_ref(&mut kb, "a");
    kb.assert_ind("x", &Concept::Fills(r, vec![a])).unwrap();
    // A rule derives a second filler, then the user closes the role: the
    // closure's bound rests on the rule-derived filler.
    let b = ind_ref(&mut kb, "b");
    kb.assert_rule("PERSON", Concept::Fills(r, vec![b]))
        .unwrap();
    kb.assert_ind("x", &named(&kb, "PERSON")).unwrap();
    kb.assert_ind("x", &Concept::Close(r)).unwrap();
    let report = analyze(&mut kb);
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == Code::StaleClose)
        .expect("A014 expected");
    assert_eq!(d.severity, Severity::Warning);
    assert!(
        d.provenance.iter().any(|p| p.contains('b')),
        "provenance should name the derived filler: {:?}",
        d.provenance
    );

    // A CLOSE over told fillers only is not stale.
    let mut kb2 = base_kb();
    let r2 = kb2.schema().symbols.find_role("r").unwrap();
    kb2.create_ind("a").unwrap();
    kb2.create_ind("y").unwrap();
    let a2 = ind_ref(&mut kb2, "a");
    kb2.assert_ind("y", &Concept::Fills(r2, vec![a2])).unwrap();
    kb2.assert_ind("y", &Concept::Close(r2)).unwrap();
    assert!(!codes(&mut kb2).contains(&Code::StaleClose));
}

#[test]
fn abox_warnings_fail_deny_warnings_like_tbox_warnings() {
    // TBox warning only.
    let mut tbox = base_kb();
    let r = tbox.schema().symbols.find_role("r").unwrap();
    tbox.define_concept(
        "T",
        Concept::and([named(&tbox, "PERSON"), named(&tbox, "PERSON")]),
    )
    .unwrap();
    // ABox warning only (inert rule).
    let mut abox = base_kb();
    abox.assert_rule("MALE", Concept::AtLeast(1, r)).unwrap();
    abox.create_ind("f").unwrap();
    abox.assert_ind("f", &named(&abox, "FEMALE")).unwrap();

    let rt = analyze(&mut tbox);
    let ra = analyze(&mut abox);
    assert_eq!(rt.worst(), Some(Severity::Warning));
    assert_eq!(ra.worst(), Some(Severity::Warning));
    // Identical treatment under every deny threshold.
    for deny in [Severity::Warning, Severity::Error] {
        assert_eq!(rt.passes(deny), ra.passes(deny));
    }
    assert!(!ra.passes(Severity::Warning));
    assert!(ra.passes(Severity::Error));
}

#[test]
fn severity_spelling_is_single_sourced() {
    assert_eq!(Severity::Info.as_str(), "info");
    assert_eq!(Severity::Warning.as_str(), "warning");
    assert_eq!(Severity::Error.as_str(), "error");
    assert_eq!(Severity::parse_deny("warnings"), Some(Severity::Warning));
    assert_eq!(Severity::parse_deny("errors"), Some(Severity::Error));
    assert_eq!(Severity::parse_deny("nonsense"), None);
    for s in [Severity::Info, Severity::Warning, Severity::Error] {
        assert_eq!(s.to_string(), s.as_str());
    }
}

#[test]
fn json_lines_round_trip_shape() {
    let mut kb = base_kb();
    let r = kb.schema().symbols.find_role("r").unwrap();
    kb.create_ind("x").unwrap();
    kb.assert_ind("x", &Concept::AtLeast(1, r)).unwrap();
    let report = analyze(&mut kb);
    let lines = report.render_json_lines();
    assert!(!lines.is_empty());
    for line in lines.lines() {
        assert!(line.starts_with("{\"code\":\"A0"), "line: {line}");
        assert!(line.contains("\"severity\":"), "line: {line}");
        assert!(line.contains("\"span\":{\"kind\":"), "line: {line}");
        assert!(line.contains("\"provenance\":["), "line: {line}");
    }
}

#[test]
fn incremental_refresh_tracks_mutations() {
    let mut kb = base_kb();
    let r = kb.schema().symbols.find_role("r").unwrap();
    let mut state = AnalysisState::new();
    state.refresh(&mut kb);
    assert_eq!(state.report(&kb), analyze(&mut kb.clone()));

    // New individual with an orphan finding.
    kb.create_ind("x").unwrap();
    kb.assert_ind("x", &Concept::AtLeast(1, r)).unwrap();
    let id = kb.ind_ids().last().unwrap();
    state.mark_dirty(&kb, &BTreeSet::from([id]));
    let refresh = state.refresh(&mut kb);
    assert!(refresh.relinted >= 1);
    assert!(refresh
        .cone
        .iter()
        .any(|d| d.code == Code::OrphanIndividual));
    assert_eq!(state.report(&kb), analyze(&mut kb.clone()));

    // Clearing the orphan through another assert re-lints the cone only.
    kb.assert_ind("x", &named(&kb, "PERSON")).unwrap();
    state.mark_dirty(&kb, &BTreeSet::from([id]));
    state.refresh(&mut kb);
    let incr = state.report(&kb);
    assert!(!incr
        .diagnostics
        .iter()
        .any(|d| d.code == Code::OrphanIndividual));
    assert_eq!(incr, analyze(&mut kb.clone()));
}
