//! # classic-analyze
//!
//! A static diagnostic pass over a CLASSIC schema/KB — run *before* data
//! arrives, touching the TBox and rule base but never the ABox.
//!
//! CLASSIC's §5 tractability argument rests on every description having a
//! coherent normal form, yet an unsatisfiable concept (`AT-LEAST 3 r` ∧
//! `AT-MOST 2 r`, an empty `ONE-OF` intersection, disjoint primitives
//! conjoined, a `SAME-AS` forcing conflicting fillers) classifies below
//! everything and only surfaces later as confusing propagation errors at
//! assert time. This crate finds those problems statically:
//!
//! * **incoherence** — defined concepts whose normal form is ⊥, with an
//!   explain-style derivation of *which conjunct* made them so;
//! * **definition cycles** — recursive definitions over named concepts
//!   (forbidden by the paper; the normalizer rejects them at definition
//!   time, this pass re-checks stored schemas defensively);
//! * **rule analysis** — dead rules (antecedent incoherent), shadowed
//!   rules, rules whose consequent the antecedent already entails, and
//!   live rules duplicating a retired one;
//! * **redundancy** — told conjuncts absorbed by a stronger sibling.
//!
//! Diagnostics are structured ([`Diagnostic`]) and surfaced three ways:
//! [`KbAnalyze::analyze`] for embedders, the `lint-kb` surface-language
//! command in `classic-lang`, and the `classic-analyze` CLI binary with
//! `--deny warnings`-style exit codes for CI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checks;

use classic_kb::Kb;
use std::fmt;

/// How serious a diagnostic is. Ordered: `Info < Warning < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Worth knowing; nothing is wrong.
    Info,
    /// Almost certainly not what the schema author meant, but the KB
    /// remains sound.
    Warning,
    /// The schema is broken: some definition can never be satisfied.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Stable diagnostic codes (see DESIGN.md §4.10 for the full table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Code {
    /// `A001`: a defined concept's normal form is ⊥.
    IncoherentConcept,
    /// `A002`: definitions are cyclic (recursive definitions, forbidden).
    DefinitionCycle,
    /// `A003`: a told `ALL` body is ⊥ — the restriction silently collapses
    /// to `AT-MOST 0` instead of restricting anything.
    VacuousRestriction,
    /// `A004`: a rule whose antecedent is incoherent can never fire.
    DeadRule,
    /// `A005`: a rule is shadowed by another live rule that fires at least
    /// as often and concludes at least as much.
    ShadowedRule,
    /// `A006`: a rule's consequent is already entailed by its antecedent.
    EntailedConsequent,
    /// `A007`: a live rule duplicates a *retired* rule (same coverage as a
    /// rule that was previously retracted).
    RetiredTwin,
    /// `A008`: a told conjunct is absorbed by its siblings.
    RedundantConjunct,
}

impl Code {
    /// The stable `A00x` code string.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::IncoherentConcept => "A001",
            Code::DefinitionCycle => "A002",
            Code::VacuousRestriction => "A003",
            Code::DeadRule => "A004",
            Code::ShadowedRule => "A005",
            Code::EntailedConsequent => "A006",
            Code::RetiredTwin => "A007",
            Code::RedundantConjunct => "A008",
        }
    }

    /// A short human slug, e.g. `incoherent-concept`.
    pub fn slug(self) -> &'static str {
        match self {
            Code::IncoherentConcept => "incoherent-concept",
            Code::DefinitionCycle => "definition-cycle",
            Code::VacuousRestriction => "vacuous-restriction",
            Code::DeadRule => "dead-rule",
            Code::ShadowedRule => "shadowed-rule",
            Code::EntailedConsequent => "entailed-consequent",
            Code::RetiredTwin => "retired-twin",
            Code::RedundantConjunct => "redundant-conjunct",
        }
    }

    /// The severity this code is reported at.
    pub fn severity(self) -> Severity {
        match self {
            Code::IncoherentConcept | Code::DefinitionCycle => Severity::Error,
            Code::VacuousRestriction
            | Code::DeadRule
            | Code::ShadowedRule
            | Code::EntailedConsequent
            | Code::RedundantConjunct => Severity::Warning,
            Code::RetiredTwin => Severity::Info,
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// Where in the schema/KB a diagnostic points. There is no source text at
/// this layer — definitions arrive through an API — so spans name schema
/// objects; the surface language prepends script positions when it has
/// them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Span {
    /// A defined concept, by name.
    Concept(String),
    /// A rule, by index and antecedent name.
    Rule {
        /// The rule's index in [`Kb::rules`].
        index: usize,
        /// The antecedent concept's name.
        antecedent: String,
    },
    /// The schema as a whole.
    Schema,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Span::Concept(name) => write!(f, "concept {name}"),
            Span::Rule { index, antecedent } => {
                write!(f, "rule #{index} (on {antecedent})")
            }
            Span::Schema => write!(f, "schema"),
        }
    }
}

/// One structured finding from the analyzer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code (`A001`…), grouping findings of the same kind.
    pub code: Code,
    /// Severity, always `code.severity()`.
    pub severity: Severity,
    /// The schema object the finding points at.
    pub span: Span,
    /// One-line human description.
    pub message: String,
    /// Explain-style derivation of *why* — e.g. which conjunct of a
    /// definition produced the clash, or which sibling rule shadows.
    pub provenance: Vec<String>,
}

impl Diagnostic {
    pub(crate) fn new(code: Code, span: Span, message: String) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.severity(),
            span,
            message,
            provenance: Vec::new(),
        }
    }

    pub(crate) fn with_provenance(mut self, provenance: Vec<String>) -> Diagnostic {
        self.provenance = provenance;
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.code, self.span, self.message
        )?;
        for line in &self.provenance {
            write!(f, "\n  = {line}")?;
        }
        Ok(())
    }
}

/// The result of one analysis pass.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Findings, ordered by span then code.
    pub diagnostics: Vec<Diagnostic>,
    /// How many defined concepts were checked.
    pub concepts_checked: usize,
    /// How many rules (live and retired) were checked.
    pub rules_checked: usize,
}

impl Report {
    /// Number of diagnostics at exactly `sev`.
    pub fn count(&self, sev: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == sev)
            .count()
    }

    /// The most severe finding, if any.
    pub fn worst(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// Does the report pass under a deny threshold? `deny = Error` fails
    /// only on errors; `deny = Warning` fails on warnings too (the CLI's
    /// `--deny warnings`).
    pub fn passes(&self, deny: Severity) -> bool {
        self.worst().is_none_or(|w| w < deny)
    }

    /// Render the full report, one diagnostic per paragraph, with a
    /// closing summary line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} error(s), {} warning(s), {} note(s); {} concept(s), {} rule(s) checked",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info),
            self.concepts_checked,
            self.rules_checked,
        ));
        out
    }
}

/// Run the full static pass over a knowledge base's TBox and rule base.
///
/// Takes `&mut Kb` because deriving provenance re-normalizes told
/// expressions, and normalization may intern symbols; the ABox and the
/// schema's definitions are never modified.
pub fn analyze(kb: &mut Kb) -> Report {
    let mut report = Report::default();
    checks::incoherent_concepts(kb, &mut report);
    checks::definition_cycles(kb, &mut report);
    checks::vacuous_restrictions(kb, &mut report);
    checks::redundant_conjuncts(kb, &mut report);
    checks::rules(kb, &mut report);
    report.diagnostics.sort_by(|a, b| {
        b.severity
            .cmp(&a.severity)
            .then_with(|| a.code.as_str().cmp(b.code.as_str()))
    });
    report
}

/// Extension trait giving embedders `kb.analyze()`.
pub trait KbAnalyze {
    /// Run the static analysis pass ([`analyze`]).
    fn analyze(&mut self) -> Report;
}

impl KbAnalyze for Kb {
    fn analyze(&mut self) -> Report {
        analyze(self)
    }
}
