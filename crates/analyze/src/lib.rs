//! # classic-analyze
//!
//! A diagnostic pass over a CLASSIC schema/KB, in two tiers:
//!
//! **TBox/rule tier** (codes A001–A008) — run *before* data arrives.
//! CLASSIC's §5 tractability argument rests on every description having a
//! coherent normal form, yet an unsatisfiable concept (`AT-LEAST 3 r` ∧
//! `AT-MOST 2 r`, an empty `ONE-OF` intersection, disjoint primitives
//! conjoined, a `SAME-AS` forcing conflicting fillers) classifies below
//! everything and only surfaces later as confusing propagation errors at
//! assert time. This tier finds those statically: incoherent definitions
//! (with an explain-style derivation of *which conjunct*), definition
//! cycles, dead/shadowed/entailed/retired-twin rules, and redundant
//! conjuncts.
//!
//! **ABox tier** (codes A009–A014) — run over the individuals. A
//! committed ABox is coherent by construction, so this tier surfaces what
//! structural reasoning *admits* but authors should know about:
//! obligations running out of `ONE-OF` candidates, roles one filler from
//! their `AT-MOST` bound, `SAME-AS`/`ONE-OF` combinations where the
//! paper's structural subsumption is known-incomplete, rules inert on the
//! current ABox, orphan individuals, and epistemic `CLOSE`s resting on
//! derived fillers.
//!
//! Analysis is **incremental**: [`AnalysisState`] keeps per-entity
//! diagnostic caches and re-lints only the dirty cone of each mutation
//! ([`classic_kb::Kb::analysis_cone`]); [`analyze`] is the same machine
//! primed from empty, which is what keeps the two in exact agreement.
//!
//! Diagnostics are structured ([`Diagnostic`]) and surfaced four ways:
//! [`KbAnalyze::analyze`] for embedders, the `lint-kb` surface-language
//! command in `classic-lang`, the `classic-analyze` CLI binary (text or
//! `--json` lines) with `--deny warnings`-style exit codes for CI, and
//! `classic-server`'s per-tenant `(lint-kb)` / `GET /lint` /
//! lint-on-write surfaces.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod abox;
mod checks;
mod incremental;

pub use incremental::{AnalysisState, Refresh};

use classic_kb::Kb;
use classic_obs::json_string;
use std::fmt;

/// How serious a diagnostic is. Ordered: `Info < Warning < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Worth knowing; nothing is wrong.
    Info,
    /// Almost certainly not what the schema author meant, but the KB
    /// remains sound.
    Warning,
    /// The schema is broken: some definition can never be satisfied.
    Error,
}

impl Severity {
    /// The canonical lowercase name — the single source of truth for how
    /// severities are spelled across the CLI, REPL, and wire surfaces.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }

    /// Parse a `--deny` threshold as the CLI spells it (`warnings`,
    /// `errors`; singular accepted). The inverse of [`Severity::as_str`]
    /// up to pluralization.
    pub fn parse_deny(s: &str) -> Option<Severity> {
        match s {
            "warnings" | "warning" => Some(Severity::Warning),
            "errors" | "error" => Some(Severity::Error),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Stable diagnostic codes (see DESIGN.md §4.10 and §4.15 for the full
/// tables).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Code {
    /// `A001`: a defined concept's normal form is ⊥.
    IncoherentConcept,
    /// `A002`: definitions are cyclic (recursive definitions, forbidden).
    DefinitionCycle,
    /// `A003`: a told `ALL` body is ⊥ — the restriction silently collapses
    /// to `AT-MOST 0` instead of restricting anything.
    VacuousRestriction,
    /// `A004`: a rule whose antecedent is incoherent can never fire.
    DeadRule,
    /// `A005`: a rule is shadowed by another live rule that fires at least
    /// as often and concludes at least as much.
    ShadowedRule,
    /// `A006`: a rule's consequent is already entailed by its antecedent.
    EntailedConsequent,
    /// `A007`: a live rule duplicates a *retired* rule (same coverage as a
    /// rule that was previously retracted).
    RetiredTwin,
    /// `A008`: a told conjunct is absorbed by its siblings.
    RedundantConjunct,
    /// `A009`: an individual's `AT-LEAST` obligation on a `ONE-OF`
    /// restricted role has too few viable candidates left.
    UnsatisfiableObligation,
    /// `A010`: a still-open role is one filler from its `AT-MOST` bound
    /// (the next `FILLS` closes it).
    NearBound,
    /// `A011`: `SAME-AS` meets `ONE-OF` — structural subsumption is
    /// known-incomplete for the combination.
    IncompleteReasoning,
    /// `A012`: a live, satisfiable rule no current individual is
    /// compatible with — inert on this ABox.
    InertRule,
    /// `A013`: an individual with told assertions recognized only under
    /// THING.
    OrphanIndividual,
    /// `A014`: a told `CLOSE` whose closure rests on derived (retractable)
    /// fillers.
    StaleClose,
}

impl Code {
    /// The stable `A0xx` code string.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::IncoherentConcept => "A001",
            Code::DefinitionCycle => "A002",
            Code::VacuousRestriction => "A003",
            Code::DeadRule => "A004",
            Code::ShadowedRule => "A005",
            Code::EntailedConsequent => "A006",
            Code::RetiredTwin => "A007",
            Code::RedundantConjunct => "A008",
            Code::UnsatisfiableObligation => "A009",
            Code::NearBound => "A010",
            Code::IncompleteReasoning => "A011",
            Code::InertRule => "A012",
            Code::OrphanIndividual => "A013",
            Code::StaleClose => "A014",
        }
    }

    /// A short human slug, e.g. `incoherent-concept`.
    pub fn slug(self) -> &'static str {
        match self {
            Code::IncoherentConcept => "incoherent-concept",
            Code::DefinitionCycle => "definition-cycle",
            Code::VacuousRestriction => "vacuous-restriction",
            Code::DeadRule => "dead-rule",
            Code::ShadowedRule => "shadowed-rule",
            Code::EntailedConsequent => "entailed-consequent",
            Code::RetiredTwin => "retired-twin",
            Code::RedundantConjunct => "redundant-conjunct",
            Code::UnsatisfiableObligation => "unsatisfiable-obligation",
            Code::NearBound => "near-bound",
            Code::IncompleteReasoning => "incomplete-reasoning",
            Code::InertRule => "inert-rule",
            Code::OrphanIndividual => "orphan-individual",
            Code::StaleClose => "stale-close",
        }
    }

    /// The severity this code is reported at.
    pub fn severity(self) -> Severity {
        match self {
            Code::IncoherentConcept | Code::DefinitionCycle => Severity::Error,
            Code::VacuousRestriction
            | Code::DeadRule
            | Code::ShadowedRule
            | Code::EntailedConsequent
            | Code::RedundantConjunct
            | Code::UnsatisfiableObligation
            | Code::IncompleteReasoning
            | Code::InertRule
            | Code::StaleClose => Severity::Warning,
            Code::RetiredTwin | Code::NearBound | Code::OrphanIndividual => Severity::Info,
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// Where in the schema/KB a diagnostic points. There is no source text at
/// this layer — definitions arrive through an API — so spans name schema
/// objects; the surface language prepends script positions when it has
/// them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Span {
    /// A defined concept, by name.
    Concept(String),
    /// A rule, by index and antecedent name.
    Rule {
        /// The rule's index in [`Kb::rules`].
        index: usize,
        /// The antecedent concept's name.
        antecedent: String,
    },
    /// An individual, by name.
    Individual(String),
    /// The schema as a whole.
    Schema,
}

impl Span {
    /// Render the span as a JSON object (strict-parser compatible).
    pub fn render_json(&self) -> String {
        match self {
            Span::Concept(name) => {
                format!("{{\"kind\":\"concept\",\"name\":{}}}", json_string(name))
            }
            Span::Rule { index, antecedent } => format!(
                "{{\"kind\":\"rule\",\"index\":{index},\"antecedent\":{}}}",
                json_string(antecedent)
            ),
            Span::Individual(name) => {
                format!("{{\"kind\":\"individual\",\"name\":{}}}", json_string(name))
            }
            Span::Schema => "{\"kind\":\"schema\"}".to_owned(),
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Span::Concept(name) => write!(f, "concept {name}"),
            Span::Rule { index, antecedent } => {
                write!(f, "rule #{index} (on {antecedent})")
            }
            Span::Individual(name) => write!(f, "individual {name}"),
            Span::Schema => write!(f, "schema"),
        }
    }
}

/// One structured finding from the analyzer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code (`A001`…), grouping findings of the same kind.
    pub code: Code,
    /// Severity, always `code.severity()`.
    pub severity: Severity,
    /// The schema object the finding points at.
    pub span: Span,
    /// One-line human description.
    pub message: String,
    /// Explain-style derivation of *why* — e.g. which conjunct of a
    /// definition produced the clash, or which sibling rule shadows.
    pub provenance: Vec<String>,
}

impl Diagnostic {
    pub(crate) fn new(code: Code, span: Span, message: String) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.severity(),
            span,
            message,
            provenance: Vec::new(),
        }
    }

    pub(crate) fn with_provenance(mut self, provenance: Vec<String>) -> Diagnostic {
        self.provenance = provenance;
        self
    }

    /// Render the diagnostic as one JSON object (the CLI's `--json` line
    /// format; parseable by `classic-server`'s strict JSON parser).
    pub fn render_json(&self) -> String {
        let prov: Vec<String> = self.provenance.iter().map(|p| json_string(p)).collect();
        format!(
            "{{\"code\":{},\"slug\":{},\"severity\":{},\"span\":{},\"message\":{},\"provenance\":[{}]}}",
            json_string(self.code.as_str()),
            json_string(self.code.slug()),
            json_string(self.severity.as_str()),
            self.span.render_json(),
            json_string(&self.message),
            prov.join(",")
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.code, self.span, self.message
        )?;
        for line in &self.provenance {
            write!(f, "\n  = {line}")?;
        }
        Ok(())
    }
}

/// The canonical report order: severity descending, then code ascending;
/// the sort is stable, so diagnostics of one code keep entity order.
pub(crate) fn sort_diagnostics(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        b.severity
            .cmp(&a.severity)
            .then_with(|| a.code.as_str().cmp(b.code.as_str()))
    });
}

/// The result of one analysis pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// Findings, ordered by severity then code.
    pub diagnostics: Vec<Diagnostic>,
    /// How many defined concepts were checked.
    pub concepts_checked: usize,
    /// How many rules (live and retired) were checked.
    pub rules_checked: usize,
    /// How many individuals were checked by the ABox tier.
    pub inds_checked: usize,
}

impl Report {
    /// Number of diagnostics at exactly `sev`.
    pub fn count(&self, sev: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == sev)
            .count()
    }

    /// The most severe finding, if any.
    pub fn worst(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// Does the report pass under a deny threshold? `deny = Error` fails
    /// only on errors; `deny = Warning` fails on warnings too (the CLI's
    /// `--deny warnings`). Purely severity-based: an ABox warning (A009+)
    /// fails `--deny warnings` exactly like a TBox warning.
    pub fn passes(&self, deny: Severity) -> bool {
        self.worst().is_none_or(|w| w < deny)
    }

    /// Render the full report, one diagnostic per paragraph, with a
    /// closing summary line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} error(s), {} warning(s), {} note(s); {} concept(s), {} rule(s), {} individual(s) checked",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info),
            self.concepts_checked,
            self.rules_checked,
            self.inds_checked,
        ));
        out
    }

    /// Render the report as machine-readable JSON lines: one diagnostic
    /// object per line (no summary line). Every line parses under the
    /// server's strict JSON parser.
    pub fn render_json_lines(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render_json());
            out.push('\n');
        }
        out
    }
}

/// Run the full analysis pass over a knowledge base — both tiers, from
/// scratch. This is [`AnalysisState`] primed from empty, so the result is
/// definitionally what incremental maintenance converges to.
///
/// Takes `&mut Kb` because deriving provenance re-normalizes told
/// expressions, and normalization may intern symbols; the ABox and the
/// schema's definitions are never modified.
pub fn analyze(kb: &mut Kb) -> Report {
    let mut state = AnalysisState::new();
    state.refresh(kb);
    state.report(kb)
}

/// Extension trait giving embedders `kb.analyze()`.
pub trait KbAnalyze {
    /// Run the full analysis pass ([`analyze`]).
    fn analyze(&mut self) -> Report;
}

impl KbAnalyze for Kb {
    fn analyze(&mut self) -> Report {
        analyze(self)
    }
}
