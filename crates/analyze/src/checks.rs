//! The TBox/rule-base analysis passes, factored *per entity* so the full
//! analyzer and the incremental [`crate::AnalysisState`] run literally the
//! same code — full analysis is "prime an empty state", which is what makes
//! the differential oracle (`analyze_full == analyze_incremental`) hold by
//! construction rather than by parallel maintenance.
//!
//! Each function takes `&mut Kb` when re-normalizing told expressions needs
//! `&mut Schema`; none of them touches the ABox or changes any definition.

use crate::{Code, Diagnostic, Span};
use classic_core::desc::Concept;
use classic_core::subsume::{equivalent, subsumes};
use classic_core::symbol::{ConceptName, RoleId};
use classic_core::NormalForm;
use classic_kb::Kb;
use std::collections::HashMap;

/// A001 + A003 + A008: everything the analyzer has to say about one
/// defined concept. Definitions are immutable once accepted, so the
/// result can be cached for the concept's lifetime.
///
/// * **A001 incoherent-concept** — the normal form is ⊥. Provenance
///   replays the definition's told conjuncts as *prefixes*, re-normalizing
///   `(AND c1 … ck)` from scratch for growing `k` until the prefix first
///   turns incoherent. Replaying from scratch (rather than conjoining
///   incrementally) matters: `CLOSE`/`FILLS` are contextual, so an
///   incremental replay can clash where single-pass normalization does
///   not, which would misattribute the culprit conjunct.
/// * **A003 vacuous-restriction** — a told `(ALL r body)` whose body is ⊥.
///   The normal form silently folds this to `(AT-MOST 0 r)`: a legal
///   description, but almost never what the author meant.
/// * **A008 redundant-conjunct** — a told conjunct entailed by its
///   siblings: re-normalizing the definition without it yields an
///   equivalent normal form.
pub(crate) fn concept_diagnostics(kb: &mut Kb, name: ConceptName) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let (nf, told) = {
        let s = kb.schema();
        let Ok(nf) = s.concept_nf(name) else {
            return out;
        };
        let Ok(told) = s.concept_told(name) else {
            return out;
        };
        (nf.clone(), told.clone())
    };
    let cname = kb.schema().symbols.concept_name(name).to_owned();

    if nf.is_incoherent() {
        let mut prov = vec![format!(
            "normal form is ⊥: {}",
            nf.clash().expect("incoherent form carries a clash")
        )];
        if let Concept::And(parts) = &told {
            for k in 0..parts.len() {
                let prefix = Concept::And(parts[..=k].to_vec());
                let Ok(pnf) = kb.normalize(&prefix) else {
                    break;
                };
                if !pnf.is_incoherent() {
                    continue;
                }
                let sym = &kb.schema().symbols;
                if k == 0 {
                    prov.push(format!(
                        "the first conjunct {} is itself incoherent",
                        parts[0].display(sym)
                    ));
                } else {
                    prov.push(format!(
                        "conjuncts 1..{} are coherent; adding conjunct {} {} produces the clash",
                        k,
                        k + 1,
                        parts[k].display(sym)
                    ));
                }
                break;
            }
        }
        out.push(
            Diagnostic::new(
                Code::IncoherentConcept,
                Span::Concept(cname.clone()),
                format!("definition of {cname} is unsatisfiable — no individual can ever be an instance"),
            )
            .with_provenance(prov),
        );
        // An incoherent definition is already an A001; piling on A003/A008
        // for its sub-bodies would be noise.
        return out;
    }

    // A003: vacuous value restrictions.
    let mut alls = Vec::new();
    collect_alls(&told, &mut alls);
    for (role, body) in alls {
        let Ok(bnf) = kb.normalize(&body) else {
            continue;
        };
        if !bnf.is_incoherent() {
            continue;
        }
        let sym = &kb.schema().symbols;
        let rname = sym.role_name(role).to_owned();
        out.push(
            Diagnostic::new(
                Code::VacuousRestriction,
                Span::Concept(cname.clone()),
                format!(
                    "(ALL {rname} …) has an unsatisfiable body — it collapses to (AT-MOST 0 {rname})"
                ),
            )
            .with_provenance(vec![
                format!("body: {}", body.display(sym)),
                format!(
                    "body clash: {}",
                    bnf.clash().expect("incoherent form carries a clash")
                ),
            ]),
        );
    }

    // A008: redundant conjuncts.
    if let Concept::And(parts) = &told {
        if parts.len() >= 2 {
            for i in 0..parts.len() {
                let rest: Vec<Concept> = parts
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, p)| p.clone())
                    .collect();
                let Ok(rnf) = kb.normalize(&Concept::And(rest)) else {
                    continue;
                };
                if !equivalent(&rnf, &nf) {
                    continue;
                }
                let sym = &kb.schema().symbols;
                out.push(
                    Diagnostic::new(
                        Code::RedundantConjunct,
                        Span::Concept(cname.clone()),
                        format!(
                            "conjunct {} of {} is redundant — the remaining conjuncts already entail it",
                            i + 1,
                            parts.len()
                        ),
                    )
                    .with_provenance(vec![format!(
                        "redundant conjunct: {}",
                        parts[i].display(sym)
                    )]),
                );
            }
        }
    }
    out
}

/// A002: cycles in the told reference graph over defined concepts.
///
/// `define-concept` already makes these unreachable (forward references
/// and self-reference are rejected, redefinition is rejected), so this is
/// a defensive re-check of the *stored* schema: if an embedder ever
/// constructs one by other means, analysis reports it rather than
/// trusting the invariant.
pub(crate) fn definition_cycles(kb: &Kb) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let schema = kb.schema();
    let names: Vec<ConceptName> = schema.defined_concepts().collect();
    let mut graph: HashMap<ConceptName, Vec<ConceptName>> = HashMap::new();
    for &n in &names {
        let Ok(told) = schema.concept_told(n) else {
            continue;
        };
        let mut refs = Vec::new();
        told.referenced_names(&mut refs);
        refs.retain(|r| schema.is_defined(*r));
        refs.dedup();
        graph.insert(n, refs);
    }

    // Three-color DFS; `path` reconstructs the cycle for provenance.
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let mut color: HashMap<ConceptName, Color> = names.iter().map(|&n| (n, Color::White)).collect();
    for &start in &names {
        if color[&start] != Color::White {
            continue;
        }
        // Explicit stack of (node, next-child-index); the gray entries on
        // the stack are the current path, used to reconstruct cycles.
        let mut stack: Vec<(ConceptName, usize)> = vec![(start, 0)];
        color.insert(start, Color::Gray);
        while let Some(top) = stack.len().checked_sub(1) {
            let (node, next) = stack[top];
            let children = &graph[&node];
            if next < children.len() {
                stack[top].1 += 1;
                let child = children[next];
                match color[&child] {
                    Color::White => {
                        color.insert(child, Color::Gray);
                        stack.push((child, 0));
                    }
                    Color::Gray => {
                        // Found a cycle: the gray path from `child` to `node`.
                        let pos = stack.iter().position(|&(n, _)| n == child).unwrap_or(0);
                        let sym = &schema.symbols;
                        let mut chain: Vec<String> = stack[pos..]
                            .iter()
                            .map(|&(n, _)| sym.concept_name(n).to_owned())
                            .collect();
                        chain.push(sym.concept_name(child).to_owned());
                        let head = chain[0].clone();
                        out.push(
                            Diagnostic::new(
                                Code::DefinitionCycle,
                                Span::Concept(head.clone()),
                                format!(
                                    "definition of {head} is cyclic — recursive definitions are forbidden (§2.2)"
                                ),
                            )
                            .with_provenance(vec![format!("cycle: {}", chain.join(" → "))]),
                        );
                    }
                    Color::Black => {}
                }
            } else {
                color.insert(node, Color::Black);
                stack.pop();
            }
        }
    }
    out
}

/// Collect every `(ALL r body)` anywhere inside a told expression.
fn collect_alls(c: &Concept, out: &mut Vec<(RoleId, Concept)>) {
    match c {
        Concept::All(r, body) => {
            out.push((*r, (**body).clone()));
            collect_alls(body, out);
        }
        Concept::And(parts) => {
            for p in parts {
                collect_alls(p, out);
            }
        }
        Concept::Primitive { parent, .. } | Concept::DisjointPrimitive { parent, .. } => {
            collect_alls(parent, out);
        }
        _ => {}
    }
}

/// Everything the rule passes need to know about one rule, normalized
/// once. Rules are append-only (retraction retires in place), so a
/// snapshot stays valid until the rule base's retired-flag signature
/// changes.
pub(crate) struct RuleInfo {
    pub(crate) index: usize,
    pub(crate) aname: String,
    pub(crate) consequent: Concept,
    pub(crate) retired: bool,
    /// `(antecedent NF, consequent NF)`; `None` if either failed to
    /// normalize.
    pub(crate) nf: Option<(NormalForm, NormalForm)>,
}

/// Snapshot and pre-normalize the whole rule base (antecedent NF from the
/// schema, consequent NF by normalizing the told consequent).
pub(crate) fn rule_infos(kb: &mut Kb) -> Vec<RuleInfo> {
    let raw: Vec<(String, Concept, bool, ConceptName)> = kb
        .rules()
        .iter()
        .map(|r| {
            (
                kb.schema().symbols.concept_name(r.antecedent).to_owned(),
                r.consequent.clone(),
                r.retired,
                r.antecedent,
            )
        })
        .collect();
    raw.into_iter()
        .enumerate()
        .map(|(index, (aname, consequent, retired, antecedent))| {
            let nf = (|| {
                let ant = kb.schema().concept_nf(antecedent).ok().cloned()?;
                let cons = kb.normalize(&consequent).ok()?;
                Some((ant, cons))
            })();
            RuleInfo {
                index,
                aname,
                consequent,
                retired,
                nf,
            }
        })
        .collect()
}

/// A004/A005/A006/A007: the per-rule analysis of rule `i` against its
/// siblings. (A012, the per-rule *ABox* check, is generated separately
/// from maintained compatibility counts — see
/// [`inert_rule_diagnostic`].)
///
/// * **A004 dead-rule** — the antecedent is ⊥, so the trigger never fires.
/// * **A006 entailed-consequent** — the antecedent already entails the
///   consequent, so firing changes nothing.
/// * **A005 shadowed-rule** — some other live rule fires at least as often
///   (its antecedent subsumes this one's) and concludes at least as much
///   (its consequent is subsumed by this one's). On exact ties the
///   later-indexed rule is the one flagged.
/// * **A007 retired-twin** — a live rule whose coverage duplicates a
///   *retired* rule: it re-introduces conclusions that were deliberately
///   retracted, which is worth knowing but not necessarily wrong.
pub(crate) fn rule_diagnostics(kb: &Kb, i: usize, infos: &[RuleInfo]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let info = &infos[i];
    if info.retired {
        return out;
    }
    let Some((ant, cons)) = &info.nf else {
        return out;
    };
    let span = Span::Rule {
        index: info.index,
        antecedent: info.aname.clone(),
    };

    if ant.is_incoherent() {
        out.push(
            Diagnostic::new(
                Code::DeadRule,
                span,
                format!(
                    "antecedent {} is unsatisfiable — the rule can never fire",
                    info.aname
                ),
            )
            .with_provenance(vec![format!(
                "antecedent clash: {}",
                ant.clash().expect("incoherent form carries a clash")
            )]),
        );
        return out;
    }

    if subsumes(cons, ant) {
        out.push(
            Diagnostic::new(
                Code::EntailedConsequent,
                span.clone(),
                format!(
                    "every {} is already an instance of the consequent — firing adds nothing",
                    info.aname
                ),
            )
            .with_provenance(vec![format!(
                "consequent: {}",
                info.consequent.display(&kb.schema().symbols)
            )]),
        );
    }

    // A005: shadowed by a live sibling.
    for (j, other) in infos.iter().enumerate() {
        if j == i || other.retired {
            continue;
        }
        let Some((ant_j, cons_j)) = &other.nf else {
            continue;
        };
        if ant_j.is_incoherent() {
            continue;
        }
        let j_covers_i = subsumes(ant_j, ant) && subsumes(cons, cons_j);
        let i_covers_j = subsumes(ant, ant_j) && subsumes(cons_j, cons);
        if j_covers_i && (!i_covers_j || j < i) {
            out.push(
                Diagnostic::new(
                    Code::ShadowedRule,
                    span.clone(),
                    format!(
                        "shadowed by rule #{} (on {}) — that rule fires at least as often and concludes at least as much",
                        other.index, other.aname
                    ),
                )
                .with_provenance(vec![format!(
                    "this rule's consequent: {}",
                    info.consequent.display(&kb.schema().symbols)
                )]),
            );
            break;
        }
    }

    // A007: coverage duplicated by a retired rule.
    for other in infos.iter() {
        if !other.retired {
            continue;
        }
        let Some((ant_k, cons_k)) = &other.nf else {
            continue;
        };
        if ant_k.is_incoherent() {
            continue;
        }
        if subsumes(ant_k, ant) && subsumes(cons, cons_k) {
            out.push(Diagnostic::new(
                Code::RetiredTwin,
                span.clone(),
                format!(
                    "duplicates retired rule #{} (on {}) — it re-introduces retracted conclusions",
                    other.index, other.aname
                ),
            ));
            break;
        }
    }
    out
}

/// A012 inert-rule: a live, satisfiable rule that cannot fire on the
/// *current* ABox — every existing individual's derived description
/// clashes with the antecedent. Generated from the maintained per-rule
/// compatibility count (`compat`, the number of individuals compatible
/// with the antecedent), so the incremental analyzer re-renders it in
/// O(rules) without re-scanning the ABox.
pub(crate) fn inert_rule_diagnostic(
    info: &RuleInfo,
    ind_count: usize,
    compat: usize,
) -> Option<Diagnostic> {
    if info.retired || ind_count == 0 || compat > 0 {
        return None;
    }
    let (ant, _) = info.nf.as_ref()?;
    if ant.is_incoherent() {
        return None; // already an A004 dead-rule
    }
    Some(
        Diagnostic::new(
            Code::InertRule,
            Span::Rule {
                index: info.index,
                antecedent: info.aname.clone(),
            },
            format!(
                "no current individual is compatible with {} — the rule cannot fire on this ABox",
                info.aname
            ),
        )
        .with_provenance(vec![format!(
            "{ind_count} individual(s) checked; every derived description clashes with the antecedent"
        )]),
    )
}
