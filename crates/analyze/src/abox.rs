//! The ABox analysis pass: per-individual diagnostics A009–A011 and
//! A013/A014, plus the per-individual half of A012 (rule compatibility).
//!
//! Everything here is *advisory*: a committed KB is coherent by
//! construction (integrity checking rejects clashing updates), so the
//! ABox tier does not hunt for contradictions — it surfaces states the
//! structural reasoner admits but a schema author should know about:
//! obligations that are running out of room, bounds one update from
//! closing, combinations the paper's structural subsumption is known to
//! under-report, individuals the schema says nothing about, and epistemic
//! closures resting on derived (retractable) information.
//!
//! Each check reads only the individual's own committed state plus — for
//! A009 — the derived state of the `ONE-OF` pool candidates it *consults*.
//! The consulted set is returned alongside the diagnostics so the
//! incremental analyzer can re-lint a host when a candidate changes.

use crate::checks::RuleInfo;
use crate::{Code, Diagnostic, Span};
use classic_core::desc::{Concept, IndRef};
use classic_core::symbol::RoleId;
use classic_kb::{IndId, Kb};
use std::collections::BTreeSet;

fn ind_ref_str(kb: &Kb, r: &IndRef) -> String {
    match r {
        IndRef::Classic(n) => kb.schema().symbols.individual_name(*n).to_owned(),
        IndRef::Host(v) => v.to_string(),
    }
}

/// Collect the roles a told expression closes, and the told fillers per
/// role, walking through `AND` and primitive wrappers.
fn collect_told_role_facts(
    c: &Concept,
    closes: &mut BTreeSet<RoleId>,
    fills: &mut Vec<(RoleId, IndRef)>,
) {
    match c {
        Concept::Close(r) => {
            closes.insert(*r);
        }
        Concept::Fills(r, refs) => {
            for f in refs {
                fills.push((*r, f.clone()));
            }
        }
        Concept::And(parts) => {
            for p in parts {
                collect_told_role_facts(p, closes, fills);
            }
        }
        Concept::Primitive { parent, .. } | Concept::DisjointPrimitive { parent, .. } => {
            collect_told_role_facts(parent, closes, fills);
        }
        _ => {}
    }
}

/// Run every per-individual check on `id`. Returns the diagnostics in
/// canonical order (A009 per role, A010 per role, A011, A013, A014 per
/// role) plus the set of other individuals whose derived state the A009
/// viability test consulted.
pub(crate) fn abox_diagnostics(kb: &Kb, id: IndId) -> (Vec<Diagnostic>, BTreeSet<IndId>) {
    let mut out = Vec::new();
    let mut consulted = BTreeSet::new();
    let ind = kb.ind(id);
    let name = kb.schema().symbols.individual_name(ind.name).to_owned();
    let span = || Span::Individual(name.clone());

    // A009: unsatisfiable pending obligations. A role with an AT-LEAST
    // (or FILLS-implied) lower bound whose value restriction enumerates a
    // ONE-OF pool needs `min_count` fillers drawn from that pool; if too
    // few pool members remain compatible with the restriction, the
    // obligation can never be met. Open-world care: unresolved names and
    // host values count as viable.
    for (&role, rr) in &ind.derived.roles {
        let need = rr.min_count() as usize;
        if need == 0 {
            continue;
        }
        let Some(body) = rr.all.as_deref() else {
            continue;
        };
        let Some(pool) = &body.one_of else {
            continue;
        };
        let mut viable = 0usize;
        let mut blocked: Vec<String> = Vec::new();
        for m in pool {
            if rr.fillers.contains(m) {
                viable += 1; // already a filler — compatible by commit-time integrity
                continue;
            }
            let IndRef::Classic(n) = m else {
                viable += 1; // host value: satisfies the body or not, never "used up"
                continue;
            };
            let Ok(fid) = kb.ind_id(*n) else {
                viable += 1; // not yet created — open world, still satisfiable
                continue;
            };
            consulted.insert(fid);
            let mut trial = kb.ind(fid).derived.clone();
            trial.conjoin(body, kb.schema());
            if trial.is_incoherent() {
                blocked.push(format!(
                    "candidate {} is incompatible: {}",
                    ind_ref_str(kb, m),
                    trial.clash().expect("incoherent form carries a clash")
                ));
            } else {
                viable += 1;
            }
        }
        if viable < need {
            let sym = &kb.schema().symbols;
            let rname = sym.role_name(role).to_owned();
            let mut prov = vec![format!("value restriction: {}", body.display(sym))];
            prov.extend(blocked);
            out.push(
                Diagnostic::new(
                    Code::UnsatisfiableObligation,
                    span(),
                    format!(
                        "role {rname}: only {viable} of {} ONE-OF candidate(s) remain viable \
                         for an AT-LEAST {need} obligation",
                        pool.len()
                    ),
                )
                .with_provenance(prov),
            );
        }
    }

    // A010: AT-MOST/FILLS near-violation — a bounded, still-open role one
    // filler away from its AT-MOST, at which point the paper's §3.3
    // deduction closes it. Roles with no fillers yet are skipped (every
    // bare attribute would otherwise warn).
    for (&role, rr) in &ind.derived.roles {
        let Some(m) = rr.at_most else { continue };
        if rr.closed || rr.fillers.is_empty() {
            continue;
        }
        if rr.fillers.len() as u32 + 1 == m {
            let sym = &kb.schema().symbols;
            let rname = sym.role_name(role).to_owned();
            let known: Vec<String> = rr.fillers.iter().map(|f| ind_ref_str(kb, f)).collect();
            out.push(
                Diagnostic::new(
                    Code::NearBound,
                    span(),
                    format!(
                        "role {rname} holds {} of at most {m} filler(s) — one more FILLS \
                         reaches the bound and closes the role",
                        rr.fillers.len()
                    ),
                )
                .with_provenance(vec![format!("known fillers: {}", known.join(", "))]),
            );
        }
    }

    // A011: SAME-AS co-references meeting a ONE-OF enumeration — the
    // combination for which structural subsumption is known-incomplete
    // (Borgida & Patel-Schneider's completeness analysis, PAPERS.md #1):
    // consequences may silently go underived.
    if !ind.derived.same_as.is_empty() {
        let mut one_of_met = ind.derived.one_of.is_some();
        if !one_of_met {
            'paths: for path in ind.derived.same_as.all_paths() {
                let mut cur = ind.derived.clone();
                for &role in &path {
                    let vr = cur.value_restriction(role);
                    if vr.one_of.is_some() {
                        one_of_met = true;
                        break 'paths;
                    }
                    cur = vr;
                }
            }
        }
        if one_of_met {
            let sym = &kb.schema().symbols;
            out.push(
                Diagnostic::new(
                    Code::IncompleteReasoning,
                    span(),
                    "SAME-AS co-references meet a ONE-OF enumeration — structural completion \
                     is known-incomplete for this combination"
                        .to_owned(),
                )
                .with_provenance(vec![
                    format!("same-as: {}", ind.derived.same_as.display(sym)),
                    "consequences of identifying enumerated individuals may go underived"
                        .to_owned(),
                ]),
            );
        }
    }

    // A013: orphan individual — told something, yet recognized under no
    // defined concept (its most-specific classification is THING itself).
    if !ind.told.is_empty()
        && ind
            .msc
            .iter()
            .all(|&n| n == classic_core::taxonomy::NodeId::TOP)
    {
        out.push(
            Diagnostic::new(
                Code::OrphanIndividual,
                span(),
                "recognized only under THING — no defined concept describes this individual"
                    .to_owned(),
            )
            .with_provenance(vec![format!(
                "{} told assertion(s) never lifted it below THING",
                ind.told.len()
            )]),
        );
    }

    // A014: stale CLOSE — a role the user closed epistemically, whose
    // closure also rests on *derived* fillers (propagation, SAME-AS, rule
    // firings). Retracting the source of a derived filler reopens or
    // shifts the bound, so the told CLOSE means less than it reads.
    let mut closes = BTreeSet::new();
    let mut told_fills = Vec::new();
    for t in &ind.told {
        collect_told_role_facts(t, &mut closes, &mut told_fills);
    }
    for role in closes {
        let Some(rr) = ind.derived.roles.get(&role) else {
            continue;
        };
        if !rr.closed {
            continue;
        }
        let told_set: BTreeSet<&IndRef> = told_fills
            .iter()
            .filter(|(r, _)| *r == role)
            .map(|(_, f)| f)
            .collect();
        let extra: Vec<String> = rr
            .fillers
            .iter()
            .filter(|f| !told_set.contains(f))
            .map(|f| ind_ref_str(kb, f))
            .collect();
        if extra.is_empty() {
            continue;
        }
        let sym = &kb.schema().symbols;
        let rname = sym.role_name(role).to_owned();
        out.push(
            Diagnostic::new(
                Code::StaleClose,
                span(),
                format!(
                    "(CLOSE {rname}) captured {} derived filler(s) beyond the told FILLS — \
                     the closure rests on retractable derivations",
                    extra.len()
                ),
            )
            .with_provenance(vec![
                format!("derived filler(s): {}", extra.join(", ")),
                "these arrived via propagation (ALL / SAME-AS / rule support), not told FILLS"
                    .to_owned(),
            ]),
        );
    }

    (out, consulted)
}

/// The rule indices whose antecedent this individual is compatible with —
/// the per-individual half of A012. A rule that already fired here is
/// compatible by definition; otherwise the individual is compatible iff
/// conjoining the antecedent into its derived description stays coherent.
pub(crate) fn compat_rules(kb: &Kb, id: IndId, infos: &[RuleInfo]) -> BTreeSet<usize> {
    let ind = kb.ind(id);
    let mut out = BTreeSet::new();
    for info in infos {
        if info.retired {
            continue;
        }
        let Some((ant, _)) = &info.nf else { continue };
        if ant.is_incoherent() {
            continue;
        }
        if ind.fired_rules.contains(&info.index) {
            out.insert(info.index);
            continue;
        }
        let mut trial = ind.derived.clone();
        trial.conjoin(ant, kb.schema());
        if !trial.is_incoherent() {
            out.insert(info.index);
        }
    }
    out
}
