//! The persistent, incrementally-maintained analysis state.
//!
//! [`AnalysisState`] caches diagnostics *per entity* (per defined
//! concept, per rule, per individual) together with the bookkeeping
//! needed to know which caches a mutation invalidated:
//!
//! * **concepts** — definitions are immutable once accepted, so a
//!   concept's diagnostics are computed once and kept forever; new
//!   definitions are detected by cache miss.
//! * **rules** — append-only with in-place retirement; a change to the
//!   `(len, retired-flags)` signature recomputes the rule tier *and*
//!   marks every individual dirty (rule assertion/retraction re-derives
//!   instances).
//! * **individuals** — the expensive tier. A mutation's caller marks the
//!   dirty cone ([`Kb::analysis_cone`] over the mutation seeds); refresh
//!   fingerprints the cone, re-lints only the members whose committed
//!   state actually changed (plus any A009 *hosts* that consulted a
//!   changed candidate), and maintains per-rule compatibility counts so
//!   A012 re-renders in O(rules) without an ABox scan.
//!
//! The full analyzer is the same machine primed from empty
//! ([`crate::analyze`] constructs a fresh state and refreshes it), so
//! "incremental equals full" is a property of the *dirtiness
//! bookkeeping*, which is exactly what the proptest differential oracle
//! exercises.

use crate::{abox, checks, Diagnostic, Report};
use classic_core::symbol::ConceptName;
use classic_kb::{IndId, Kb};
use std::collections::{BTreeSet, HashMap};
use std::hash::{Hash, Hasher};

/// What one [`AnalysisState::refresh`] did, for lint-on-write replies and
/// the E16 experiment.
#[derive(Debug, Clone, Default)]
pub struct Refresh {
    /// Individuals in the marked dirty cone (before fingerprint pruning).
    pub cone_size: usize,
    /// Individuals actually re-linted (changed fingerprints plus consulted
    /// hosts).
    pub relinted: usize,
    /// Diagnostics now attached to the entities this refresh re-checked,
    /// in report order. Empty when nothing in the cone produced findings.
    pub cone: Vec<Diagnostic>,
}

/// Persistent per-entity diagnostic caches plus dirtiness bookkeeping.
/// See the module docs for the invalidation model.
#[derive(Default)]
pub struct AnalysisState {
    concept_cache: HashMap<ConceptName, Vec<Diagnostic>>,
    cycle_diags: Vec<Diagnostic>,
    seen_concepts: usize,
    /// Retired-flag signature of the rule base at the last refresh.
    rule_sig: Vec<bool>,
    rule_infos: Vec<checks::RuleInfo>,
    rule_diags: Vec<Vec<Diagnostic>>,
    /// Per-rule A012, regenerated from `compat_count` each refresh.
    inert: Vec<Option<Diagnostic>>,
    /// Per-rule count of individuals compatible with the antecedent.
    compat_count: Vec<usize>,
    ind_diags: HashMap<IndId, Vec<Diagnostic>>,
    fingerprints: HashMap<IndId, u64>,
    /// host → candidates its A009 check consulted (for edge cleanup).
    consults: HashMap<IndId, BTreeSet<IndId>>,
    /// candidate → hosts that consulted it (re-lint them when it changes).
    consulted_by: HashMap<IndId, BTreeSet<IndId>>,
    /// individual → rule indices it is compatible with.
    compat: HashMap<IndId, BTreeSet<usize>>,
    seen_inds: usize,
    dirty_inds: BTreeSet<IndId>,
    all_dirty: bool,
}

/// Committed-state fingerprint of one individual: everything the ABox
/// checks read from it. `DefaultHasher` is keyed with fixed constants, so
/// fingerprints are stable across calls within a process (they are never
/// persisted).
fn fingerprint(kb: &Kb, id: IndId) -> u64 {
    let ind = kb.ind(id);
    let mut h = std::collections::hash_map::DefaultHasher::new();
    ind.derived.hash(&mut h);
    ind.told.hash(&mut h);
    for n in &ind.msc {
        n.hash(&mut h);
    }
    for r in &ind.fired_rules {
        r.hash(&mut h);
    }
    let mut supports: Vec<_> = kb.deps().supports_of(id).collect();
    supports.sort();
    supports.hash(&mut h);
    h.finish()
}

impl AnalysisState {
    /// An empty state: the first refresh analyzes everything.
    pub fn new() -> AnalysisState {
        AnalysisState::default()
    }

    /// Mark the analysis cone of `seeds` dirty — call with the mutation's
    /// seed individuals (the asserted/retracted individual) against the
    /// KB state that still contains the relevant dependency edges (post-op
    /// for assertions, pre-op for retractions).
    pub fn mark_dirty(&mut self, kb: &Kb, seeds: &BTreeSet<IndId>) {
        let cone = kb.analysis_cone(seeds);
        // Attaches to the enclosing request span (if any), so slowlog
        // entries for mutations can report how much they dirtied.
        classic_obs::event("dirty_cone", cone.len() as u64);
        self.dirty_inds.extend(cone);
    }

    /// Mark everything dirty (schema edited out-of-band, state of unknown
    /// provenance). The next refresh is a full re-analysis.
    pub fn mark_all(&mut self) {
        self.all_dirty = true;
    }

    /// Bring every cache up to date with `kb`, re-checking only dirty
    /// entities, and report what was done. New concepts, rule-base
    /// changes, and new individuals are detected without marking; told
    /// assert/retract cones must have been marked via
    /// [`Self::mark_dirty`].
    pub fn refresh(&mut self, kb: &mut Kb) -> Refresh {
        let registry = kb.metrics().clone();
        let recorder = kb.flight_recorder().clone();
        let dur = registry
            .get_or_duration_histogram(
                "classic_analyze_incremental_ns",
                "Incremental re-analysis latency per refresh",
            )
            .ok();
        let _span = dur
            .as_ref()
            .map(|h| classic_obs::span_timed(&recorder, "analyze.incremental", h));

        let mut cone_out: Vec<Diagnostic> = Vec::new();

        // ---- concepts (immutable definitions: cache misses only) ----
        if self.all_dirty {
            self.concept_cache.clear();
        }
        let defined: Vec<ConceptName> = kb.schema().defined_concepts().collect();
        let mut new_concepts = false;
        for &name in &defined {
            if let std::collections::hash_map::Entry::Vacant(slot) = self.concept_cache.entry(name)
            {
                let diags = checks::concept_diagnostics(kb, name);
                cone_out.extend(diags.iter().cloned());
                slot.insert(diags);
                new_concepts = true;
            }
        }
        if new_concepts || defined.len() != self.seen_concepts {
            self.cycle_diags = checks::definition_cycles(kb);
        }
        self.seen_concepts = defined.len();

        // ---- rules (signature change recomputes the tier) ----
        let sig: Vec<bool> = kb.rules().iter().map(|r| r.retired).collect();
        let rules_dirty = self.all_dirty || sig != self.rule_sig;
        if rules_dirty {
            self.rule_sig = sig;
            self.rule_infos = checks::rule_infos(kb);
            self.rule_diags = (0..self.rule_infos.len())
                .map(|i| checks::rule_diagnostics(kb, i, &self.rule_infos))
                .collect();
            cone_out.extend(self.rule_diags.iter().flatten().cloned());
            self.compat.clear();
            self.compat_count = vec![0; self.rule_infos.len()];
        }

        // ---- individuals ----
        // A new definition recognizes existing individuals (their msc — and
        // via rule firings, their derived state — can change), so new
        // concepts re-fingerprint the whole ABox like a rule-base change;
        // Phase A prunes the members that did not actually move.
        let ind_count = kb.ind_count();
        let all_inds = self.all_dirty || rules_dirty || new_concepts;
        let mut marked: BTreeSet<IndId> = if all_inds {
            self.dirty_inds.clear();
            kb.ind_ids().collect()
        } else {
            std::mem::take(&mut self.dirty_inds)
        };
        for ix in self.seen_inds..ind_count {
            marked.insert(IndId::from_index(ix));
        }
        marked.retain(|id| id.index() < ind_count);
        self.seen_inds = ind_count;
        let cone_size = marked.len();

        // Phase A: fingerprint the cone; only genuinely-changed members
        // (and brand-new ones) proceed.
        let mut changed: Vec<IndId> = Vec::new();
        for &id in &marked {
            let fp = fingerprint(kb, id);
            if self.fingerprints.get(&id) != Some(&fp) {
                self.fingerprints.insert(id, fp);
                changed.push(id);
            }
        }
        // Phase B: a changed candidate invalidates the A009 verdicts of
        // every host that consulted it, even hosts outside the cone.
        let mut recheck: BTreeSet<IndId> = changed.iter().copied().collect();
        for &c in &changed {
            if let Some(hosts) = self.consulted_by.get(&c) {
                recheck.extend(hosts.iter().copied());
            }
        }
        recheck.retain(|id| id.index() < ind_count);

        for &id in &recheck {
            let (diags, consulted) = abox::abox_diagnostics(kb, id);
            cone_out.extend(diags.iter().cloned());
            if let Some(old) = self.consults.get(&id) {
                for c in old {
                    if let Some(hosts) = self.consulted_by.get_mut(c) {
                        hosts.remove(&id);
                    }
                }
            }
            for &c in &consulted {
                self.consulted_by.entry(c).or_default().insert(id);
            }
            if consulted.is_empty() {
                self.consults.remove(&id);
            } else {
                self.consults.insert(id, consulted);
            }
            self.ind_diags.insert(id, diags);

            let new_compat = abox::compat_rules(kb, id, &self.rule_infos);
            let old_compat = self.compat.get(&id).cloned().unwrap_or_default();
            for &r in old_compat.difference(&new_compat) {
                self.compat_count[r] -= 1;
            }
            for &r in new_compat.difference(&old_compat) {
                self.compat_count[r] += 1;
            }
            if new_compat.is_empty() {
                self.compat.remove(&id);
            } else {
                self.compat.insert(id, new_compat);
            }
        }
        let relinted = recheck.len();

        // A rule-tier rebuild cleared every compat entry, but Phase A
        // pruning keeps unchanged individuals out of `recheck` — their
        // diagnostics are still valid, their compat sets are not. Rebuild
        // just the compatibility half for the pruned members.
        if rules_dirty {
            for &id in &marked {
                if id.index() >= ind_count || recheck.contains(&id) {
                    continue;
                }
                let new_compat = abox::compat_rules(kb, id, &self.rule_infos);
                for &r in &new_compat {
                    self.compat_count[r] += 1;
                }
                if !new_compat.is_empty() {
                    self.compat.insert(id, new_compat);
                }
            }
        }

        // ---- A012 re-render from maintained counts ----
        let inert_new: Vec<Option<Diagnostic>> = self
            .rule_infos
            .iter()
            .enumerate()
            .map(|(i, info)| checks::inert_rule_diagnostic(info, ind_count, self.compat_count[i]))
            .collect();
        for (i, d) in inert_new.iter().enumerate() {
            let changed = rules_dirty || self.inert.get(i) != Some(d);
            if changed {
                if let Some(d) = d {
                    cone_out.push(d.clone());
                }
            }
        }
        self.inert = inert_new;
        self.all_dirty = false;

        crate::sort_diagnostics(&mut cone_out);
        self.record_metrics(&registry, cone_size, &cone_out);
        Refresh {
            cone_size,
            relinted,
            cone: cone_out,
        }
    }

    fn record_metrics(
        &self,
        registry: &classic_obs::Registry,
        cone_size: usize,
        cone: &[Diagnostic],
    ) {
        if let Ok(h) = registry.get_or_histogram(
            "classic_analyze_cone_size",
            "Individuals in the dirty cone per incremental refresh",
        ) {
            h.record(cone_size as u64);
        }
        for d in cone {
            let name = format!(
                "classic_analyze_diag_{}_total",
                d.code.as_str().to_ascii_lowercase()
            );
            if let Ok(c) = registry.get_or_counter(&name, "Diagnostics emitted by re-analysis") {
                c.bump();
            }
        }
    }

    /// Assemble the full [`Report`] from the caches. Call after
    /// [`Self::refresh`]; the result equals what a from-scratch
    /// [`crate::analyze`] would produce on the same KB.
    pub fn report(&self, kb: &Kb) -> Report {
        let mut diagnostics: Vec<Diagnostic> = Vec::new();
        for name in kb.schema().defined_concepts() {
            if let Some(d) = self.concept_cache.get(&name) {
                diagnostics.extend(d.iter().cloned());
            }
        }
        diagnostics.extend(self.cycle_diags.iter().cloned());
        for (i, d) in self.rule_diags.iter().enumerate() {
            diagnostics.extend(d.iter().cloned());
            if let Some(Some(inert)) = self.inert.get(i).map(Option::as_ref) {
                diagnostics.push(inert.clone());
            }
        }
        for id in kb.ind_ids() {
            if let Some(d) = self.ind_diags.get(&id) {
                diagnostics.extend(d.iter().cloned());
            }
        }
        crate::sort_diagnostics(&mut diagnostics);
        Report {
            diagnostics,
            concepts_checked: self.seen_concepts,
            rules_checked: self.rule_infos.len(),
            inds_checked: self.seen_inds,
        }
    }
}
