//! The paper's §1 motivation, exercised end to end: "an understanding of
//! some existing situation is being built up over time (e.g., diagnostic
//! situations)". As evidence accumulates, the *known* answer set grows
//! monotonically and the *possible* answer set shrinks monotonically —
//! the two halves of open-world query answering converging on the truth.

use classic::lang::run_script;
use classic::{Concept, IndId, Kb, Query};

// Builder-backed shims matching the retired free functions' shape.
fn retrieve(kb: &mut Kb, q: &Concept) -> classic::Result<classic::query::Answers> {
    Ok(Query::concept(q.clone())
        .run(kb)?
        .into_known()
        .expect("known mode"))
}

fn possible(kb: &mut Kb, q: &Concept) -> classic::Result<Vec<IndId>> {
    Ok(Query::concept(q.clone())
        .possible()
        .run(kb)?
        .into_possible()
        .expect("possible mode"))
}

/// A whodunit: which of the suspects could have committed crime-1?
#[test]
fn evidence_narrows_possible_and_grows_known() {
    let mut kb = Kb::new();
    run_script(
        &mut kb,
        r#"
        (define-role committed)
        (define-role alibi)
        (define-concept PERSON (PRIMITIVE THING person))
        (define-concept TALL  (DISJOINT-PRIMITIVE PERSON height tall))
        (define-concept SHORT (DISJOINT-PRIMITIVE PERSON height short))
        (define-concept SUSPECT (AND PERSON (AT-MOST 0 alibi)))

        (create-ind Alice)  (assert-ind Alice PERSON)
        (create-ind Bob)    (assert-ind Bob PERSON)
        (create-ind Carol)  (assert-ind Carol PERSON)
        "#,
    )
    .expect("setup");
    let tall = kb.schema().symbols.find_concept("TALL").unwrap();
    let q = Concept::Name(tall); // "the witness says the culprit was tall"

    let known_0 = retrieve(&mut kb, &q).expect("q").known.len();
    let possible_0 = possible(&mut kb, &q).expect("q").len();
    assert_eq!(known_0, 0, "nothing known yet");
    assert_eq!(possible_0, 3, "anyone might be tall");

    // Evidence 1: Alice is short — provably not tall (disjoint grouping).
    run_script(&mut kb, "(assert-ind Alice SHORT)").expect("evidence");
    let possible_1 = possible(&mut kb, &q).expect("q").len();
    assert_eq!(possible_1, 2, "Alice excluded");

    // Evidence 2: Bob is tall — known answer appears.
    run_script(&mut kb, "(assert-ind Bob TALL)").expect("evidence");
    let known_2 = retrieve(&mut kb, &q).expect("q").known.len();
    let possible_2 = possible(&mut kb, &q).expect("q").len();
    assert_eq!(known_2, 1);
    assert_eq!(possible_2, 2, "Carol still undetermined");

    // Monotonicity across the whole session.
    assert!(known_0 <= known_2);
    assert!(possible_0 >= possible_1 && possible_1 >= possible_2);
}

/// The configuration story: a build accumulates parts until recognized
/// complete; queries asked mid-session give honest partial answers.
#[test]
fn configuration_builds_up_to_recognition() {
    let mut kb = Kb::new();
    run_script(
        &mut kb,
        r#"
        (define-role cpu)
        (define-role ram)
        (define-concept PART (PRIMITIVE THING part))
        (define-concept COMPLETE-BUILD
            (AND (AT-LEAST 1 cpu) (AT-MOST 1 cpu) (AT-LEAST 2 ram)))
        (create-ind build-1)
        "#,
    )
    .expect("setup");
    let complete = kb.schema().symbols.find_concept("COMPLETE-BUILD").unwrap();
    let build = kb
        .ind_id(kb.schema().symbols.find_individual("build-1").unwrap())
        .unwrap();

    // Stage snapshots of recognition as parts arrive.
    let mut states = Vec::new();
    states.push(kb.is_instance_of(build, complete).unwrap());
    run_script(&mut kb, "(assert-ind build-1 (FILLS cpu Ryzen-1))").expect("part");
    states.push(kb.is_instance_of(build, complete).unwrap());
    run_script(&mut kb, "(assert-ind build-1 (FILLS ram Dimm-A))").expect("part");
    states.push(kb.is_instance_of(build, complete).unwrap());
    run_script(&mut kb, "(assert-ind build-1 (FILLS ram Dimm-B))").expect("part");
    // The single-CPU constraint needs the role bounded: with AT-MOST 1
    // already satisfied by exactly one filler? Not provable while open —
    // close it.
    states.push(kb.is_instance_of(build, complete).unwrap());
    run_script(&mut kb, "(assert-ind build-1 (AT-MOST 1 cpu))").expect("bound");
    states.push(kb.is_instance_of(build, complete).unwrap());

    assert_eq!(states, vec![false, false, false, false, true]);
    // The explanation facility narrates the final state.
    let e = kb.explain_membership(build, complete).unwrap();
    assert!(e.satisfied);
    assert_eq!(e.missing().len(), 0);

    // And a second CPU is now rejected outright (closure deduction:
    // AT-MOST 1 reached by the known filler closed the role).
    let err = run_script(&mut kb, "(assert-ind build-1 (FILLS cpu Ryzen-2))")
        .expect_err("dual CPUs rejected");
    assert!(matches!(err, classic::ClassicError::Inconsistent { .. }));
}

/// Schema growth mid-session (§3.1): a clue nobody anticipated.
#[test]
fn unanticipated_clues_extend_the_schema() {
    let mut kb = Kb::new();
    run_script(
        &mut kb,
        r#"
        (define-role perpetrator)
        (define-concept CRIME (PRIMITIVE (AT-LEAST 1 perpetrator) crime))
        (create-ind crime-9)
        (assert-ind crime-9 CRIME)
        "#,
    )
    .expect("setup");
    // New kind of clue → new role → new assertion, all mid-session.
    run_script(
        &mut kb,
        r#"
        (define-role heard-speaking)
        (assert-ind crime-9
            (ALL perpetrator (ALL heard-speaking (ONE-OF Ruritanian))))
        "#,
    )
    .expect("the schema grows on the fly");
    // And a new concept over the new role recognizes the old data.
    run_script(
        &mut kb,
        "(define-concept LANGUAGE-CLUE-CASE
            (AND CRIME (ALL perpetrator (ALL heard-speaking (ONE-OF Ruritanian)))))",
    )
    .expect("late definition");
    let case = kb
        .schema()
        .symbols
        .find_concept("LANGUAGE-CLUE-CASE")
        .unwrap();
    let crime9 = kb
        .ind_id(kb.schema().symbols.find_individual("crime-9").unwrap())
        .unwrap();
    assert!(kb.is_instance_of(crime9, case).unwrap());
}
