//! Cross-crate integration: the full pipeline from surface syntax through
//! the knowledge base, query processing, the relational view, and
//! persistence — the whole system the paper describes, exercised as one.

use classic::lang::{run_script, Outcome};
use classic::rel::{export_kb, Atom, ConjunctiveQuery, Term, Value};
use classic::store::{replay, roundtrip, same_state, snapshot_to_string};
use classic::{Concept, Kb, MarkedQuery, Query};

/// Build the paper's worked universe through the surface syntax alone.
fn build_kb() -> Kb {
    let mut kb = Kb::new();
    run_script(
        &mut kb,
        r#"
        (define-role thing-driven)
        (define-role enrolled-at)
        (define-role eat)
        (define-attribute driver)
        (define-attribute payer)

        (define-concept PERSON (PRIMITIVE THING person))
        (define-concept CAR (PRIMITIVE THING car))
        (define-concept EXPENSIVE-THING (PRIMITIVE THING expensive))
        (define-concept SPORTS-CAR
            (PRIMITIVE (AND CAR EXPENSIVE-THING) sports-car))
        (define-concept STUDENT (AND PERSON (AT-LEAST 1 enrolled-at)))
        (define-concept RICH-KID
            (AND STUDENT (ALL thing-driven SPORTS-CAR) (AT-LEAST 2 thing-driven)))
        (define-concept JUNK-FOOD (PRIMITIVE THING junk))
        (assert-rule STUDENT (ALL eat JUNK-FOOD))

        (create-ind Rocky)
        (assert-ind Rocky PERSON)
        (assert-ind Rocky (AT-LEAST 1 enrolled-at))
        (assert-ind Rocky (ALL thing-driven SPORTS-CAR))
        (assert-ind Rocky (FILLS thing-driven Volvo-17 Ferrari-512))
        (assert-ind Rocky (FILLS eat Twinkie-1))

        (create-ind Pat)
        (assert-ind Pat PERSON)
        "#,
    )
    .expect("script runs");
    kb
}

#[test]
fn recognition_flows_through_every_layer() {
    let mut kb = build_kb();
    // Rocky: STUDENT (recognized), RICH-KID (two fillers + ALL).
    let out = run_script(&mut kb, "(retrieve RICH-KID)").expect("query");
    assert_eq!(
        out.last().expect("one"),
        &Outcome::Individuals(vec!["Rocky".into()])
    );
    // The fillers were recognized as SPORTS-CARs by propagation.
    let out = run_script(&mut kb, "(retrieve SPORTS-CAR)").expect("query");
    match out.last().expect("one") {
        Outcome::Individuals(v) => {
            assert!(v.contains(&"Volvo-17".to_owned()));
            assert!(v.contains(&"Ferrari-512".to_owned()));
        }
        other => panic!("unexpected {other:?}"),
    }
    // The rule made Twinkie-1 junk food.
    let out = run_script(&mut kb, "(retrieve JUNK-FOOD)").expect("query");
    assert_eq!(
        out.last().expect("one"),
        &Outcome::Individuals(vec!["Twinkie-1".into()])
    );
}

#[test]
fn relational_view_matches_classic_known_facts() {
    let kb = build_kb();
    let db = export_kb(&kb);
    // role:thing-driven has exactly Rocky's two fillers.
    let q = ConjunctiveQuery::new(
        &["c"],
        vec![Atom::new(
            "role:thing-driven",
            vec![Term::sym("Rocky"), Term::var("c")],
        )],
    );
    let ans = q.evaluate(&db);
    assert_eq!(ans.len(), 2);
    // Relational join: students who drive something with concept SPORTS-CAR.
    let q = ConjunctiveQuery::new(
        &["s"],
        vec![
            Atom::new("concept:STUDENT", vec![Term::var("s")]),
            Atom::new("role:thing-driven", vec![Term::var("s"), Term::var("c")]),
            Atom::new("concept:SPORTS-CAR", vec![Term::var("c")]),
        ],
    );
    assert_eq!(q.evaluate(&db), vec![vec![Value::Sym("Rocky".into())]]);
}

#[test]
fn open_world_answers_diverge_from_closed_world() {
    let mut kb = build_kb();
    // Pat is a PERSON with nothing else known. "Persons enrolled
    // somewhere": known = Rocky only; possible includes Pat (open world).
    let person = kb.schema().symbols.find_concept("PERSON").expect("c");
    let enrolled = kb.schema().symbols.find_role("enrolled-at").expect("r");
    let q = Concept::and([Concept::Name(person), Concept::AtLeast(1, enrolled)]);
    let known = Query::concept(q.clone())
        .run(&mut kb)
        .expect("query")
        .into_known()
        .expect("known mode")
        .known;
    let possible = Query::concept(q.clone())
        .possible()
        .run(&mut kb)
        .expect("query")
        .into_possible()
        .expect("possible mode");
    assert_eq!(known.len(), 1);
    assert!(possible.len() > known.len());
    // Closed world on the export: the same question yields only Rocky too
    // — but for the *wrong* reason (only stored tuples), which shows up
    // when the enrollment is known to exist without a filler.
    let db = export_kb(&kb);
    let cw = ConjunctiveQuery::new(
        &["p"],
        vec![
            Atom::new("concept:PERSON", vec![Term::var("p")]),
            Atom::new("role:enrolled-at", vec![Term::var("p"), Term::var("s")]),
        ],
    );
    // Rocky's enrollment has no named school: closed world finds nothing.
    assert!(cw.evaluate(&db).is_empty());
    assert_eq!(known.len(), 1, "CLASSIC still knows Rocky is enrolled");
}

#[test]
fn marked_queries_and_descriptions_work_through_the_facade() {
    let mut kb = build_kb();
    let student = kb.schema().symbols.find_concept("STUDENT").expect("c");
    let eat = kb.schema().symbols.find_role("eat").expect("r");
    // (AND STUDENT (ALL eat ?:THING)) — extensional: things students eat.
    let q = MarkedQuery {
        concept: Concept::Name(student),
        marker: vec![eat],
    };
    let fillers = Query::marked(q.clone())
        .run(&mut kb)
        .expect("query")
        .into_necessary_set()
        .expect("necessary-set mode");
    assert_eq!(fillers.len(), 1);
    // Intensional: the description includes JUNK-FOOD via the rule.
    let desc = Query::marked(q)
        .description()
        .run(&mut kb)
        .expect("query")
        .into_description()
        .expect("description mode");
    let junk = kb.schema().symbols.find_concept("JUNK-FOOD").expect("c");
    let junk_nf = kb.schema().concept_nf(junk).expect("defined");
    assert!(classic::core::subsumes(junk_nf, &desc));
}

#[test]
fn persistence_round_trips_the_whole_database() {
    let kb = build_kb();
    let rebuilt = roundtrip(&kb, |_| {}).expect("replayable");
    assert!(same_state(&kb, &rebuilt));
    // The rebuilt KB answers queries identically.
    let mut rebuilt = rebuilt;
    let out = run_script(&mut rebuilt, "(retrieve RICH-KID)").expect("query");
    assert_eq!(
        out.last().expect("one"),
        &Outcome::Individuals(vec!["Rocky".into()])
    );
    // Snapshot text is stable across a round trip (canonical form).
    let snap1 = snapshot_to_string(&kb);
    let snap2 = snapshot_to_string(&rebuilt);
    assert_eq!(snap1, snap2);
}

#[test]
fn snapshot_is_a_runnable_script() {
    let kb = build_kb();
    let script = snapshot_to_string(&kb);
    let mut fresh = Kb::new();
    let n = replay(&mut fresh, &script).expect("replays");
    assert!(n > 10, "snapshot contains the full history");
    assert_eq!(fresh.ind_count(), kb.ind_count());
    assert_eq!(fresh.rules().len(), kb.rules().len());
}

#[test]
fn schema_extension_after_data_load() {
    let mut kb = build_kb();
    // Define a new concept over live data; recognition is immediate.
    run_script(
        &mut kb,
        "(define-concept DRIVER (AND PERSON (AT-LEAST 1 thing-driven)))",
    )
    .expect("late definition");
    let out = run_script(&mut kb, "(retrieve DRIVER)").expect("query");
    assert_eq!(
        out.last().expect("one"),
        &Outcome::Individuals(vec!["Rocky".into()])
    );
    // And taxonomy navigation sees the new node in place.
    let out = run_script(&mut kb, "(parents DRIVER)").expect("parents");
    assert_eq!(
        out.last().expect("one"),
        &Outcome::Concepts(vec!["PERSON".into()])
    );
}

#[test]
fn stats_counters_track_the_session() {
    let kb = build_kb();
    assert!(kb.stats.assertions.get() >= 6);
    assert!(kb.stats.rules_fired.get() >= 1);
    assert!(kb.stats.fills_propagations.get() >= 2);
    assert!(kb.stats.realizations.get() > 0);
}
