//! The paper's §6 conclusion enumerates four contribution clusters.
//! This file is that list as an executable checklist — one test per
//! numbered claim, each quoting the paper and demonstrating the behavior
//! through the public API.

use classic::lang::{run_script, AspectValue, Outcome};
use classic::{Concept, Kb, MarkedQuery, Query};

fn known_of(kb: &mut Kb, q: &Concept) -> Vec<classic::IndId> {
    Query::concept(q.clone())
        .run(kb)
        .expect("q")
        .into_known()
        .expect("known mode")
        .known
}

fn possible_of(kb: &mut Kb, q: &Concept) -> Vec<classic::IndId> {
    Query::concept(q.clone())
        .possible()
        .run(kb)
        .expect("q")
        .into_possible()
        .expect("possible mode")
}

fn base_kb() -> Kb {
    let mut kb = Kb::new();
    run_script(
        &mut kb,
        r#"
        (define-role brother)
        (define-role eat)
        (define-role enrolled-at)
        (define-concept PERSON (PRIMITIVE THING person))
        (define-concept DOCTOR (PRIMITIVE PERSON doctor))
        (define-concept STUDENT (AND PERSON (AT-LEAST 1 enrolled-at)))
        "#,
    )
    .expect("schema");
    kb
}

/// §6(1): "individuals can be described not only in terms of their
/// relationship to other individuals, but also in terms of their
/// 'conceptual structure' (e.g., 'has 4 brothers', 'has brothers who are
/// all doctors'); features such as the absence of the closed world
/// assumption support an incremental model of information acquisition."
#[test]
fn contribution_1_partial_structural_descriptions() {
    let mut kb = base_kb();
    run_script(
        &mut kb,
        r#"
        (create-ind Rocky)
        (assert-ind Rocky PERSON)
        (assert-ind Rocky (AT-LEAST 4 brother))        ; "has 4 brothers"
        (assert-ind Rocky (ALL brother DOCTOR))        ; "all doctors"
        "#,
    )
    .expect("structural facts about unnamed brothers");
    // No brother is named, yet the structure is queryable…
    let brother = kb.schema().symbols.find_role("brother").unwrap();
    let doctor = kb.schema().symbols.find_concept("DOCTOR").unwrap();
    let q = Concept::and([
        Concept::AtLeast(4, brother),
        Concept::all(brother, Concept::Name(doctor)),
    ]);
    assert_eq!(known_of(&mut kb, &q).len(), 1);
    // …and open world: Rocky may have a fifth brother (no closed world).
    let five = Concept::AtLeast(5, brother);
    assert!(known_of(&mut kb, &five).is_empty());
    let rocky = kb
        .ind_id(kb.schema().symbols.find_individual("Rocky").unwrap())
        .unwrap();
    assert!(possible_of(&mut kb, &five).contains(&rocky));
}

/// §6(2): "allowing the database to actively discover a limited number of
/// new relationships between individuals, not explicitly asserted by
/// users: concepts are classified with respect to each other, and
/// individuals are classified under concepts specified in the schema;
/// concept constructors … can add information about role fillers; simple
/// forward chaining rules provide new descriptors."
#[test]
fn contribution_2_active_discovery() {
    let mut kb = base_kb();
    // Concepts classify against each other…
    let out = run_script(&mut kb, "(subsumes? PERSON STUDENT)").expect("q");
    assert_eq!(out.last().unwrap(), &Outcome::Bool(true));
    // …individuals classify under schema concepts…
    run_script(
        &mut kb,
        "(create-ind Rocky)
         (assert-ind Rocky PERSON)
         (assert-ind Rocky (AT-LEAST 1 enrolled-at))",
    )
    .expect("facts");
    let out = run_script(&mut kb, "(retrieve STUDENT)").expect("q");
    assert_eq!(
        out.last().unwrap(),
        &Outcome::Individuals(vec!["Rocky".into()])
    );
    // …constructors add filler information (AT-MOST closes the role)…
    run_script(
        &mut kb,
        "(assert-ind Rocky (AT-MOST 1 brother))
         (assert-ind Rocky (FILLS brother Bob))",
    )
    .expect("facts");
    let out = run_script(&mut kb, "(ind-aspect Rocky CLOSE brother)").expect("q");
    assert_eq!(
        out.last().unwrap(),
        &Outcome::Aspect(AspectValue::Closed(true))
    );
    // …and rules derive new descriptors.
    run_script(
        &mut kb,
        "(define-concept JUNK-FOOD (PRIMITIVE THING junk))
         (assert-rule STUDENT (ALL eat JUNK-FOOD))
         (assert-ind Rocky (FILLS eat Twinkie-1))
         ",
    )
    .expect("rule");
    let out = run_script(&mut kb, "(retrieve JUNK-FOOD)").expect("q");
    assert_eq!(
        out.last().unwrap(),
        &Outcome::Individuals(vec!["Twinkie-1".into()])
    );
}

/// §6(3): "a single language is used to specify the schema (including
/// integrity constraints), the information added to the database, and the
/// queries to it; the schema and data can be manipulated uniformly and
/// with 'closure': schema objects (concepts) can be created, queried and
/// obtained as answers at any time."
#[test]
fn contribution_3_single_language_uniform_closure() {
    let mut kb = base_kb();
    // One expression serves as definition, assertion, and query.
    let expr = "(AND PERSON (AT-LEAST 1 enrolled-at))";
    run_script(&mut kb, &format!("(define-concept LEARNER {expr})")).expect("DDL");
    run_script(
        &mut kb,
        &format!("(create-ind Pat) (assert-ind Pat {expr})"),
    )
    .expect("DML");
    let out = run_script(&mut kb, &format!("(retrieve {expr})")).expect("query");
    assert_eq!(
        out.last().unwrap(),
        &Outcome::Individuals(vec!["Pat".into()])
    );
    // Schema objects are queried at any time, and *obtained as answers*:
    // classification returns concepts (LEARNER ≡ STUDENT here).
    let out = run_script(&mut kb, &format!("(classify {expr})")).expect("schema query");
    match out.last().unwrap() {
        Outcome::Description(d) => {
            assert!(d.contains("STUDENT") && d.contains("LEARNER"), "got {d}");
        }
        other => panic!("unexpected {other:?}"),
    }
}

/// §6(4): "because of the open world assumption, different kinds of
/// answers to queries can be considered: sets of individuals that are
/// known to satisfy the query, sets of individuals that might satisfy the
/// query, and a most-specific description of the necessary properties of
/// the objects, known or unknown, that might satisfy the query."
#[test]
fn contribution_4_three_kinds_of_answers() {
    let mut kb = base_kb();
    run_script(
        &mut kb,
        r#"
        (define-concept JUNK-FOOD (PRIMITIVE THING junk))
        (assert-rule STUDENT (ALL eat JUNK-FOOD))
        (create-ind Rocky)
        (assert-ind Rocky PERSON)
        (assert-ind Rocky (AT-LEAST 1 enrolled-at))
        (create-ind Pat)
        (assert-ind Pat PERSON)
        "#,
    )
    .expect("facts");
    let student = kb.schema().symbols.find_concept("STUDENT").unwrap();
    let q = Concept::Name(student);
    // (a) known answers,
    let known = known_of(&mut kb, &q);
    assert_eq!(known.len(), 1);
    // (b) possible answers (Pat might be enrolled somewhere),
    let poss = possible_of(&mut kb, &q);
    assert_eq!(poss.len(), 2);
    // (c) the necessary description of all possible answers at a marker —
    // including rule-derived information, with no junk-food instance
    // anywhere in the database.
    let eat = kb.schema().symbols.find_role("eat").unwrap();
    let desc = Query::marked(MarkedQuery {
        concept: q,
        marker: vec![eat],
    })
    .description()
    .run(&mut kb)
    .expect("intensional answer")
    .into_description()
    .expect("description mode");
    let junk = kb.schema().symbols.find_concept("JUNK-FOOD").unwrap();
    let junk_nf = kb.schema().concept_nf(junk).expect("defined");
    assert!(classic::core::subsumes(junk_nf, &desc));
}
