//! Host individuals end to end (paper §3.2): "every individual known to
//! the database needs to be either a host individual — a valid value from
//! the space of values of the host implementation language — or a regular
//! (CLASSIC) individual. Host individuals cannot have roles, but are
//! otherwise first class citizens — they can be grouped by enumerated
//! concepts, for example."

use classic::core::TestArg;
use classic::lang::{run_script, Outcome};
use classic::{Concept, HostValue, IndRef, Kb};

#[test]
fn host_values_flow_through_the_surface_syntax() {
    let mut kb = Kb::new();
    run_script(
        &mut kb,
        r#"
        (define-role age)
        (define-role color)
        (define-concept PERSON (PRIMITIVE THING person))
        ; Enumerated concept over host values (§3.2: "grouped by
        ; enumerated concepts").
        (define-concept PRIMARY-COLOR (ONE-OF 'red 'green 'blue))
        (define-concept TEEN-AGE (ONE-OF 13 14 15 16 17 18 19))
        (create-ind Rocky)
        (assert-ind Rocky PERSON)
        (assert-ind Rocky (FILLS age 15))
        (assert-ind Rocky (FILLS color 'red))
        "#,
    )
    .expect("script runs");
    // Constraining the age role to the enumeration succeeds (15 ∈ TEEN-AGE)…
    run_script(&mut kb, "(assert-ind Rocky (ALL age TEEN-AGE))").expect("15 is a teen age");
    // …but a color outside PRIMARY-COLOR is rejected.
    run_script(&mut kb, "(assert-ind Rocky (FILLS color 'mauve))").expect("recording is fine");
    let err = run_script(&mut kb, "(assert-ind Rocky (ALL color PRIMARY-COLOR))")
        .expect_err("'mauve is not a primary color");
    assert!(matches!(err, classic::ClassicError::Inconsistent { .. }));
}

#[test]
fn integer_layer_constrains_host_fillers() {
    let mut kb = Kb::new();
    run_script(
        &mut kb,
        r#"
        (define-role age)
        (create-ind Rocky)
        (assert-ind Rocky (ALL age INTEGER))
        (assert-ind Rocky (FILLS age 41))
        "#,
    )
    .expect("integers pass the INTEGER restriction");
    let err = run_script(&mut kb, r#"(assert-ind Rocky (FILLS age "forty-one"))"#)
        .expect_err("a string is not an INTEGER");
    assert!(matches!(err, classic::ClassicError::Inconsistent { .. }));
}

#[test]
fn host_values_have_exact_identity_in_enumerations() {
    let mut kb = Kb::new();
    kb.define_role("r").unwrap();
    // 3 (integer), "3" (string) and '3 (symbol) are three distinct host
    // individuals.
    let three_int = IndRef::Host(HostValue::Int(3));
    let three_str = IndRef::Host(HostValue::Str("3".into()));
    let three_sym = IndRef::Host(HostValue::Sym("3".into()));
    let c = Concept::one_of([three_int.clone(), three_str, three_sym]);
    let nf = kb.normalize(&c).unwrap();
    assert_eq!(nf.one_of.as_ref().unwrap().len(), 3);
    // Intersecting with INTEGER keeps exactly the integer.
    let meet = Concept::and([
        c,
        Concept::Builtin(classic::Layer::Host(Some(
            classic::core::HostClass::Integer,
        ))),
    ]);
    let nf = kb.normalize(&meet).unwrap();
    assert_eq!(
        nf.one_of
            .as_ref()
            .unwrap()
            .iter()
            .cloned()
            .collect::<Vec<_>>(),
        vec![three_int]
    );
}

#[test]
fn tests_on_host_values_run_during_recognition() {
    let mut kb = Kb::new();
    let even = kb.register_test("even", |arg| match arg {
        TestArg::Host(HostValue::Int(i)) => i % 2 == 0,
        _ => false,
    });
    kb.define_role("age").unwrap();
    let age = kb.schema().symbols.find_role("age").unwrap();
    kb.define_concept(
        "EVEN-AGED",
        Concept::and([
            Concept::exactly(1, age),
            Concept::all(age, Concept::Test(even)),
        ]),
    )
    .unwrap();
    let even_aged = kb.schema().symbols.find_concept("EVEN-AGED").unwrap();
    // One even, one odd.
    for (name, n) in [("A", 42), ("B", 41)] {
        kb.create_ind(name).unwrap();
        kb.assert_ind(
            name,
            &Concept::and([
                Concept::Fills(age, vec![IndRef::Host(HostValue::Int(n))]),
                Concept::Close(age),
            ]),
        )
        .unwrap();
    }
    let instances = kb.instances_of(even_aged).unwrap();
    assert_eq!(instances.len(), 1);
    let a = kb
        .ind_id(kb.schema().symbols.find_individual("A").unwrap())
        .unwrap();
    assert!(instances.contains(&a));
}

#[test]
fn classify_command_places_ad_hoc_concepts() {
    let mut kb = Kb::new();
    run_script(
        &mut kb,
        r#"
        (define-role enrolled-at)
        (define-concept PERSON (PRIMITIVE THING person))
        (define-concept STUDENT (AND PERSON (AT-LEAST 1 enrolled-at)))
        "#,
    )
    .expect("schema");
    // A refinement between PERSON and STUDENT^3.
    let out =
        run_script(&mut kb, "(classify (AND PERSON (AT-LEAST 1 enrolled-at)))").expect("classify");
    match out.last().expect("one") {
        Outcome::Description(d) => {
            assert!(d.contains("equivalent: STUDENT"), "got {d}");
        }
        other => panic!("unexpected {other:?}"),
    }
    let out =
        run_script(&mut kb, "(classify (AND PERSON (AT-LEAST 3 enrolled-at)))").expect("classify");
    match out.last().expect("one") {
        Outcome::Description(d) => {
            assert!(d.contains("parents: STUDENT"), "got {d}");
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn floats_and_the_number_hierarchy() {
    // The paper's host "numbers" include floats; NUMBER is the abstract
    // parent of INTEGER and FLOAT in the built-in hierarchy.
    let mut kb = Kb::new();
    run_script(
        &mut kb,
        r#"
        (define-role temperature)
        (create-ind Reactor)
        (assert-ind Reactor (ALL temperature NUMBER))
        (assert-ind Reactor (FILLS temperature 451))
        (assert-ind Reactor (FILLS temperature 98.6))
        "#,
    )
    .expect("both integers and floats are NUMBERs");
    // But restricting to INTEGER clashes with the float filler.
    let err = run_script(&mut kb, "(assert-ind Reactor (ALL temperature INTEGER))")
        .expect_err("98.6 is not an INTEGER");
    assert!(matches!(err, classic::ClassicError::Inconsistent { .. }));
    // Subsumption in the layer lattice, through the surface syntax.
    let out = run_script(&mut kb, "(subsumes? NUMBER FLOAT)").expect("q");
    assert_eq!(out.last().unwrap(), &classic::lang::Outcome::Bool(true));
    let out = run_script(&mut kb, "(subsumes? INTEGER FLOAT)").expect("q");
    assert_eq!(out.last().unwrap(), &classic::lang::Outcome::Bool(false));
    // Floats round-trip through describe/persistence rendering.
    let reactor = kb
        .ind_id(kb.schema().symbols.find_individual("Reactor").unwrap())
        .unwrap();
    let described = classic::query::describe(&kb, reactor);
    let rendered = described.display(&kb.schema().symbols).to_string();
    assert!(rendered.contains("98.6"), "got {rendered}");
    let rebuilt = classic::store::roundtrip(&kb, |_| {}).expect("replayable");
    assert!(classic::store::same_state(&kb, &rebuilt));
}
