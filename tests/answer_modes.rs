//! The paper's §3.5.3 answer modes, end to end: extensional answers over
//! known individuals, `?:`-marked filler collection across multi-step
//! paths, possible answers under the open world, and intensional
//! (descriptive) answers that "necessarily hold of all possible answers".

use classic::lang::run_script;
use classic::{Concept, IndId, IndRef, Kb, MarkedQuery, NormalForm, Query};

// Local builder-backed shims with the shape of the retired PR-1 free
// functions, so the assertions below read exactly like §3.5.3.
fn retrieve(kb: &mut Kb, q: &Concept) -> classic::Result<classic::query::Answers> {
    Ok(Query::concept(q.clone())
        .run(kb)?
        .into_known()
        .expect("known mode"))
}

fn possible(kb: &mut Kb, q: &Concept) -> classic::Result<Vec<IndId>> {
    Ok(Query::concept(q.clone())
        .possible()
        .run(kb)?
        .into_possible()
        .expect("possible mode"))
}

fn ask_necessary_set(kb: &mut Kb, q: &MarkedQuery) -> classic::Result<Vec<IndRef>> {
    Ok(Query::marked(q.clone())
        .run(kb)?
        .into_necessary_set()
        .expect("necessary-set mode"))
}

fn ask_description(kb: &mut Kb, q: &MarkedQuery) -> classic::Result<NormalForm> {
    Ok(Query::marked(q.clone())
        .description()
        .run(kb)?
        .into_description()
        .expect("description mode"))
}

fn cars_kb() -> Kb {
    let mut kb = Kb::new();
    run_script(
        &mut kb,
        r#"
        (define-role thing-driven)
        (define-role maker)
        (define-role enrolled-at)
        (define-concept PERSON (PRIMITIVE THING person))
        (define-concept COMPANY (PRIMITIVE THING company))
        (define-concept ITALIAN-COMPANY (PRIMITIVE COMPANY italian))
        (define-concept STUDENT (AND PERSON (AT-LEAST 1 enrolled-at)))

        (create-ind Rocky)
        (assert-ind Rocky STUDENT)
        (assert-ind Rocky (FILLS thing-driven Ferrari-512))
        (assert-ind Ferrari-512 (FILLS maker Ferrari))
        (assert-ind Ferrari ITALIAN-COMPANY)
        "#,
    )
    .expect("script");
    kb
}

#[test]
fn marked_query_walks_multi_step_paths() {
    let mut kb = cars_kb();
    let driven = kb.schema().symbols.find_role("thing-driven").unwrap();
    let maker = kb.schema().symbols.find_role("maker").unwrap();
    let student = kb.schema().symbols.find_concept("STUDENT").unwrap();
    // The §3.5.3 example: (AND STUDENT (ALL thing-driven ?:(ALL maker …)))
    // — "the objects that are driven by students". With a deeper marker,
    // the makers of those objects.
    let q = MarkedQuery {
        concept: Concept::Name(student),
        marker: vec![driven, maker],
    };
    let makers = ask_necessary_set(&mut kb, &q).expect("query");
    let ferrari = kb.schema().symbols.find_individual("Ferrari").unwrap();
    assert_eq!(makers, vec![IndRef::Classic(ferrari)]);
}

#[test]
fn possible_excludes_provably_disjoint_individuals() {
    let mut kb = Kb::new();
    run_script(
        &mut kb,
        r#"
        (define-role r)
        (define-concept PERSON (PRIMITIVE THING person))
        (define-concept MALE (DISJOINT-PRIMITIVE PERSON gender male))
        (define-concept FEMALE (DISJOINT-PRIMITIVE PERSON gender female))
        (create-ind Anna)
        (assert-ind Anna FEMALE)
        (create-ind Sam)
        (assert-ind Sam PERSON)
        "#,
    )
    .expect("script");
    let male = kb.schema().symbols.find_concept("MALE").unwrap();
    let q = Concept::Name(male);
    let known = retrieve(&mut kb, &q).expect("query").known;
    assert!(known.is_empty(), "nobody is known MALE");
    let poss = possible(&mut kb, &q).expect("query");
    // Sam might be MALE; Anna provably cannot (disjoint primitive).
    let sam = kb
        .ind_id(kb.schema().symbols.find_individual("Sam").unwrap())
        .unwrap();
    let anna = kb
        .ind_id(kb.schema().symbols.find_individual("Anna").unwrap())
        .unwrap();
    assert!(poss.contains(&sam));
    assert!(!poss.contains(&anna));
}

#[test]
fn possible_respects_one_of_identity() {
    let mut kb = Kb::new();
    kb.define_role("r").unwrap();
    kb.create_ind("A").unwrap();
    kb.create_ind("B").unwrap();
    let a_name = kb.schema().symbols.find_individual("A").unwrap();
    let q = Concept::one_of([IndRef::Classic(a_name)]);
    let poss = possible(&mut kb, &q).expect("query");
    let a = kb.ind_id(a_name).unwrap();
    assert_eq!(poss, vec![a], "only A can possibly be in (ONE-OF A)");
}

#[test]
fn description_of_an_unrestricted_marker_is_thing() {
    let mut kb = cars_kb();
    let person = kb.schema().symbols.find_concept("PERSON").unwrap();
    let driven = kb.schema().symbols.find_role("thing-driven").unwrap();
    let q = MarkedQuery {
        concept: Concept::Name(person),
        marker: vec![driven],
    };
    let desc = ask_description(&mut kb, &q).expect("query");
    assert!(desc.is_top(), "no constraints, no rules ⇒ THING");
}

#[test]
fn description_collects_value_restrictions_along_the_marker() {
    let mut kb = cars_kb();
    let student = kb.schema().symbols.find_concept("STUDENT").unwrap();
    let italian = kb.schema().symbols.find_concept("ITALIAN-COMPANY").unwrap();
    let driven = kb.schema().symbols.find_role("thing-driven").unwrap();
    let maker = kb.schema().symbols.find_role("maker").unwrap();
    // (AND STUDENT (ALL thing-driven (ALL maker ?:ITALIAN-COMPANY)))
    let q = MarkedQuery {
        concept: Concept::and([
            Concept::Name(student),
            Concept::all(driven, Concept::all(maker, Concept::Name(italian))),
        ]),
        marker: vec![driven, maker],
    };
    let desc = ask_description(&mut kb, &q).expect("query");
    let italian_nf = kb.schema().concept_nf(italian).unwrap();
    assert!(classic::core::subsumes(italian_nf, &desc));
    // The necessary description is at least ITALIAN-COMPANY (hence
    // COMPANY too, by the primitive's parent).
    let company = kb.schema().symbols.find_concept("COMPANY").unwrap();
    let company_nf = kb.schema().concept_nf(company).unwrap();
    assert!(classic::core::subsumes(company_nf, &desc));
}

#[test]
fn retrieval_sees_host_and_classic_answers_separately() {
    // Extensional retrieval returns CLASSIC individuals; marked retrieval
    // can surface host fillers.
    let mut kb = Kb::new();
    run_script(
        &mut kb,
        r#"
        (define-role age)
        (define-concept PERSON (PRIMITIVE THING person))
        (create-ind Rocky)
        (assert-ind Rocky PERSON)
        (assert-ind Rocky (FILLS age 41))
        "#,
    )
    .expect("script");
    let person = kb.schema().symbols.find_concept("PERSON").unwrap();
    let age = kb.schema().symbols.find_role("age").unwrap();
    let q = MarkedQuery {
        concept: Concept::Name(person),
        marker: vec![age],
    };
    let fillers = ask_necessary_set(&mut kb, &q).expect("query");
    assert_eq!(fillers, vec![IndRef::Host(classic::HostValue::Int(41))]);
}

#[test]
fn ask_description_is_sound_for_known_answers() {
    // Soundness of intensional answers: the necessary description of the
    // marker position must provably hold of every *known* filler there
    // (they are among the "possible answers" it ranges over).
    let mut kb = cars_kb();
    // Close the evidence so the subject's membership is *provable*:
    // Rocky drives exactly Ferrari-512, whose only maker is Ferrari.
    run_script(
        &mut kb,
        "(assert-ind Rocky (CLOSE thing-driven))
         (assert-ind Ferrari-512 (CLOSE maker))",
    )
    .expect("closures");
    let student = kb.schema().symbols.find_concept("STUDENT").unwrap();
    let italian = kb.schema().symbols.find_concept("ITALIAN-COMPANY").unwrap();
    let driven = kb.schema().symbols.find_role("thing-driven").unwrap();
    let q = MarkedQuery {
        concept: Concept::and([
            Concept::Name(student),
            Concept::all(
                driven,
                Concept::all(
                    kb.schema().symbols.find_role("maker").unwrap(),
                    Concept::Name(italian),
                ),
            ),
        ]),
        marker: vec![driven],
    };
    let desc = ask_description(&mut kb, &q).unwrap();
    let fillers = ask_necessary_set(&mut kb, &q).unwrap();
    assert!(!fillers.is_empty(), "Ferrari-512 is a known answer");
    for f in fillers {
        match f {
            IndRef::Classic(n) => {
                let id = kb.ind_id(n).unwrap();
                assert!(
                    kb.known_instance(id, &desc),
                    "necessary description must hold of known answer"
                );
            }
            IndRef::Host(v) => assert!(kb.host_satisfies(&v, &desc)),
        }
    }
}
