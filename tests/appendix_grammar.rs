//! Appendix A conformance: every constructor of the paper's grammar, in
//! the concrete surface syntax, parses, prints back to itself, and
//! normalizes. One test per grammar production, plus the built-in
//! primitives the appendix lists (`THING`, `CLASSIC-THING`, `HOST-THING`).

use classic::lang::parse_concept;
use classic::{Concept, Kb};

fn kb() -> Kb {
    let mut kb = Kb::new();
    for r in ["r", "s", "thing-driven", "maker"] {
        kb.define_role(r).unwrap();
    }
    for a in ["driver", "insurance", "payer"] {
        kb.define_attribute(a).unwrap();
    }
    kb.define_concept("CAR", Concept::primitive(Concept::thing(), "car"))
        .unwrap();
    kb.register_test("even", |_| true);
    kb
}

/// Parse, then print, then parse again: both parses must agree, and the
/// result must normalize without structural errors.
fn round_trip(kb: &mut Kb, src: &str) -> Concept {
    let c1 = parse_concept(src, kb.schema_mut())
        .unwrap_or_else(|e| panic!("parse failed for {src:?}: {e}"));
    let printed = c1.display(&kb.schema().symbols).to_string();
    let c2 = parse_concept(&printed, kb.schema_mut())
        .unwrap_or_else(|e| panic!("reparse failed for {printed:?}: {e}"));
    assert_eq!(c1, c2, "print/parse round trip for {src:?}");
    kb.normalize(&c1)
        .unwrap_or_else(|e| panic!("normalize failed for {src:?}: {e}"));
    c1
}

#[test]
fn builtin_primitives() {
    let mut kb = kb();
    for b in [
        "THING",
        "CLASSIC-THING",
        "HOST-THING",
        "INTEGER",
        "STRING",
        "SYMBOL",
    ] {
        round_trip(&mut kb, b);
    }
}

#[test]
fn concept_name_reference() {
    let mut kb = kb();
    round_trip(&mut kb, "CAR");
}

#[test]
fn primitive_constructor() {
    let mut kb = kb();
    round_trip(&mut kb, "(PRIMITIVE THING boat)");
    round_trip(&mut kb, "(PRIMITIVE CAR sports-car)");
    round_trip(&mut kb, "(PRIMITIVE (AND CAR (AT-LEAST 1 r)) fancy)");
}

#[test]
fn disjoint_primitive_constructor() {
    let mut kb = kb();
    round_trip(&mut kb, "(DISJOINT-PRIMITIVE THING gender male)");
    round_trip(&mut kb, "(DISJOINT-PRIMITIVE THING gender female)");
}

#[test]
fn one_of_constructor() {
    let mut kb = kb();
    round_trip(&mut kb, "(ONE-OF GM Ford Chrysler)");
    round_trip(&mut kb, "(ONE-OF 1 2 3)");
    round_trip(&mut kb, r#"(ONE-OF "alpha" 'beta Gamma)"#);
}

#[test]
fn all_constructor() {
    let mut kb = kb();
    round_trip(&mut kb, "(ALL thing-driven CAR)");
    round_trip(&mut kb, "(ALL thing-driven (ALL maker (ONE-OF Ferrari)))");
}

#[test]
fn cardinality_constructors() {
    let mut kb = kb();
    round_trip(&mut kb, "(AT-LEAST 3 r)");
    round_trip(&mut kb, "(AT-MOST 4 thing-driven)");
    round_trip(&mut kb, "(AT-LEAST 0 r)");
    round_trip(&mut kb, "(AT-MOST 0 r)");
}

#[test]
fn same_as_constructor() {
    let mut kb = kb();
    round_trip(&mut kb, "(SAME-AS (driver) (insurance payer))");
}

#[test]
fn fills_and_close_constructors() {
    let mut kb = kb();
    round_trip(&mut kb, "(FILLS thing-driven Volvo-17)");
    round_trip(&mut kb, "(FILLS thing-driven Volvo-17 Ferrari-512)");
    round_trip(&mut kb, "(FILLS r 42)");
    round_trip(&mut kb, "(CLOSE thing-driven)");
}

#[test]
fn test_constructor() {
    let mut kb = kb();
    round_trip(&mut kb, "(TEST even)");
    round_trip(&mut kb, "(AND INTEGER (TEST even))"); // the paper's EVEN-INTEGER
}

#[test]
fn and_constructor() {
    let mut kb = kb();
    round_trip(&mut kb, "(AND CAR (AT-LEAST 1 r))");
    // The paper's full §2.1.3 composite.
    round_trip(
        &mut kb,
        "(AND CAR \
           (ALL thing-driven (AND CAR (ALL maker (ONE-OF Ferrari)))) \
           (AT-LEAST 1 thing-driven) \
           (AT-MOST 2 thing-driven))",
    );
    // Empty and singleton conjunctions are grammatical.
    round_trip(&mut kb, "(AND)");
    round_trip(&mut kb, "(AND CAR)");
}

#[test]
fn whitespace_and_comments_are_insignificant() {
    let mut kb = kb();
    let a = parse_concept(
        "(AND CAR ; the car part\n  (AT-LEAST 1 r))",
        kb.schema_mut(),
    )
    .unwrap();
    let b = parse_concept("(AND CAR (AT-LEAST 1 r))", kb.schema_mut()).unwrap();
    assert_eq!(a, b);
}

#[test]
fn deeply_nested_expressions() {
    let mut kb = kb();
    // 16 levels of ALL nesting — no recursion trouble, stable round trip.
    let mut src = String::from("CAR");
    for _ in 0..16 {
        src = format!("(ALL r {src})");
    }
    round_trip(&mut kb, &src);
}
